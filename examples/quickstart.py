#!/usr/bin/env python
"""Quickstart: how many processors should this problem use, and what
speedup can it possibly get?

This walks the library's core loop on the paper's anchor problem — a
256×256 five-point Jacobi solve on a shared-bus multiprocessor — and
then asks the headline question of the paper: what happens when the
machine is allowed to grow with the problem?

Run:  python examples/quickstart.py
"""

from repro import (
    FIVE_POINT,
    PAPER_BUS,
    PartitionKind,
    Workload,
    optimal_speedup,
    optimize_allocation,
)
from repro.report.tables import format_kv_block, format_table


def main() -> None:
    # ---------------------------------------------------------------- setup
    workload = Workload(n=256, stencil=FIVE_POINT)  # t_flop defaults to 1 µs
    print(
        format_kv_block(
            {
                "grid": f"{workload.n} x {workload.n}",
                "stencil": workload.stencil.name,
                "E(S) flops/point": workload.flops_per_point,
                "serial iteration time": workload.serial_time(),
                "machine": "synchronous bus, b = 6.1 us, c = 0",
            },
            title="Problem",
        )
    )
    print()

    # ------------------------------------------------ allocation on 16 CPUs
    # The vendor sells a 16-processor bus machine.  Should we use all 16?
    rows = []
    for kind in (PartitionKind.STRIP, PartitionKind.SQUARE):
        alloc = optimize_allocation(
            PAPER_BUS, workload, kind, max_processors=16, integer=True
        )
        rows.append(
            (
                kind.value,
                alloc.regime,
                round(alloc.processors, 1),
                alloc.cycle_time,
                round(alloc.speedup, 2),
                round(alloc.efficiency, 2),
            )
        )
    print(
        format_table(
            ["partition", "regime", "processors", "cycle time", "speedup", "efficiency"],
            rows,
            title="Best allocation on a 16-processor bus",
        )
    )
    print()

    # ---------------------------------------------- unlimited processors
    # The paper's question: with processors free, how far can speedup go?
    rows = []
    for n in (256, 1024, 4096):
        w = workload.with_n(n)
        sq = optimal_speedup(PAPER_BUS, w, PartitionKind.SQUARE)
        st = optimal_speedup(PAPER_BUS, w, PartitionKind.STRIP)
        rows.append(
            (
                n,
                round(sq.processors, 0),
                round(sq.speedup, 1),
                round(st.processors, 0),
                round(st.speedup, 1),
            )
        )
    print(
        format_table(
            ["n", "procs (squares)", "speedup (squares)", "procs (strips)", "speedup (strips)"],
            rows,
            title="Optimal speedup, unlimited processors (bus)",
        )
    )
    print()
    print(
        "Speedup grows only as (n^2)^(1/3) for squares and (n^2)^(1/4) for\n"
        "strips: contention for the single bus caps scaling regardless of\n"
        "processor count — the paper's case against buses for large PDEs."
    )
    print()

    # ------------------------------------------------------ batched sweeps
    # Dense curve families come from the batch engine: one vectorized
    # call per machine over a full (N, P) grid — the same example as the
    # repro.batch package docstring.
    import numpy as np

    from repro.batch import SweepSpec, run_sweep

    spec = SweepSpec.across_catalog(
        grid_sides=[128, 256, 512, 1024],
        processors=np.arange(1, 257),
    )
    result = run_sweep(spec)
    speedup = result.speedup("paper-bus")  # shape (4, 256)
    best_p = np.argmax(speedup, axis=1) + 1  # optimal P per grid side
    rows = [
        (n, int(best_p[i]), round(float(speedup[i, best_p[i] - 1]), 2))
        for i, n in enumerate(spec.grid_sides)
    ]
    print(
        format_table(
            ["n", "best P on the grid", "speedup there"],
            rows,
            title="Batched (N, P) sweep on the bus: 256 processor counts at once",
        )
    )
    print()

    # ------------------------------------------- cached whole-grid plan
    # The analysis layer answers the paper's *optimization* questions
    # over whole axes — here an integer-constrained capacity plan for
    # every grid side from 64 to 4096 — and the content-addressed sweep
    # cache makes the second request a pure warm hit (add a cache_dir to
    # persist it across runs; the CLI equivalent is
    # `python -m repro optimize --grid 64:4096:64 --cache-dir ...`).
    import tempfile

    from repro.batch import SweepCache, optimal_allocation_curve

    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(tmp)
        sides = list(range(64, 4097, 64))
        curve = optimal_allocation_curve(
            PAPER_BUS,
            FIVE_POINT,
            PartitionKind.SQUARE,
            sides,
            integer=True,
            cache=cache,
        )
        curve = optimal_allocation_curve(  # warm: served from the cache
            PAPER_BUS,
            FIVE_POINT,
            PartitionKind.SQUARE,
            sides,
            integer=True,
            cache=cache,
        )
        picks = [0, len(sides) // 2, len(sides) - 1]
        print(
            format_table(
                ["n", "regime", "processors", "speedup"],
                [
                    (
                        int(curve.grid_sides[i]),
                        curve.regime[i],
                        round(curve.processors[i].item(), 1),
                        round(curve.speedup[i].item(), 2),
                    )
                    for i in picks
                ],
                title=f"Cached whole-grid plan ({len(sides)} sides; "
                f"cache: {cache.stats.describe()})",
            )
        )
    print()

    # ---------------------------------------------------- the sweep graph
    # Every request above actually flowed through the lazy sweep graph.
    # Building nodes directly lets the planner work across requests: the
    # strip/square ratio shares its square curve with the direct request
    # (dedup), the two allocation curves fuse onto one evaluation over
    # their union axis, and `--executor oracle` — here `executor=` —
    # reruns the same plan on the scalar repro.core reference with
    # bit-identical results.
    from repro.graph import nodes, plan

    forest = [
        nodes.allocation_curve(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, range(64, 512, 16)
        ),
        nodes.allocation_curve(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, range(256, 1024, 16)
        ),
        nodes.strip_square_ratio(PAPER_BUS, FIVE_POINT, range(64, 512, 16)),
    ]
    optimized = plan(forest)
    print("The optimized sweep graph (what `--explain` prints):")
    print(optimized.explain())
    via_numpy = optimized.execute()
    via_oracle = plan(forest, executor="oracle").execute()
    assert all(
        np.array_equal(via_numpy[0][name], via_oracle[0][name])
        for name in via_numpy[0]
    )
    assert np.array_equal(via_numpy[2], via_oracle[2])
    print(
        f"numpy and oracle executors agree bit for bit on all "
        f"{len(forest)} requests\n"
    )

    # ------------------------------------------------- the sweep server
    # `python -m repro serve` runs this daemon standalone; here it runs
    # on a background thread with an ephemeral port.  Identical
    # concurrent requests coalesce onto one compute, compatible
    # requests of any family micro-batch onto one planner-fused call, and
    # --max-cache-mb (max_cache_mb=) keeps the store LRU-bounded.
    # Responses are byte-identical to computing offline.
    from repro.service import ServiceClient, SweepServer

    with SweepServer(port=0, max_cache_mb=16) as server:
        client = ServiceClient(server.url)
        sides = [256, 1024, 4096]
        served = client.allocation_curve(
            "paper-bus", "5-point", "square", sides, integer=True
        )
        served = client.allocation_curve(  # warm: answered from the store
            "paper-bus", "5-point", "square", sides, integer=True
        )
        print(
            format_table(
                ["n", "regime", "speedup"],
                [
                    (
                        int(served.grid_sides[i]),
                        served.regime[i],
                        round(served.speedup[i].item(), 2),
                    )
                    for i in range(len(served))
                ],
                title=(
                    f"Served by the sweep daemon at {server.url} "
                    f"(second request: {client.last_served})"
                ),
            )
        )


if __name__ == "__main__":
    main()
