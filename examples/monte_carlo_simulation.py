#!/usr/bin/env python
"""A 1000-replica Monte Carlo ensemble through the sweep daemon.

The event-level simulator advances one replica at a time; the batched
tier (`repro.batch.sim`) advances a whole ensemble in lockstep NumPy
arrays, bit-equal per replica to the scalar oracle.  This script runs
the headline scenario end to end:

1. *Offline ensemble* — 1000 jittered replicas of one (machine, grid,
   P) configuration in a single `simulate_replicas` call, summarized
   as a cycle-time band.
2. *The same ensemble through the daemon* — an in-process
   `repro serve` daemon answers a `sim_sweep` request with the exact
   same bytes; repeats are memory hits, and `/v1/stats` counts the
   sim traffic.
3. *Model-vs-simulation validation* — a `sim_validate` request
   returns the analytic and simulated cycle-time columns for a sweep
   of processor counts, served from the same shared store.

Run:  python examples/monte_carlo_simulation.py
"""

import numpy as np

from repro.batch.sim import ReplicaBatchSpec, simulate_replicas
from repro.machines.catalog import PAPER_BUS
from repro.service import ServiceClient, SweepServer
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

REPLICAS = 1000
N, P = 48, 8


def offline_ensemble() -> np.ndarray:
    spec = ReplicaBatchSpec.monte_carlo(
        PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, N, P, REPLICAS,
        jitter=0.05,
    )
    result = simulate_replicas(spec)
    band = result.band()
    print(f"offline: {REPLICAS} replicas of {N}x{N} on P={P} (paper-bus)")
    print(
        f"  cycle time mean {band['mean']:.6g} s, std {band['std']:.3g}, "
        f"90% band [{band['q05']:.6g}, {band['q95']:.6g}]"
    )
    return result.cycle_times


def served_ensemble(server: SweepServer, offline: np.ndarray) -> None:
    client = ServiceClient(server.url)
    arrays = client.sim_sweep(
        "paper-bus", N, P, replicas=REPLICAS, jitter=0.05
    )
    identical = arrays["cycle_times"].tobytes() == offline.tobytes()
    print(f"daemon: {arrays['cycle_times'].size} replicas served "
          f"({client.last_served}); bit-identical to offline: {identical}")

    client.sim_sweep("paper-bus", N, P, replicas=REPLICAS, jitter=0.05)
    print(f"repeat served from: {client.last_served}")
    stats = client.stats()
    print(f"daemon counters: sim={stats['counters']['sim']}, "
          f"hits={stats['counters']['hits']}")


def served_validation(server: SweepServer) -> None:
    client = ServiceClient(server.url)
    arrays = client.sim_validate("paper-bus", N, [1, 2, 4, 8, 16])
    print("model vs simulation (paper-bus, 5-point squares):")
    print("  P     analytic      simulated     rel err")
    for p, a, s in zip(
        arrays["processors"], arrays["analytic"], arrays["simulated"]
    ):
        print(f"  {int(p):<4}  {a:.6g}   {s:.6g}   {(s - a) / a:+.2%}")


def main() -> None:
    offline = offline_ensemble()
    print()
    with SweepServer(port=0) as server:
        served_ensemble(server, offline)
        print()
        served_validation(server)


if __name__ == "__main__":
    main()
