#!/usr/bin/env python
"""Capacity planning with the paper's formulas.

Answers the operational questions Section 6 equips you for:

1. *I have an N-processor bus machine — what's the smallest problem
   that keeps every processor busy usefully?*  (Figure 7)
2. *I have a problem of size n — how many processors should I buy?*
3. *Should I pay for a faster bus or faster CPUs?*  (leverage analysis)
4. *My machine has huge per-word overhead (FLEX/32's c/b = 1000) — does
   partition-size tuning even matter?*

Run:  python examples/capacity_planning.py
"""

import math

from repro import FIVE_POINT, NINE_POINT_BOX, PartitionKind, Workload
from repro.core.leverage import leverage_report
from repro.core.minimal_size import max_useful_processors, minimal_grid_side
from repro.core.allocation import optimize_allocation
from repro.machines.catalog import FLEX32, PAPER_BUS
from repro.report.tables import format_table

SQUARE = PartitionKind.SQUARE
STRIP = PartitionKind.STRIP


def smallest_grid_per_machine_size() -> None:
    rows = []
    for n_procs in (4, 8, 16, 24, 32):
        side_sq = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, n_procs, SQUARE)
        side_st = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, n_procs, STRIP)
        rows.append(
            (
                n_procs,
                math.ceil(side_sq),
                round(math.log2(side_sq**2), 1),
                math.ceil(side_st),
                round(math.log2(side_st**2), 1),
            )
        )
    print(
        format_table(
            ["N", "min n (squares)", "log2(n^2)", "min n (strips)", "log2(n^2)"],
            rows,
            title="Smallest grid that gainfully uses all N bus processors (Figure 7)",
        )
    )
    print()


def processors_for_my_problem() -> None:
    rows = []
    for n in (128, 256, 512, 1024):
        for stencil in (FIVE_POINT, NINE_POINT_BOX):
            w = Workload(n=n, stencil=stencil)
            useful = max_useful_processors(PAPER_BUS, w, SQUARE)
            rows.append((n, stencil.name, math.floor(useful)))
    print(
        format_table(
            ["n", "stencil", "max useful processors"],
            rows,
            title="Buying guide: processors a bus machine can usefully apply",
        )
    )
    print("(256/5-point -> 14 and 256/9-point -> 22: the paper's Section 6.1 anchor)")
    print()


def hardware_upgrade_leverage() -> None:
    w = Workload(n=2048, stencil=FIVE_POINT)
    rows = []
    for kind in (STRIP, SQUARE):
        report = leverage_report(PAPER_BUS, w, kind)
        for param, factor in sorted(report.factors.items()):
            rows.append((kind.value, param, round(factor, 4), f"{(1-factor):.0%} faster"))
    print(
        format_table(
            ["partition", "component doubled", "cycle-time factor", "gain"],
            rows,
            title="Upgrade leverage at the re-optimized bus configuration",
        )
    )
    print("Squares: the bus is the better upgrade (0.63 vs 0.79).")
    print()


def flex32_regime() -> None:
    rows = []
    for n in (128, 512, 2048):
        w = Workload(n=n, stencil=FIVE_POINT)
        alloc = optimize_allocation(FLEX32, w, SQUARE, max_processors=20)
        rows.append((n, alloc.regime, round(alloc.processors, 1), round(alloc.speedup, 2)))
    print(
        format_table(
            ["n", "regime", "processors", "speedup"],
            rows,
            title="FLEX/32-style bus (c/b = 1000): tuning partition size is moot",
        )
    )
    print(
        "An interior optimum needs c/b <= P; at c/b = 1000 no bus-sized\n"
        "machine qualifies — just use every processor you have."
    )


def main() -> None:
    smallest_grid_per_machine_size()
    processors_for_my_problem()
    hardware_upgrade_leverage()
    flex32_regime()


if __name__ == "__main__":
    main()
