#!/usr/bin/env python
"""The sweep daemon over the wire: negotiation, pooling, and the wire tax.

Starts an in-process `repro serve` daemon and walks the client surface:

1. *Protocol negotiation* — the default client asks for the zero-copy
   binary frame (`Accept: application/x-repro-frame`) and falls back
   to base64-JSON transparently; both paths return bit-identical
   arrays, and `/healthz` advertises what the daemon speaks.
2. *Connection-pool knobs* — `pool_size` keep-alive sockets shared by
   threads, `retries`/`backoff_s` for transient transport errors, and
   the `retry_non_idempotent` opt-in that `RemoteSweepCache` uses for
   its content-addressed PUTs.
3. *The wire tax* — warm-hit latency over the frame, over forced
   JSON, and for the direct in-process call, the numbers
   `benchmarks/bench_service.py` gates at ≤ 2x direct.
4. *Pipelining on the asyncio backend* — the same daemon run on the
   event-loop transport (`repro serve --backend asyncio`), with
   `compute_many(pipeline=N)` writing N requests down one keep-alive
   socket before reading the first response: identical bytes, fewer
   round trips.

Run:  python examples/sweep_service.py
"""

import time

import numpy as np

from repro.batch import SweepCache, optimal_allocation_curve
from repro.machines.catalog import PAPER_BUS
from repro.service import AsyncSweepServer, RemoteSweepCache, ServiceClient, SweepServer
from repro.service.schema import allocation_payload
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

SIDES = list(range(64, 1064, 4))


def negotiation(server: SweepServer) -> None:
    binary = ServiceClient(server.url)  # binary=True is the default
    legacy = ServiceClient(server.url, binary=False)  # force base64-JSON

    print("healthz protocols:", binary.health()["protocols"])
    a = binary.allocation_curve("paper-bus", "5-point", "square", SIDES, integer=True)
    b = legacy.allocation_curve("paper-bus", "5-point", "square", SIDES, integer=True)
    print(f"binary client spoke: {binary.last_protocol}  (served: {binary.last_served})")
    print(f"legacy client spoke: {legacy.last_protocol}  (served: {legacy.last_served})")
    identical = a.speedup.tobytes() == b.speedup.tobytes()
    print(f"frame and JSON answers bit-identical: {identical}")


def pool_knobs(server: SweepServer) -> None:
    # One client, shared by threads: pool_size keep-alive connections,
    # each with TCP_NODELAY; stale sockets are replayed invisibly, and
    # transient errors retry with exponential backoff (retries attempts
    # of backoff_s, 2*backoff_s, ...).  PUTs are exempt from retry
    # unless the caller opts in.
    client = ServiceClient(
        server.url,
        pool_size=2,  # keep-alive sockets kept open (default 4)
        retries=3,  # transient-error retry budget (default 2)
        backoff_s=0.02,  # first backoff; doubles per retry (default 0.05)
        retry_non_idempotent=False,  # default: never replay PUTs
    )
    for _ in range(3):
        client.allocation_curve("paper-bus", "5-point", "strip", SIDES)
    print("3 requests over one pooled keep-alive connection: ok")

    # RemoteSweepCache rides the same pool and opts into PUT retry —
    # its PUTs are content-addressed, so replaying one is harmless.
    remote = RemoteSweepCache(server.url, pool_size=2)
    print(f"RemoteSweepCache retries PUTs: {remote.client.retry_non_idempotent}")


def wire_tax(server: SweepServer) -> None:
    binary = ServiceClient(server.url)
    legacy = ServiceClient(server.url, binary=False)
    cache = SweepCache()
    kind = PartitionKind.SQUARE

    def median_ms(fn, repeats: int = 9) -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return float(np.median(times)) * 1e3

    direct = lambda: optimal_allocation_curve(  # noqa: E731
        PAPER_BUS, FIVE_POINT, kind, SIDES, integer=True, cache=cache
    )
    frame = lambda: binary.allocation_curve(  # noqa: E731
        "paper-bus", "5-point", "square", SIDES, integer=True
    )
    json_path = lambda: legacy.allocation_curve(  # noqa: E731
        "paper-bus", "5-point", "square", SIDES, integer=True
    )
    direct()  # warm both caches
    frame()
    d, f, j = median_ms(direct), median_ms(frame), median_ms(json_path)
    print(f"warm hit, {len(SIDES)} points: direct {d:.2f} ms | "
          f"frame {f:.2f} ms | json {j:.2f} ms")
    print(f"wire overhead: frame {(f - d) / d:.2f}x direct, "
          f"json {(j - d) / d:.2f}x direct (gate: <= 2x)")


def pipelining() -> None:
    # The asyncio backend: same handlers, same bytes, but every socket
    # is owned by one event loop (thousands of idle connections cost
    # no threads) and pipelined requests are answered in order.
    with AsyncSweepServer(port=0, batch_window_s=0.0) as server:
        print(f"asyncio daemon: {server.url} "
              f"(backend: {ServiceClient(server.url).health()['backend']})")
        client = ServiceClient(server.url)
        payloads = [
            allocation_payload("paper-bus", "5-point", "square", SIDES[: 50 + i])
            for i in range(32)
        ]
        for p in payloads:
            client.compute(p)  # warm every entry; we time the wire, not compute

        start = time.perf_counter()
        sequential = [client.compute(p) for p in payloads]
        seq_s = time.perf_counter() - start

        start = time.perf_counter()
        pipelined = client.compute_many(payloads, pipeline=16)
        pipe_s = time.perf_counter() - start

        identical = all(
            ours["speedup"].tobytes() == theirs["speedup"].tobytes()
            for ours, theirs in zip(pipelined, sequential)
        )
        print(f"32 warm requests: sequential {seq_s * 1e3:.1f} ms | "
              f"pipelined (depth 16) {pipe_s * 1e3:.1f} ms "
              f"({seq_s / pipe_s:.2f}x)")
        print(f"pipelined answers bit-identical and in order: {identical}")


def main() -> None:
    with SweepServer(port=0) as server:
        print(f"daemon: {server.url}\n")
        negotiation(server)
        print()
        pool_knobs(server)
        print()
        wire_tax(server)
    print()
    pipelining()


if __name__ == "__main__":
    main()
