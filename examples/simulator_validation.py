#!/usr/bin/env python
"""Verify the paper's formulas with the discrete-event simulator.

The paper closes: "Future effort will be devoted to verifying our
analysis empirically."  This example is that verification in
simulation: for each architecture it sweeps processor counts on one
grid, simulates an iteration event-by-event on the exact decomposition
(FIFO bus arbitration, direction-phased halo messages, banyan stage
delays), and compares against the closed-form cycle time.

Run:  python examples/simulator_validation.py
"""

from repro import (
    AsynchronousBus,
    BanyanNetwork,
    FIVE_POINT,
    Hypercube,
    PartitionKind,
    SynchronousBus,
)
from repro.report.tables import format_table
from repro.sim.validate import validate_machine, validation_summary

CONFIGS = [
    ("sync bus / squares", SynchronousBus(b=6.1e-6, c=0.0), PartitionKind.SQUARE),
    ("sync bus / strips", SynchronousBus(b=6.1e-6, c=0.0), PartitionKind.STRIP),
    ("async bus / squares", AsynchronousBus(b=6.1e-6, c=0.0), PartitionKind.SQUARE),
    (
        "hypercube / squares",
        Hypercube(alpha=1e-6, beta=1e-5, packet_words=16),
        PartitionKind.SQUARE,
    ),
    ("banyan / squares", BanyanNetwork(w=2e-7), PartitionKind.SQUARE),
]

N = 48
PROCS = [1, 2, 3, 4, 6, 8, 12, 16]


def main() -> None:
    summary_rows = []
    for label, machine, kind in CONFIGS:
        sweep = validate_machine(machine, FIVE_POINT, N, PROCS, kind)
        s = validation_summary(sweep)

        detail = [
            (p.processors, p.analytic, p.simulated, f"{p.relative_error:+.1%}")
            for p in sweep.points
        ]
        print(
            format_table(
                ["P", "model cycle", "simulated cycle", "error"],
                detail,
                title=f"{label}  (n = {N})",
            )
        )
        print()
        summary_rows.append(
            (
                label,
                f"{s['mean_relative_error']:+.1%}",
                f"{s['max_abs_relative_error']:.1%}",
                s["best_p_analytic"],
                s["best_p_simulated"],
            )
        )

    print(
        format_table(
            ["configuration", "mean err", "max |err|", "best P (model)", "best P (sim)"],
            summary_rows,
            title="Validation summary",
        )
    )
    print()
    print(
        "Nearest-neighbour and banyan models are near-exact.  Bus cycles\n"
        "simulate 10-30% faster than the model because domain-boundary\n"
        "partitions communicate fewer than four sides: the analytic model\n"
        "is a safe upper envelope, and it ranks processor counts correctly\n"
        "— which is what the paper's conclusions require."
    )


if __name__ == "__main__":
    main()
