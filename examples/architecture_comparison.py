#!/usr/bin/env python
"""Architecture shoot-out: which machine scales to large PDE grids?

Reproduces the spirit of Table I interactively: sweeps problem sizes
on four architectures (hypercube, mesh, banyan, sync/async bus), plots
optimal speedup on log-log axes (ASCII), and fits the growth exponents.

Run:  python examples/architecture_comparison.py
"""

import math

from repro import (
    AsynchronousBus,
    BanyanNetwork,
    FIVE_POINT,
    Hypercube,
    PartitionKind,
    SynchronousBus,
    Workload,
    fit_scaling_exponent,
    optimal_speedup,
)
from repro.report.ascii_plot import multi_line_plot
from repro.report.tables import format_table

MACHINES = {
    "hypercube": Hypercube(alpha=1e-6, beta=1e-5, packet_words=16),
    "banyan": BanyanNetwork(w=2e-7),
    "sync bus": SynchronousBus(b=6.1e-6, c=0.0),
    "async bus": AsynchronousBus(b=6.1e-6, c=0.0),
}

EXPECTED_EXPONENT = {
    "hypercube": "1 (linear)",
    "banyan": "1 - log factor",
    "sync bus": "1/3",
    "async bus": "1/3",
}


def main() -> None:
    grid_sides = [2**e for e in range(7, 14)]
    template = Workload(n=128, stencil=FIVE_POINT)

    speedups: dict[str, list[float]] = {}
    for name, machine in MACHINES.items():
        speedups[name] = [
            optimal_speedup(machine, template.with_n(n), PartitionKind.SQUARE).speedup
            for n in grid_sides
        ]

    # ------------------------------------------------------------- table
    rows = []
    for i, n in enumerate(grid_sides):
        rows.append([n * n] + [round(speedups[m][i], 1) for m in MACHINES])
    print(
        format_table(
            ["n^2"] + list(MACHINES),
            rows,
            title="Optimal speedup by architecture (squares, machine grows with problem)",
        )
    )
    print()

    # ------------------------------------------------------- log-log plot
    log_n2 = [2 * math.log2(n) for n in grid_sides]
    log_speedups = {
        name: [math.log2(s) for s in series] for name, series in speedups.items()
    }
    print(
        multi_line_plot(
            log_n2,
            log_speedups,
            width=60,
            height=18,
            title="log2(optimal speedup) vs log2(n^2) — slope = growth exponent",
        )
    )
    print()

    # ---------------------------------------------------------- exponents
    n2 = [float(n) * n for n in grid_sides]
    rows = []
    for name in MACHINES:
        fit = fit_scaling_exponent(n2, speedups[name])
        rows.append((name, round(fit.exponent, 4), EXPECTED_EXPONENT[name]))
    print(
        format_table(
            ["architecture", "fitted exponent", "paper"],
            rows,
            title="Growth exponents (Table I)",
        )
    )
    print()
    print(
        "Buses flatten out almost immediately; the banyan tracks the\n"
        "hypercube up to its log factor.  Which network wins in absolute\n"
        "terms depends on switch vs message speeds, exactly as Section 7\n"
        "observes — asymptotics only separate networks from buses."
    )


if __name__ == "__main__":
    main()
