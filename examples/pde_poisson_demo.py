#!/usr/bin/env python
"""End-to-end: actually solve the paper's model problem in parallel.

Solves −Δu = 2π² sin(πx) sin(πy) on a 64×64 grid with partitioned
point-Jacobi (the paper's algorithm), verifies the parallel iterates
are bit-identical to the sequential solver, measures real halo traffic
against the model's volume formulas, and prices the whole solve on two
machines using the cycle-time model.

Run:  python examples/pde_poisson_demo.py
"""

import numpy as np

from repro import FIVE_POINT, PAPER_BUS, PartitionKind, Workload
from repro.machines.hypercube import Hypercube
from repro.partitioning.decomposition import decomposition_for
from repro.solver.convergence import CheckSchedule, InfNormCriterion
from repro.solver.jacobi import solve_jacobi
from repro.solver.parallel import ParallelJacobi, solve_jacobi_parallel
from repro.solver.problems import poisson_manufactured
from repro.report.tables import format_kv_block, format_table

N = 64
PROCS = 16


def main() -> None:
    problem = poisson_manufactured()
    workload = Workload(n=N, stencil=FIVE_POINT)
    decomposition = decomposition_for(N, PROCS, "block")

    # --------------------------------------------------------------- solve
    criterion = InfNormCriterion(tol=1e-9)
    sequential = solve_jacobi(
        FIVE_POINT, problem, N, criterion, max_iterations=500_000
    )
    parallel = solve_jacobi_parallel(
        FIVE_POINT,
        problem,
        decomposition,
        criterion,
        schedule=CheckSchedule(10),  # Saltz-Naik-Nicol-style sparse checking
        max_iterations=500_000,
    )
    exact = problem.exact_grid(N)
    print(
        format_kv_block(
            {
                "problem": problem.name,
                "grid": f"{N} x {N} on {PROCS} ranks (block decomposition)",
                "sequential iterations": sequential.iterations,
                "parallel iterations (check every 10)": parallel.iterations,
                "max |u - exact| (discretization error)": float(
                    np.max(np.abs(parallel.field.interior - exact))
                ),
                "parallel == sequential field": bool(
                    np.allclose(
                        parallel.field.interior,
                        sequential.field.interior,
                        atol=1e-8,
                    )
                ),
            },
            title="Solve",
        )
    )
    print()

    # ------------------------------------------------------- halo traffic
    runner = ParallelJacobi(FIVE_POINT, problem, decomposition)
    runner.exchange_halos()
    measured = runner.read_volume_per_rank()
    side = (N * N / PROCS) ** 0.5
    model = 4.0 * side  # 4·k·s for interior square partitions
    rows = [
        ("interior rank (max)", max(measured), model, max(measured) / model),
        ("domain-edge rank (min)", min(measured), model, min(measured) / model),
    ]
    print(
        format_table(
            ["rank kind", "measured words/iter", "model 4ks", "ratio"],
            rows,
            title="Halo traffic vs the model's volume formula",
        )
    )
    print("Edge ranks communicate fewer sides — the model is an upper envelope.")
    print()

    # --------------------------------------------------------- cost model
    iters = parallel.iterations
    rows = []
    for name, machine in (
        ("16-processor bus", PAPER_BUS),
        ("16-processor hypercube", Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)),
    ):
        cycle = machine.cycle_time_all_processors(
            workload, PartitionKind.SQUARE, PROCS
        )
        serial_total = workload.serial_time() * iters
        rows.append(
            (
                name,
                cycle,
                cycle * iters,
                round(serial_total / (cycle * iters), 2),
            )
        )
    print(
        format_table(
            ["machine", "cycle time", "predicted solve time", "speedup vs serial"],
            rows,
            title=f"Pricing the full solve ({iters} iterations) with the model",
        )
    )


if __name__ == "__main__":
    main()
