#!/usr/bin/env python
"""What the paper's two placement assumptions are worth.

Section 4 assumes logically adjacent partitions map to physically
adjacent hypercube nodes; Section 7 assumes boundary data is placed so
banyan reads never collide at a switch.  Both assumptions are load-
bearing, and this example quantifies each:

1. a hypercube with a *random* partition-to-node mapping loses the
   constant-cycle property and degrades to banyan-like n²/log n;
2. a butterfly network with *bit-reversed* memory placement suffers
   Θ(√N) switch congestion, multiplying every read by that factor.

Run:  python examples/placement_and_mapping.py
"""

from repro import FIVE_POINT, Hypercube, PartitionKind, Workload, optimal_speedup
from repro.machines.mapping import RandomMappingHypercube
from repro.report.tables import format_table
from repro.sim.network.butterfly import (
    ButterflyNetwork,
    bit_reversal_permutation,
    cyclic_shift_permutation,
    random_permutation,
)


def mapping_ablation() -> None:
    embedded = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
    random_map = RandomMappingHypercube(alpha=1e-6, beta=1e-5, packet_words=16)
    rows = []
    for n in (256, 1024, 4096, 16384):
        w = Workload(n=n, stencil=FIVE_POINT)
        s_e = optimal_speedup(embedded, w, PartitionKind.SQUARE).speedup
        s_r = optimal_speedup(random_map, w, PartitionKind.SQUARE).speedup
        rows.append((n, round(s_e), round(s_r), round(s_e / s_r, 2)))
    print(
        format_table(
            ["n", "embedded mapping", "random mapping", "embedding gain"],
            rows,
            title="Hypercube: adjacency-preserving vs random mapping (Sec. 4)",
        )
    )
    print("The gain grows like log2(N)/2 — the embedding is what keeps")
    print("hypercube speedup linear in n².")
    print()


def placement_ablation() -> None:
    rows = []
    for d in range(3, 11):
        n = 1 << d
        net = ButterflyNetwork(n_ports=n)
        rows.append(
            (
                n,
                net.congestion(list(range(n))),
                net.congestion(cyclic_shift_permutation(n)),
                net.congestion(random_permutation(n, seed=0)),
                net.congestion(bit_reversal_permutation(n)),
                round(n**0.5, 1),
            )
        )
    print(
        format_table(
            ["N", "identity", "cyclic shift", "random", "bit reversal", "sqrt(N)"],
            rows,
            title="Butterfly switch congestion by memory placement (Sec. 7, asm. 3)",
        )
    )
    print("Identity (the paper's placement) and shifts route conflict-free;")
    print("bit-reversal placement drives congestion to Θ(sqrt N), multiplying")
    print("every read's 2·w·log2(N) cost by the congestion factor.")


def main() -> None:
    mapping_ablation()
    placement_ablation()


if __name__ == "__main__":
    main()
