"""E-FIG6: working-rectangle approximation errors (Figure 6a/6b)."""

from conftest import emit

from repro.experiments import get_experiment


def test_bench_figure6(benchmark, results_dir):
    run = get_experiment("E-FIG6")
    result = benchmark.pedantic(
        lambda: run(full_series=True), rounds=1, iterations=1
    )
    emit(result, results_dir)
    # Paper: errors usually < 3% (area) and < 6% (perimeter).
    for row in result.table("summary").rows:
        assert row[4] >= 0.85  # fraction of areas within 3%
        assert row[7] >= 0.85  # fraction of perimeters within 6%
    # Full 256-grid series present for the literal bar graphs.
    series = result.table("series n=256")
    assert series.rows[0][0] == 1024
    assert series.rows[-1][0] == 16384
