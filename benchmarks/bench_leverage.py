"""E-TEXT3: hardware leverage at the bus optimum."""

import math

from conftest import emit

from repro.experiments import get_experiment


def test_bench_leverage(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-TEXT3"), rounds=1, iterations=1)
    emit(result, results_dir)

    table = result.table("cycle-time factor after 2x speedup of one component")
    measured = {(row[0], row[1]): row[2] for row in table.rows}
    assert abs(measured[("strip", "b")] - 1 / math.sqrt(2)) < 1e-9
    assert abs(measured[("strip", "t_flop")] - 1 / math.sqrt(2)) < 1e-9
    assert abs(measured[("square", "b")] - 0.5 ** (2 / 3)) < 1e-9  # 0.63
    assert abs(measured[("square", "t_flop")] - 0.5 ** (1 / 3)) < 1e-9  # 0.79

    heavy = result.table("c-dominated bus (c/b=1000): leverage of 2x speedups")
    factors = {row[0]: row[1] for row in heavy.rows}
    assert factors["b"] > 0.95      # bus speed barely helps
    assert factors["c"] < factors["b"]  # c is the real lever
