"""BENCH-ANALYSIS: the vectorized analysis layer vs the scalar core.

Two measurements, recorded to ``results/BENCH_analysis.json`` so the
perf trajectory is tracked across PRs:

* **scalar vs vectorized** — a 2000-point capacity-planning sweep
  (integer-constrained optimal allocations over a dense grid-side axis
  on the paper's bus) through ``repro.batch.analysis`` versus the
  equivalent per-point ``optimize_allocation`` loop.  The layer
  promises ≥ 50×; typical is well above.
* **cold vs warm cache** — the same sweep through the content-addressed
  sweep cache: a cold disk-backed miss (compute + store) versus a warm
  disk hit from a fresh process-like cache instance.

Run as a script (CI's smoke bench) or under pytest:

    PYTHONPATH=src python benchmarks/bench_analysis.py
    pytest benchmarks/bench_analysis.py -s
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.batch import SweepCache, optimal_allocation_curve
from repro.core.allocation import optimize_allocation
from repro.core.parameters import Workload
from repro.machines.catalog import PAPER_BUS
from repro.report.csvio import default_results_dir
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

GRID_POINTS = 2000

#: The acceptance bar for the vectorized analysis layer.
MIN_SPEEDUP = 50.0


def _axis() -> list[int]:
    """2000 distinct grid sides spanning [64, 8192]."""
    sides = np.unique(
        np.round(np.geomspace(64, 8192, GRID_POINTS)).astype(int)
    ).tolist()
    taken = set(sides)
    extra = (n for n in range(64, 8192) if n not in taken)
    while len(sides) < GRID_POINTS:
        sides.append(next(extra))
    return sorted(sides[:GRID_POINTS])


def bench_vectorized() -> dict:
    """Time the capacity-planning sweep both ways and check they agree."""
    sides = _axis()
    kind = PartitionKind.SQUARE

    start = time.perf_counter()
    curve = optimal_allocation_curve(
        PAPER_BUS, FIVE_POINT, kind, sides, integer=True
    )
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    scalar_speedup = np.empty(len(sides))
    scalar_area = np.empty(len(sides))
    for i, n in enumerate(sides):
        alloc = optimize_allocation(
            PAPER_BUS, Workload(n=n, stencil=FIVE_POINT), kind, integer=True
        )
        scalar_speedup[i] = alloc.speedup
        scalar_area[i] = alloc.area
    scalar_s = time.perf_counter() - start

    np.testing.assert_array_equal(curve.speedup, scalar_speedup)
    np.testing.assert_array_equal(curve.area, scalar_area)
    return {
        "points": len(sides),
        "machine": "paper-bus",
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vectorized_s,
        "speedup": scalar_s / vectorized_s,
    }


def bench_cache() -> dict:
    """Cold (compute + store) vs warm (disk hit) for the same sweep."""
    sides = _axis()
    kind = PartitionKind.SQUARE
    with tempfile.TemporaryDirectory() as tmp:
        cold_cache = SweepCache(tmp)
        start = time.perf_counter()
        cold = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, kind, sides, integer=True, cache=cold_cache
        )
        cold_s = time.perf_counter() - start

        warm_cache = SweepCache(tmp)  # fresh memory, same store
        start = time.perf_counter()
        warm = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, kind, sides, integer=True, cache=warm_cache
        )
        warm_s = time.perf_counter() - start
        np.testing.assert_array_equal(cold.speedup, warm.speedup)
        warm_stats = warm_cache.stats.snapshot()
    return {
        "points": len(sides),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": cold_s / warm_s,
        "warm_stats": warm_stats,
        "warm_was_pure_hit": warm_stats["misses"] == 0,
    }


def run_bench(output_path: Path | None = None) -> dict:
    payload = {
        "bench": "analysis",
        "vectorized_analysis": bench_vectorized(),
        "sweep_cache": bench_cache(),
    }
    path = output_path or (default_results_dir() / "BENCH_analysis.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    payload["path"] = str(path)
    return payload


def test_bench_analysis(results_dir):
    payload = run_bench(results_dir / "BENCH_analysis.json")
    print()
    print(json.dumps(payload, indent=2))
    analysis = payload["vectorized_analysis"]
    assert analysis["speedup"] >= MIN_SPEEDUP, analysis
    cache = payload["sweep_cache"]
    assert cache["warm_was_pure_hit"], cache


if __name__ == "__main__":
    report = run_bench()
    json.dump(report, sys.stdout, indent=2)
    print()
    ok = (
        report["vectorized_analysis"]["speedup"] >= MIN_SPEEDUP
        and report["sweep_cache"]["warm_was_pure_hit"]
    )
    print(
        f"vectorized analysis {report['vectorized_analysis']['speedup']:.1f}x "
        f"({'PASS' if ok else 'FAIL'} >= {MIN_SPEEDUP:g}x), warm cache "
        f"{report['sweep_cache']['speedup']:.1f}x vs cold "
        f"({'hit' if report['sweep_cache']['warm_was_pure_hit'] else 'MISS'})"
    )
    sys.exit(0 if ok else 1)
