"""E-FIG7: minimal problem size vs processor count (Figure 7)."""

from conftest import emit

from repro.experiments import get_experiment


def test_bench_figure7(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-FIG7"), rounds=1, iterations=1)
    emit(result, results_dir)

    anchor = result.table(
        "Section 6.1 anchor: max useful processors on 256x256 squares"
    )
    computed = anchor.column("computed")
    assert abs(computed[0] - 14.0) < 0.2  # 5-point: paper says 14
    assert abs(computed[1] - 22.2) < 0.3  # 9-point: paper says 22

    # Shape: every configuration's threshold grows with N, and strips
    # always need larger problems than squares at the same N.
    for stencil in ("5-point", "9-point-box"):
        table = result.table(f"log2(n^2_min) — {stencil}")
        for col in table.headers[1:]:
            series = table.column(col)
            assert all(b > a for a, b in zip(series, series[1:]))
        strips = table.column("(a) sync strip")
        squares = table.column("(c) sync square")
        assert all(st >= sq for st, sq in zip(strips, squares))
    assert not [n for n in result.notes if n.startswith("WARNING")]
