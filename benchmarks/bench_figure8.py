"""E-FIG8: bus speedup and processor curves vs problem size (Figure 8)."""

from conftest import emit

from repro.experiments import get_experiment


def test_bench_figure8(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-FIG8"), rounds=1, iterations=1)
    emit(result, results_dir)

    for stencil in ("5-point", "9-point-box"):
        fits = {
            row[0]: row[1]
            for row in result.table(f"fitted speedup exponents — {stencil}").rows
        }
        assert abs(fits["squares"] - 1 / 3) < 1e-3
        assert abs(fits["strips"] - 1 / 4) < 1e-3

        table = result.table(f"curves — {stencil}")
        sq = table.column("speedup (squares)")
        st = table.column("speedup (strips)")
        # Squares dominate at every problem size, and both grow.
        assert all(a > b for a, b in zip(sq, st))
        assert all(b > a for a, b in zip(sq, sq[1:]))
        # More processors than speedup everywhere (efficiency < 1).
        procs_sq = table.column("processors (squares)")
        assert all(p > s for p, s in zip(procs_sq, sq))
