"""BENCH-SIM: the lockstep replica tier versus the scalar event oracle.

Two measurements, recorded to ``results/BENCH_sim.json`` so the batched
simulator's win is tracked across PRs:

* **batched vs scalar** — a 1000-replica Monte Carlo ensemble (one
  machine, one configuration, consecutive seeds) advanced once through
  :func:`repro.batch.sim.simulate_replicas` and once replica-by-replica
  through the event-level :func:`repro.sim.replica.simulate_replica`.
  The two are asserted bit-equal first; the gate is the speedup:
  the lockstep path must be at least ``MIN_SPEEDUP`` times faster.
* **warm cache** — the same ensemble served twice through
  :func:`repro.batch.sim.simulate_replicas_cached` against a fresh
  store: the second call must be answered by the cache (a memory hit),
  and its wall time is reported next to the cold compute.

Run as a script (CI's smoke bench) or under pytest:

    PYTHONPATH=src python benchmarks/bench_sim.py
    pytest benchmarks/bench_sim.py -s
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.batch.cache import SweepCache
from repro.batch.sim import (
    ReplicaBatchSpec,
    simulate_replicas,
    simulate_replicas_cached,
)
from repro.machines.catalog import DEFAULT_MACHINES
from repro.report.csvio import default_results_dir
from repro.sim.replica import simulate_replica
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

#: The acceptance bar: lockstep advance over scalar event replay.
MIN_SPEEDUP = 50.0

#: Ensemble size for the gate (the ISSUE's floor is 1000 replicas).
REPLICAS = 1000

SQUARE = PartitionKind.SQUARE


def _ensemble() -> ReplicaBatchSpec:
    return ReplicaBatchSpec.monte_carlo(
        DEFAULT_MACHINES["paper-bus"], FIVE_POINT, SQUARE, 48, 8, REPLICAS,
        jitter=0.05,
    )


def bench_batched_vs_scalar() -> dict:
    """One lockstep call against replica-by-replica event replay."""
    spec = _ensemble()
    simulate_replicas(spec)  # warm imports / allocator before timing

    start = time.perf_counter()
    batched = simulate_replicas(spec)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    scalar = [
        simulate_replica(
            spec.machine,
            spec.grid_sides[i],
            spec.processors[i],
            spec.stencil,
            spec.seeds[i],
            kind=spec.kind,
            t_flop=spec.t_flop,
            mode=spec.mode,
            jitter=spec.jitter,
        ).cycle_time
        for i in range(len(spec.seeds))
    ]
    scalar_s = time.perf_counter() - start

    # The speedup only counts if the answers are the same answer.
    np.testing.assert_array_equal(
        batched.cycle_times, np.asarray(scalar, dtype=np.float64)
    )

    return {
        "replicas": REPLICAS,
        "batched_seconds": batched_s,
        "scalar_seconds": scalar_s,
        "speedup": scalar_s / batched_s if batched_s else float("inf"),
    }


def bench_warm_cache() -> dict:
    """Cold compute-and-store, then the same request as a cache hit."""
    spec = _ensemble()
    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(cache_dir=tmp)

        start = time.perf_counter()
        cold = simulate_replicas_cached(spec, cache=cache)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = simulate_replicas_cached(spec, cache=cache)
        warm_s = time.perf_counter() - start

        np.testing.assert_array_equal(cold.cycle_times, warm.cycle_times)
        snapshot = cache.stats_snapshot()

    return {
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "hit_speedup": cold_s / warm_s if warm_s else float("inf"),
        "memory_hits": snapshot["memory_hits"],
        "disk_hits": snapshot["disk_hits"],
        "misses": snapshot["misses"],
    }


def run_bench(output_path: Path | None = None) -> dict:
    payload = {
        "bench": "sim",
        "batched_vs_scalar": bench_batched_vs_scalar(),
        "warm_cache": bench_warm_cache(),
        "min_speedup": MIN_SPEEDUP,
    }
    path = output_path or (default_results_dir() / "BENCH_sim.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    payload["path"] = str(path)
    return payload


def test_bench_sim(results_dir):
    payload = run_bench(results_dir / "BENCH_sim.json")
    print()
    print(json.dumps(payload, indent=2))
    batch = payload["batched_vs_scalar"]
    assert batch["speedup"] >= MIN_SPEEDUP, batch
    warm = payload["warm_cache"]
    assert warm["memory_hits"] + warm["disk_hits"] >= 1, warm
    assert warm["warm_seconds"] < warm["cold_seconds"], warm


if __name__ == "__main__":
    report = run_bench()
    json.dump(report, sys.stdout, indent=2)
    print()
    batch, warm = report["batched_vs_scalar"], report["warm_cache"]
    batch_ok = batch["speedup"] >= MIN_SPEEDUP
    warm_ok = (
        warm["memory_hits"] + warm["disk_hits"] >= 1
        and warm["warm_seconds"] < warm["cold_seconds"]
    )
    print(
        f"batched vs scalar: {batch['speedup']:.1f}x over "
        f"{batch['replicas']} replicas "
        f"({'PASS' if batch_ok else 'FAIL'} >= {MIN_SPEEDUP:g}); "
        f"warm cache: {warm['hit_speedup']:.1f}x hit "
        f"({'PASS' if warm_ok else 'FAIL'})"
    )
    sys.exit(0 if batch_ok and warm_ok else 1)
