"""BENCH-SERVICE: both serve backends — latency, pipelining, connections.

Five measurements, recorded to ``results/BENCH_service.json`` so the
serving layer's behavior is tracked across PRs:

* **server vs direct latency, per backend** — a warm allocation-curve
  request through ``repro serve`` versus the same request answered by
  the in-process cache, measured against the threaded backend AND the
  asyncio backend.  The client negotiates the zero-copy binary frame
  over a pooled keep-alive connection; the base64-JSON path is also
  timed.  **Gate (both backends):** the warm hit's wire overhead
  (server minus direct) must be at most ``MAX_WIRE_OVERHEAD_RATIO``
  times the direct cost — the protocol may not dominate the compute.
* **pipelined throughput, per backend** — warm hits issued through
  ``compute_many(pipeline=16)`` versus the same count sequentially
  over one keep-alive connection.  **Gate (asyncio):**
  ``pipelined_rps`` must be at least ``MIN_PIPELINE_SPEEDUP`` times
  the sequential rate — pipelining has to buy real round trips.
* **concurrent connections (asyncio)** — at least
  ``CONNECTION_TARGET`` idle keep-alive sockets held open at once
  (the fd limit is raised first), while the server's thread count
  stays bounded by the executor size.  **Gate:** sockets are not
  threads.
* **sustained throughput** — N concurrent keep-alive clients hammer
  warm requests for a fixed count (reported, not gated — CI boxes
  vary).
* **dedup under concurrency** — 8 concurrent clients each issue the
  same cold request 4 times; coalescing plus the shared cache must
  answer at least 90% of the 32 requests without recomputing (gate).

Run as a script (CI's smoke bench) or under pytest:

    PYTHONPATH=src python benchmarks/bench_service.py
    pytest benchmarks/bench_service.py -s
"""

from __future__ import annotations

import json
import resource
import socket
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.batch import SweepCache, optimal_allocation_curve
from repro.machines.catalog import PAPER_BUS
from repro.report.csvio import default_results_dir
from repro.service import AsyncSweepServer, ServiceClient, SweepServer
from repro.service.schema import allocation_payload
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

SIDES = list(range(64, 2064, 4))  # 500-point axis: a realistic curve request
CLIENTS = 8
ROUNDS = 4
THROUGHPUT_CLIENTS = 8
THROUGHPUT_REQUESTS = 100  # per client, warm, over keep-alive connections
PIPELINE_DEPTH = 16
PIPELINE_REQUESTS = 256  # warm hits per timing arm
CONNECTION_TARGET = 1000  # idle keep-alive sockets held open at once
ASYNC_WORKERS = 8

#: The acceptance bar: fraction of concurrent identical requests that
#: must be answered by the cache or by coalescing onto the one compute.
MIN_DEDUP_RATIO = 0.90

#: The wire-tax bar: a warm hit's protocol overhead (server latency
#: minus direct latency) must stay within this multiple of the direct
#: cost.  Before the persistent-connection binary path it was ~4x.
MAX_WIRE_OVERHEAD_RATIO = 2.0

#: Pipelined warm hits must beat one-at-a-time keep-alive requests by
#: at least this factor on the asyncio backend.
MIN_PIPELINE_SPEEDUP = 1.5

BACKENDS = {"thread": SweepServer, "asyncio": AsyncSweepServer}


def _make_server(backend: str):
    if backend == "asyncio":
        return AsyncSweepServer(port=0, workers=ASYNC_WORKERS)
    return SweepServer(port=0)


def _raise_fd_limit(wanted: int) -> int:
    """Raise RLIMIT_NOFILE toward ``wanted``; return the soft limit."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < wanted:
        target = wanted if hard == resource.RLIM_INFINITY else min(wanted, hard)
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
            soft = target
        except (ValueError, OSError):
            pass  # keep whatever we have; the bench scales down
    return soft


def _median_seconds(fn, repeats: int = 15) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def bench_latency(server) -> dict:
    """Median warm-request latency: daemon round trip vs direct cache.

    The daemon is timed twice — once over the negotiated binary frame
    (the default client) and once forced onto the base64-JSON fallback
    — so the frame's win is itself a tracked number.
    """
    client = ServiceClient(server.url)
    json_client = ServiceClient(server.url, binary=False)
    kind = PartitionKind.SQUARE

    direct_cache = SweepCache()
    direct = optimal_allocation_curve(
        PAPER_BUS, FIVE_POINT, kind, SIDES, integer=True, cache=direct_cache
    )
    served = client.allocation_curve("paper-bus", "5-point", "square", SIDES, integer=True)
    np.testing.assert_array_equal(served.speedup, direct.speedup)
    protocol = client.last_protocol

    server_s = _median_seconds(
        lambda: client.allocation_curve(
            "paper-bus", "5-point", "square", SIDES, integer=True
        )
    )
    json_s = _median_seconds(
        lambda: json_client.allocation_curve(
            "paper-bus", "5-point", "square", SIDES, integer=True
        )
    )
    direct_s = _median_seconds(
        lambda: optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, kind, SIDES, integer=True, cache=direct_cache
        )
    )
    return {
        "backend": server.backend,
        "points": len(SIDES),
        "protocol": protocol,
        "warm_server_seconds": server_s,
        "warm_server_json_seconds": json_s,
        "warm_direct_seconds": direct_s,
        "wire_overhead_seconds": server_s - direct_s,
        "wire_overhead_ratio": (server_s - direct_s) / direct_s,
        "warm_ratio": server_s / direct_s,
        "last_served": client.last_served,
    }


def bench_pipelining(server) -> dict:
    """Warm hits: ``compute_many(pipeline=16)`` vs sequential keep-alive."""
    axis = list(range(80, 1080, 4))  # distinct from the latency axis
    payload = allocation_payload("paper-bus", "5-point", "strip", axis, integer=True)
    client = ServiceClient(server.url)
    client.compute(payload)  # warm the entry; every timed request is a hit

    batch = [payload] * PIPELINE_REQUESTS

    start = time.perf_counter()
    for item in batch:
        client.compute(item)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    results = client.compute_many(batch, pipeline=PIPELINE_DEPTH)
    pipelined_s = time.perf_counter() - start
    assert len(results) == PIPELINE_REQUESTS

    sequential_rps = PIPELINE_REQUESTS / sequential_s
    pipelined_rps = PIPELINE_REQUESTS / pipelined_s
    return {
        "backend": server.backend,
        "requests": PIPELINE_REQUESTS,
        "pipeline_depth": PIPELINE_DEPTH,
        "sequential_seconds": sequential_s,
        "pipelined_seconds": pipelined_s,
        "sequential_rps": sequential_rps,
        "pipelined_rps": pipelined_rps,
        "speedup": pipelined_rps / sequential_rps,
    }


def bench_connections() -> dict:
    """Idle keep-alive sockets held open against the asyncio backend.

    The point of the event loop: a connection is a few kilobytes of
    loop state, not a thread.  We hold ``CONNECTION_TARGET`` sockets
    open at once and check (a) the server saw them all and still
    answers requests, (b) its thread population stayed bounded by the
    executor size — independent of the connection count.
    """
    # Each held connection costs two fds (client + server end of the
    # loopback pair), plus headroom for the process itself.
    soft = _raise_fd_limit(CONNECTION_TARGET * 2 + 512)
    target = min(CONNECTION_TARGET, max(0, (soft - 256) // 2))

    threads_before = threading.active_count()
    with AsyncSweepServer(port=0, workers=ASYNC_WORKERS) as server:
        client = ServiceClient(server.url)
        client.health()  # warm the loop and the executor
        sockets: list[socket.socket] = []
        try:
            for _ in range(target):
                sockets.append(socket.create_connection((server.host, server.port)))
            deadline = time.monotonic() + 30.0
            while server.connection_count < target and time.monotonic() < deadline:
                time.sleep(0.01)
            registered = server.connection_count
            thread_growth = threading.active_count() - threads_before
            alive = client.health()["status"] == "ok"  # still answering
        finally:
            for sock in sockets:
                sock.close()
        client.close()
    return {
        "fd_soft_limit": soft,
        "target": target,
        "concurrent_connections": registered,
        "thread_growth": thread_growth,
        "workers": ASYNC_WORKERS,
        "served_while_loaded": alive,
    }


def bench_throughput(server) -> dict:
    """Sustained warm req/s under concurrent keep-alive clients."""
    axis = list(range(48, 1048, 4))  # distinct from the latency axis
    ServiceClient(server.url).allocation_curve(
        "paper-bus", "5-point", "strip", axis, integer=True
    )  # warm the entry once

    barrier = threading.Barrier(THROUGHPUT_CLIENTS + 1)

    def hammer() -> None:
        client = ServiceClient(server.url)
        barrier.wait()
        for _ in range(THROUGHPUT_REQUESTS):
            client.allocation_curve("paper-bus", "5-point", "strip", axis, integer=True)

    threads = [threading.Thread(target=hammer) for _ in range(THROUGHPUT_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = THROUGHPUT_CLIENTS * THROUGHPUT_REQUESTS
    return {
        "clients": THROUGHPUT_CLIENTS,
        "requests_per_client": THROUGHPUT_REQUESTS,
        "requests": total,
        "elapsed_seconds": elapsed,
        "requests_per_second": total / elapsed,
    }


def bench_dedup(server) -> dict:
    """Concurrent identical cold requests: how many avoided a compute?"""
    before = server.stats_payload()
    axis = list(range(100, 1400, 3))  # distinct from the latency axis: cold

    def fire() -> None:
        client = ServiceClient(server.url)
        for _ in range(ROUNDS):
            client.allocation_curve(
                "paper-bus", "9-point-box", "strip", axis, integer=True
            )

    threads = [threading.Thread(target=fire) for _ in range(CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    after = server.stats_payload()

    requests = after["counters"]["requests"] - before["counters"]["requests"]
    computed = after["counters"]["computed"] - before["counters"]["computed"]
    coalesced = after["counters"]["coalesced"] - before["counters"]["coalesced"]
    batched = after["counters"]["batched"] - before["counters"]["batched"]
    # Compute-path hits only — the same numerator /v1/stats reports, so
    # the gated ratio matches what an operator sees.
    hits = after["counters"]["hits"] - before["counters"]["hits"]
    deduplicated = hits + coalesced + batched
    return {
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "requests": requests,
        "computed": computed,
        "coalesced": coalesced,
        "batched": batched,
        "cache_hits": hits,
        "dedup_ratio": deduplicated / requests if requests else 0.0,
        "elapsed_seconds": elapsed,
    }


def run_bench(output_path: Path | None = None) -> dict:
    latency: dict[str, dict] = {}
    pipelining: dict[str, dict] = {}
    for backend in ("thread", "asyncio"):
        with _make_server(backend) as server:
            latency[backend] = bench_latency(server)
            pipelining[backend] = bench_pipelining(server)
    connections = bench_connections()
    with SweepServer(port=0) as server:
        throughput = bench_throughput(server)
        dedup = bench_dedup(server)
    payload = {
        "bench": "service",
        "latency": latency,
        "pipelining": pipelining,
        "connections": connections,
        "throughput": throughput,
        "dedup": dedup,
        "min_dedup_ratio": MIN_DEDUP_RATIO,
        "max_wire_overhead_ratio": MAX_WIRE_OVERHEAD_RATIO,
        "min_pipeline_speedup": MIN_PIPELINE_SPEEDUP,
        "connection_target": CONNECTION_TARGET,
    }
    path = output_path or (default_results_dir() / "BENCH_service.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    payload["path"] = str(path)
    return payload


def _check_gates(payload: dict) -> list[str]:
    """Every failed gate as a human-readable line (empty means PASS)."""
    failures = []
    for backend, latency in payload["latency"].items():
        if latency["last_served"] != "memory":
            failures.append(f"{backend}: warm request was not a memory hit")
        if latency["protocol"] != "frame":
            failures.append(f"{backend}: client fell back off the binary frame")
        if latency["wire_overhead_ratio"] > MAX_WIRE_OVERHEAD_RATIO:
            failures.append(
                f"{backend}: wire overhead {latency['wire_overhead_ratio']:.2f}x "
                f"direct exceeds {MAX_WIRE_OVERHEAD_RATIO}x"
            )
    pipe = payload["pipelining"]["asyncio"]
    if pipe["speedup"] < MIN_PIPELINE_SPEEDUP:
        failures.append(
            f"asyncio: pipelined speedup {pipe['speedup']:.2f}x "
            f"below {MIN_PIPELINE_SPEEDUP}x sequential"
        )
    conn = payload["connections"]
    if conn["target"] >= CONNECTION_TARGET:
        if conn["concurrent_connections"] < CONNECTION_TARGET:
            failures.append(
                f"asyncio held {conn['concurrent_connections']} concurrent "
                f"connections, below {CONNECTION_TARGET}"
            )
    else:  # the box's fd hard limit kept us from even trying
        failures.append(
            f"fd limit {conn['fd_soft_limit']} too low to attempt "
            f"{CONNECTION_TARGET} connections (tried {conn['target']})"
        )
    if conn["thread_growth"] > conn["workers"] + 4:
        failures.append(
            f"asyncio grew {conn['thread_growth']} threads under "
            f"{conn['concurrent_connections']} connections "
            f"(bound: workers={conn['workers']} + 4)"
        )
    if not conn["served_while_loaded"]:
        failures.append("asyncio stopped answering under idle connection load")
    if payload["dedup"]["dedup_ratio"] < MIN_DEDUP_RATIO:
        failures.append(
            f"dedup ratio {payload['dedup']['dedup_ratio']:.3f} "
            f"below {MIN_DEDUP_RATIO}"
        )
    if payload["throughput"]["requests_per_second"] <= 0:
        failures.append("throughput bench recorded zero req/s")
    return failures


def test_bench_service(results_dir):
    payload = run_bench(results_dir / "BENCH_service.json")
    print()
    print(json.dumps(payload, indent=2))
    failures = _check_gates(payload)
    assert not failures, "\n".join(failures)


if __name__ == "__main__":
    report = run_bench()
    json.dump(report, sys.stdout, indent=2)
    print()
    failures = _check_gates(report)
    for backend in ("thread", "asyncio"):
        latency = report["latency"][backend]
        pipe = report["pipelining"][backend]
        print(
            f"{backend}: warm {latency['warm_server_seconds'] * 1e3:.2f} ms "
            f"({latency['protocol']}) vs direct "
            f"{latency['warm_direct_seconds'] * 1e3:.2f} ms "
            f"(wire {latency['wire_overhead_ratio']:.2f}x); "
            f"pipelined {pipe['pipelined_rps']:.0f} req/s vs sequential "
            f"{pipe['sequential_rps']:.0f} req/s ({pipe['speedup']:.2f}x)"
        )
    conn = report["connections"]
    print(
        f"asyncio held {conn['concurrent_connections']} idle connections "
        f"(+{conn['thread_growth']} threads, {conn['workers']} workers); "
        f"dedup ratio {report['dedup']['dedup_ratio']:.3f}; "
        f"{report['throughput']['requests_per_second']:.0f} req/s sustained"
    )
    for line in failures:
        print(f"FAIL: {line}")
    print("PASS" if not failures else f"{len(failures)} gate(s) failed")
    sys.exit(0 if not failures else 1)
