"""BENCH-SERVICE: the sweep daemon vs direct calls, dedup, and the wire tax.

Three measurements, recorded to ``results/BENCH_service.json`` so the
serving layer's behavior is tracked across PRs:

* **server vs direct latency** — a warm allocation-curve request
  through ``repro serve`` versus the same request answered by the
  in-process cache.  The client negotiates the zero-copy binary frame
  over a pooled keep-alive connection; the base64-JSON path is also
  timed for comparison.  **Gate:** the warm hit's wire overhead
  (server minus direct) must be at most ``MAX_WIRE_OVERHEAD_RATIO``
  times the direct cost — the protocol may not dominate the compute.
* **sustained throughput** — N concurrent keep-alive clients hammer
  warm requests for a fixed count; reported as requests/second (the
  "millions of users" proxy; reported, not gated — CI boxes vary).
* **dedup under concurrency** — 8 concurrent clients each issue the
  same cold request 4 times.  Fingerprint coalescing plus the shared
  cache must answer at least 90% of the 32 requests without
  recomputing (the gate): one thread computes, everyone else is served.

Run as a script (CI's smoke bench) or under pytest:

    PYTHONPATH=src python benchmarks/bench_service.py
    pytest benchmarks/bench_service.py -s
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.batch import SweepCache, optimal_allocation_curve
from repro.machines.catalog import PAPER_BUS
from repro.report.csvio import default_results_dir
from repro.service import ServiceClient, SweepServer
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

SIDES = list(range(64, 2064, 4))  # 500-point axis: a realistic curve request
CLIENTS = 8
ROUNDS = 4
THROUGHPUT_CLIENTS = 8
THROUGHPUT_REQUESTS = 100  # per client, warm, over keep-alive connections

#: The acceptance bar: fraction of concurrent identical requests that
#: must be answered by the cache or by coalescing onto the one compute.
MIN_DEDUP_RATIO = 0.90

#: The wire-tax bar: a warm hit's protocol overhead (server latency
#: minus direct latency) must stay within this multiple of the direct
#: cost.  Before the persistent-connection binary path it was ~4x.
MAX_WIRE_OVERHEAD_RATIO = 2.0


def _median_seconds(fn, repeats: int = 15) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def bench_latency(server: SweepServer) -> dict:
    """Median warm-request latency: daemon round trip vs direct cache.

    The daemon is timed twice — once over the negotiated binary frame
    (the default client) and once forced onto the base64-JSON fallback
    — so the frame's win is itself a tracked number.
    """
    client = ServiceClient(server.url)
    json_client = ServiceClient(server.url, binary=False)
    kind = PartitionKind.SQUARE

    direct_cache = SweepCache()
    direct = optimal_allocation_curve(
        PAPER_BUS, FIVE_POINT, kind, SIDES, integer=True, cache=direct_cache
    )
    served = client.allocation_curve("paper-bus", "5-point", "square", SIDES, integer=True)
    np.testing.assert_array_equal(served.speedup, direct.speedup)
    protocol = client.last_protocol

    server_s = _median_seconds(
        lambda: client.allocation_curve(
            "paper-bus", "5-point", "square", SIDES, integer=True
        )
    )
    json_s = _median_seconds(
        lambda: json_client.allocation_curve(
            "paper-bus", "5-point", "square", SIDES, integer=True
        )
    )
    direct_s = _median_seconds(
        lambda: optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, kind, SIDES, integer=True, cache=direct_cache
        )
    )
    return {
        "points": len(SIDES),
        "protocol": protocol,
        "warm_server_seconds": server_s,
        "warm_server_json_seconds": json_s,
        "warm_direct_seconds": direct_s,
        "wire_overhead_seconds": server_s - direct_s,
        "wire_overhead_ratio": (server_s - direct_s) / direct_s,
        "warm_ratio": server_s / direct_s,
        "last_served": client.last_served,
    }


def bench_throughput(server: SweepServer) -> dict:
    """Sustained warm req/s under concurrent keep-alive clients."""
    axis = list(range(48, 1048, 4))  # distinct from the latency axis
    ServiceClient(server.url).allocation_curve(
        "paper-bus", "5-point", "strip", axis, integer=True
    )  # warm the entry once

    barrier = threading.Barrier(THROUGHPUT_CLIENTS + 1)

    def hammer() -> None:
        client = ServiceClient(server.url)
        barrier.wait()
        for _ in range(THROUGHPUT_REQUESTS):
            client.allocation_curve("paper-bus", "5-point", "strip", axis, integer=True)

    threads = [threading.Thread(target=hammer) for _ in range(THROUGHPUT_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = THROUGHPUT_CLIENTS * THROUGHPUT_REQUESTS
    return {
        "clients": THROUGHPUT_CLIENTS,
        "requests_per_client": THROUGHPUT_REQUESTS,
        "requests": total,
        "elapsed_seconds": elapsed,
        "requests_per_second": total / elapsed,
    }


def bench_dedup(server: SweepServer) -> dict:
    """Concurrent identical cold requests: how many avoided a compute?"""
    before = server.stats_payload()
    axis = list(range(100, 1400, 3))  # distinct from the latency axis: cold

    def fire() -> None:
        client = ServiceClient(server.url)
        for _ in range(ROUNDS):
            client.allocation_curve(
                "paper-bus", "9-point-box", "strip", axis, integer=True
            )

    threads = [threading.Thread(target=fire) for _ in range(CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    after = server.stats_payload()

    requests = after["counters"]["requests"] - before["counters"]["requests"]
    computed = after["counters"]["computed"] - before["counters"]["computed"]
    coalesced = after["counters"]["coalesced"] - before["counters"]["coalesced"]
    batched = after["counters"]["batched"] - before["counters"]["batched"]
    # Compute-path hits only — the same numerator /v1/stats reports, so
    # the gated ratio matches what an operator sees.
    hits = after["counters"]["hits"] - before["counters"]["hits"]
    deduplicated = hits + coalesced + batched
    return {
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "requests": requests,
        "computed": computed,
        "coalesced": coalesced,
        "batched": batched,
        "cache_hits": hits,
        "dedup_ratio": deduplicated / requests if requests else 0.0,
        "elapsed_seconds": elapsed,
    }


def run_bench(output_path: Path | None = None) -> dict:
    with SweepServer(port=0) as server:
        payload = {
            "bench": "service",
            "latency": bench_latency(server),
            "throughput": bench_throughput(server),
            "dedup": bench_dedup(server),
            "min_dedup_ratio": MIN_DEDUP_RATIO,
            "max_wire_overhead_ratio": MAX_WIRE_OVERHEAD_RATIO,
        }
    path = output_path or (default_results_dir() / "BENCH_service.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    payload["path"] = str(path)
    return payload


def test_bench_service(results_dir):
    payload = run_bench(results_dir / "BENCH_service.json")
    print()
    print(json.dumps(payload, indent=2))
    dedup = payload["dedup"]
    assert dedup["dedup_ratio"] >= MIN_DEDUP_RATIO, dedup
    latency = payload["latency"]
    assert latency["last_served"] == "memory"
    assert latency["protocol"] == "frame"
    assert latency["wire_overhead_ratio"] <= MAX_WIRE_OVERHEAD_RATIO, latency
    assert payload["throughput"]["requests_per_second"] > 0


if __name__ == "__main__":
    report = run_bench()
    json.dump(report, sys.stdout, indent=2)
    print()
    ratio = report["dedup"]["dedup_ratio"]
    wire = report["latency"]["wire_overhead_ratio"]
    ok = ratio >= MIN_DEDUP_RATIO and wire <= MAX_WIRE_OVERHEAD_RATIO
    print(
        f"dedup ratio {ratio:.3f} over {report['dedup']['requests']} concurrent "
        f"identical requests ({'PASS' if ratio >= MIN_DEDUP_RATIO else 'FAIL'} "
        f">= {MIN_DEDUP_RATIO}); "
        f"warm server request {report['latency']['warm_server_seconds'] * 1e3:.2f} ms "
        f"({report['latency']['protocol']}) vs "
        f"{report['latency']['warm_server_json_seconds'] * 1e3:.2f} ms (json) vs "
        f"direct {report['latency']['warm_direct_seconds'] * 1e3:.2f} ms — "
        f"wire overhead {wire:.2f}x direct "
        f"({'PASS' if wire <= MAX_WIRE_OVERHEAD_RATIO else 'FAIL'} "
        f"<= {MAX_WIRE_OVERHEAD_RATIO}); "
        f"{report['throughput']['requests_per_second']:.0f} req/s sustained over "
        f"{report['throughput']['clients']} keep-alive clients"
    )
    sys.exit(0 if ok else 1)
