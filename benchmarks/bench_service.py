"""BENCH-SERVICE: the sweep daemon vs direct calls, and request dedup.

Two measurements, recorded to ``results/BENCH_service.json`` so the
serving layer's behavior is tracked across PRs:

* **server vs direct latency** — a warm allocation-curve request
  through ``repro serve`` (HTTP round trip + exact array decode)
  versus the same request answered by the in-process cache.  The wire
  overhead is the price of sharing one store across processes; it is
  reported, not gated.
* **dedup under concurrency** — 8 concurrent clients each issue the
  same cold request 4 times.  Fingerprint coalescing plus the shared
  cache must answer at least 90% of the 32 requests without
  recomputing (the gate): one thread computes, everyone else is served.

Run as a script (CI's smoke bench) or under pytest:

    PYTHONPATH=src python benchmarks/bench_service.py
    pytest benchmarks/bench_service.py -s
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.batch import SweepCache, optimal_allocation_curve
from repro.machines.catalog import PAPER_BUS
from repro.report.csvio import default_results_dir
from repro.service import ServiceClient, SweepServer
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

SIDES = list(range(64, 2064, 4))  # 500-point axis: a realistic curve request
CLIENTS = 8
ROUNDS = 4

#: The acceptance bar: fraction of concurrent identical requests that
#: must be answered by the cache or by coalescing onto the one compute.
MIN_DEDUP_RATIO = 0.90


def bench_latency(server: SweepServer) -> dict:
    """Median warm-request latency: daemon round trip vs direct cache."""
    client = ServiceClient(server.url)
    kind = PartitionKind.SQUARE

    direct_cache = SweepCache()
    optimal_allocation_curve(
        PAPER_BUS, FIVE_POINT, kind, SIDES, integer=True, cache=direct_cache
    )
    client.allocation_curve("paper-bus", "5-point", "square", SIDES, integer=True)

    server_times = []
    direct_times = []
    for _ in range(9):
        start = time.perf_counter()
        served = client.allocation_curve(
            "paper-bus", "5-point", "square", SIDES, integer=True
        )
        server_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, kind, SIDES, integer=True, cache=direct_cache
        )
        direct_times.append(time.perf_counter() - start)
    np.testing.assert_array_equal(served.speedup, direct.speedup)
    server_s = float(np.median(server_times))
    direct_s = float(np.median(direct_times))
    return {
        "points": len(SIDES),
        "warm_server_seconds": server_s,
        "warm_direct_seconds": direct_s,
        "wire_overhead_seconds": server_s - direct_s,
        "last_served": client.last_served,
    }


def bench_dedup(server: SweepServer) -> dict:
    """Concurrent identical cold requests: how many avoided a compute?"""
    before = server.stats_payload()
    axis = list(range(100, 1400, 3))  # distinct from the latency axis: cold

    def fire() -> None:
        client = ServiceClient(server.url)
        for _ in range(ROUNDS):
            client.allocation_curve(
                "paper-bus", "9-point-box", "strip", axis, integer=True
            )

    threads = [threading.Thread(target=fire) for _ in range(CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    after = server.stats_payload()

    requests = after["counters"]["requests"] - before["counters"]["requests"]
    computed = after["counters"]["computed"] - before["counters"]["computed"]
    coalesced = after["counters"]["coalesced"] - before["counters"]["coalesced"]
    batched = after["counters"]["batched"] - before["counters"]["batched"]
    # Compute-path hits only — the same numerator /v1/stats reports, so
    # the gated ratio matches what an operator sees.
    hits = after["counters"]["hits"] - before["counters"]["hits"]
    deduplicated = hits + coalesced + batched
    return {
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "requests": requests,
        "computed": computed,
        "coalesced": coalesced,
        "batched": batched,
        "cache_hits": hits,
        "dedup_ratio": deduplicated / requests if requests else 0.0,
        "elapsed_seconds": elapsed,
    }


def run_bench(output_path: Path | None = None) -> dict:
    with SweepServer(port=0) as server:
        payload = {
            "bench": "service",
            "latency": bench_latency(server),
            "dedup": bench_dedup(server),
            "min_dedup_ratio": MIN_DEDUP_RATIO,
        }
    path = output_path or (default_results_dir() / "BENCH_service.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    payload["path"] = str(path)
    return payload


def test_bench_service(results_dir):
    payload = run_bench(results_dir / "BENCH_service.json")
    print()
    print(json.dumps(payload, indent=2))
    dedup = payload["dedup"]
    assert dedup["dedup_ratio"] >= MIN_DEDUP_RATIO, dedup
    assert payload["latency"]["last_served"] == "memory"


if __name__ == "__main__":
    report = run_bench()
    json.dump(report, sys.stdout, indent=2)
    print()
    ratio = report["dedup"]["dedup_ratio"]
    ok = ratio >= MIN_DEDUP_RATIO
    print(
        f"dedup ratio {ratio:.3f} over {report['dedup']['requests']} concurrent "
        f"identical requests ({'PASS' if ok else 'FAIL'} >= {MIN_DEDUP_RATIO}); "
        f"warm server request {report['latency']['warm_server_seconds'] * 1e3:.2f} ms "
        f"vs direct {report['latency']['warm_direct_seconds'] * 1e3:.2f} ms"
    )
    sys.exit(0 if ok else 1)
