"""E-SOLVE: the solver substrate, plus raw kernel throughput timings."""

import numpy as np
from conftest import emit

from repro.experiments import get_experiment
from repro.solver.grid import GridField
from repro.solver.jacobi import jacobi_sweep
from repro.solver.problems import poisson_manufactured
from repro.stencils.library import FIVE_POINT


def test_bench_solver_experiment(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-SOLVE"), rounds=1, iterations=1)
    emit(result, results_dir)

    order_table = result.table("5-point discretization error (order -> 2.0)")
    orders = [row[3] for row in order_table.rows[1:]]
    assert all(o > 1.7 for o in orders)

    eq = result.table("parallel vs sequential (bit-identical iterates)")
    assert all(row[3] == "yes" for row in eq.rows)

    vols = result.table("measured halo read volume vs model (interior partitions)")
    for row in vols.rows:
        # The exchange plan ships full ghost frames (corners included,
        # standard halo practice), so blocks measure slightly above the
        # model's corner-free 4ks; strips match exactly.
        assert 0.5 <= row[4] <= 1.10


def test_bench_jacobi_sweep_kernel(benchmark):
    """Raw sweep throughput on a 256x256 grid — the E(S)·A·T_fp substrate."""
    n = 256
    problem = poisson_manufactured()
    fld = GridField.zeros(n, FIVE_POINT, problem.boundary_value)
    rhs = problem.rhs_grid(n)
    scratch = np.empty((n, n))

    benchmark(jacobi_sweep, FIVE_POINT, fld, scratch, rhs)
    # Sanity: the sweep touched the interior.
    assert float(np.abs(fld.interior).max()) > 0.0
