"""E-TAB1: Table I — optimal speedup by architecture."""

import math

from conftest import emit

from repro.experiments import get_experiment


def test_bench_table1(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-TAB1"), rounds=1, iterations=1)
    emit(result, results_dir)

    fits = {row[0]: row[1] for row in result.table("fitted growth exponents").rows}
    assert abs(fits["hypercube"] - 1.0) < 1e-6
    assert abs(fits["mesh"] - 1.0) < 1e-6
    assert 0.85 < fits["switching network"] < 1.0  # n²/log n
    assert abs(fits["synchronous bus"] - 1 / 3) < 1e-3
    assert abs(fits["asynchronous bus"] - 1 / 3) < 1e-3

    ratios = {r[0]: r[1] for r in result.table("async/sync optimal-speedup ratios").rows}
    assert abs(ratios["squares"] - 1.5) < 1e-6
    assert abs(ratios["strips"] - math.sqrt(2)) < 1e-6

    # Ranking at the largest grid: both networks crush the buses, async
    # beats sync.  (Cube-vs-banyan absolute order depends on network
    # speeds, not the log factor — Section 7's own caveat.)
    table = result.table("optimal speedup vs grid size (square partitions)")
    last = dict(zip(table.headers, table.rows[-1]))
    assert last["hypercube"] > 100 * last["asynchronous bus"]
    assert last["switching network"] > 100 * last["asynchronous bus"]
    assert last["asynchronous bus"] > last["synchronous bus"]
