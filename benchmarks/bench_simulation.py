"""E-SIMVAL: event-level simulation versus the analytic model."""

from conftest import emit

from repro.experiments import get_experiment


def test_bench_simulation_validation(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-SIMVAL"), rounds=1, iterations=1)
    emit(result, results_dir)

    summary = result.table("validation summary")
    for row in summary.rows:
        label, stencil, mean_err, max_err, best_m, best_s, agrees = row
        # The analytic model is an upper envelope for buses and near-exact
        # for neighbour networks: simulation never exceeds it meaningfully.
        assert mean_err <= 0.02
        # Optimal-processor rankings agree or sit in a flat optimum region.
        if agrees != "yes":
            assert max(best_m, best_s) <= 2 * min(best_m, best_s)

    # Nearest-neighbour and banyan agree within a few percent; the
    # 9-point box runs ~6% because its diagonal halo points are exactly
    # the corner volume footnote 4 ignores.
    tight = [r for r in summary.rows if "hypercube" in r[0] or "banyan" in r[0]]
    assert tight
    for r in tight:
        limit = 0.05 if r[1] == "5-point" else 0.08
        assert r[3] < limit

    # Pipelined bus scheduling only helps (overlap the model ignores).
    ablation = result.table("bus scheduling ablation (simulated cycle time)")
    barrier = {r[1]: r[2] for r in ablation.rows if r[0] == "barrier"}
    pipelined = {r[1]: r[2] for r in ablation.rows if r[0] == "pipelined"}
    assert all(pipelined[p] <= barrier[p] + 1e-15 for p in barrier)
