"""E-TEXT4: asynchronous-vs-synchronous bus constant factors."""

import math

from conftest import emit

from repro.experiments import get_experiment


def test_bench_async_factors(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-TEXT4"), rounds=1, iterations=1)
    emit(result, results_dir)
    for row in result.table("async/sync ratios").rows:
        _, strip_ratio, square_ratio, area_ratio = row
        assert abs(strip_ratio - math.sqrt(2)) < 1e-6
        assert abs(square_ratio - 1.5) < 1e-6
        assert abs(area_ratio - math.sqrt(2)) < 1e-9
