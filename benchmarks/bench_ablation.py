"""Ablation benches for the design choices DESIGN.md calls out.

1. **Volume accounting** (read+write vs read-only): the paper's in-text
   example and its derived equations differ by this choice; speedups
   differ by a bounded constant and all shape conclusions survive.
2. **Convergence-check scheduling**: checking every iteration vs every
   m — the Saltz-Naik-Nicol amortization the paper cites.
3. **Stencil order** (5-point vs 9-point): more flops per point buys
   more parallelism for the same communication.
"""

from conftest import emit

from repro.core.parameters import Workload
from repro.core.speedup import optimal_speedup
from repro.experiments.registry import ExperimentResult
from repro.machines.bus import SynchronousBus
from repro.solver.convergence import CheckSchedule, checked_cycle_time
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

SQUARE = PartitionKind.SQUARE
STRIP = PartitionKind.STRIP


def run_volume_mode_ablation() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-ABL-VOLUME",
        title="Ablation: read+write vs read-only bus volume accounting",
    )
    rows = []
    for n in (256, 1024, 4096):
        w = Workload(n=n, stencil=FIVE_POINT)
        rw = SynchronousBus(b=6.1e-6, c=0.0)
        ro = SynchronousBus(b=6.1e-6, c=0.0, volume_mode="read_only")
        s_rw = optimal_speedup(rw, w, SQUARE).speedup
        s_ro = optimal_speedup(ro, w, SQUARE).speedup
        rows.append((n, s_rw, s_ro, s_ro / s_rw))
    result.add_table(
        "optimal square speedup by accounting",
        ["n", "read+write", "read-only", "ratio"],
        rows,
    )
    result.notes.append(
        "Halving the charged volume scales optimal speedup by 2^(2/3) — a "
        "constant; the (n²)^(1/3) law is accounting-independent."
    )
    return result


def run_schedule_ablation() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-ABL-CHECK",
        title="Ablation: convergence-check schedule period",
    )
    bus = SynchronousBus(b=6.1e-6, c=0.0)
    w = Workload(n=256, stencil=FIVE_POINT)
    area = 4096.0
    base = bus.cycle_time(w, SQUARE, area)
    rows = []
    for period in (1, 2, 5, 10, 50):
        t = checked_cycle_time(bus, w, SQUARE, area, CheckSchedule(period))
        rows.append((period, t, (t - base) / base))
    result.add_table(
        "checked cycle time vs period (n=256, A=4096)",
        ["check period", "cycle time", "overhead fraction"],
        rows,
    )
    return result


def run_stencil_order_ablation() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-ABL-STENCIL",
        title="Ablation: stencil order buys parallelism (5-pt vs 9-pt)",
    )
    bus = SynchronousBus(b=6.1e-6, c=0.0)
    rows = []
    for n in (256, 1024):
        s5 = optimal_speedup(bus, Workload(n=n, stencil=FIVE_POINT), SQUARE)
        s9 = optimal_speedup(bus, Workload(n=n, stencil=NINE_POINT_BOX), SQUARE)
        rows.append((n, s5.processors, s9.processors, s5.speedup, s9.speedup))
    result.add_table(
        "optimal processors and speedup by stencil",
        ["n", "procs (5-pt)", "procs (9-pt)", "speedup (5-pt)", "speedup (9-pt)"],
        rows,
    )
    result.notes.append(
        "The 9-point stencil's higher computation-to-communication ratio "
        "admits more processors for the same grid (Section 6.1)."
    )
    return result


def test_bench_volume_mode_ablation(benchmark, results_dir):
    result = benchmark.pedantic(run_volume_mode_ablation, rounds=1, iterations=1)
    emit(result, results_dir)
    for row in result.table("optimal square speedup by accounting").rows:
        assert abs(row[3] - 2 ** (2 / 3)) < 1e-9


def test_bench_schedule_ablation(benchmark, results_dir):
    result = benchmark.pedantic(run_schedule_ablation, rounds=1, iterations=1)
    emit(result, results_dir)
    table = result.table("checked cycle time vs period (n=256, A=4096)")
    overheads = table.column("overhead fraction")
    assert all(b < a for a, b in zip(overheads, overheads[1:]))
    assert overheads[-1] < 0.05  # period 50: negligible, the paper's point


def test_bench_stencil_order_ablation(benchmark, results_dir):
    result = benchmark.pedantic(run_stencil_order_ablation, rounds=1, iterations=1)
    emit(result, results_dir)
    for row in result.table("optimal processors and speedup by stencil").rows:
        assert row[2] > row[1]  # 9-point uses more processors
