"""Benchmark harness conventions.

Every bench regenerates one paper artifact (figure, table, or in-text
claim), times the regeneration with pytest-benchmark, prints the same
rows the paper reports, and asserts the reproduction's shape anchors.
Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
reports inline (they are also written to ``results/`` as CSV).
"""

from __future__ import annotations

import pytest

from repro.report.csvio import default_results_dir


@pytest.fixture(scope="session")
def results_dir():
    return default_results_dir()


def emit(result, results_dir) -> None:
    """Print an experiment report and persist its CSV artifacts."""
    print()
    print(result.render())
    result.write_csvs(results_dir)
