"""E-SCAL / E-EXTREME: scaled speedup and extremal allocation."""

from conftest import emit

from repro.experiments import get_experiment


def test_bench_scaled_speedup(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-SCAL"), rounds=1, iterations=1)
    emit(result, results_dir)
    # Hypercube: exactly linear (speedup/n² constant to machine precision).
    spread = result.table("hypercube speedup / n² (constant = exactly linear)")
    assert spread.rows[0][2] < 1e-12
    # Banyan trails the cube by a growing log factor.
    table = result.table("scaled speedup, F = 64 points/processor")
    gap = table.column("cube/banyan")
    assert all(b >= a for a, b in zip(gap, gap[1:]))
    assert gap[-1] > 1.0


def test_bench_extremal_allocation(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-EXTREME"), rounds=1, iterations=1)
    emit(result, results_dir)
    table = result.table("best processor count over P in [1, 64], n=64 squares")
    assert all(row[2] == "yes" for row in table.rows)
    best = {row[0]: row[1] for row in table.rows}
    assert best["hypercube"] == 64       # good network: spread maximally
    assert best["hypercube (slow net)"] == 1  # terrible network: stay serial
