"""BENCH-GRAPH: what the sweep-graph planner saves — fusion and dedup.

Two measurements, recorded to ``results/BENCH_graph.json`` so the
planner's wins are tracked across PRs:

* **fusion** — a mixed batch of analysis requests (allocation curves,
  max-useful thresholds, minimal-size curves, and sweeps, each family
  spread over several axes) is planned as one graph.  The gate: the
  plan makes strictly fewer vectorized evaluations than there are
  requests — compatible siblings must share evaluations.  The wall
  time of the fused plan versus one eager evaluation per request is
  reported, not gated (the win scales with axis overlap).
* **dedup** — a request forest with heavily overlapping subgraphs
  (repeated ratio/allocation roots, as a fan-in dashboard or a batch
  of near-identical clients would issue).  The gate: at least 90% of
  the node instances across the forest are answered by an
  already-planned node instead of becoming new work.

Run as a script (CI's smoke bench) or under pytest:

    PYTHONPATH=src python benchmarks/bench_graph.py
    pytest benchmarks/bench_graph.py -s
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.batch.engine import SweepSpec
from repro.graph import nodes, plan
from repro.graph.planner import evaluate
from repro.machines.catalog import DEFAULT_MACHINES, PAPER_BUS
from repro.report.csvio import default_results_dir
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

#: The acceptance bar: fraction of node instances across the request
#: forest that dedup onto an already-planned node.
MIN_DEDUP_RATE = 0.90

SQUARE = PartitionKind.SQUARE


def _mixed_requests() -> list:
    """A realistic mixed batch: four families, several axes each."""
    batch = []
    for lo in (64, 96, 128, 256, 400, 512):
        batch.append(
            nodes.allocation_curve(
                PAPER_BUS, FIVE_POINT, SQUARE, list(range(lo, lo + 400, 4))
            )
        )
    for lo in (32, 64, 128):
        batch.append(
            nodes.max_useful_processors(
                PAPER_BUS, FIVE_POINT, SQUARE, list(range(lo, lo + 500, 8))
            )
        )
    for procs in ([2, 4, 8, 16], [8, 16, 32, 64], [4, 32, 128]):
        batch.append(
            nodes.minimal_problem_size(PAPER_BUS, NINE_POINT_BOX, SQUARE, procs)
        )
    for sides in ([64, 128, 256], [128, 256, 512], [64, 512, 1024]):
        batch.append(
            nodes.sweep(
                SweepSpec(
                    grid_sides=tuple(sides),
                    processors=(1.0, 4.0, 16.0, 64.0),
                    machines=(
                        ("ipsc", DEFAULT_MACHINES["ipsc"]),
                        ("paper-bus", DEFAULT_MACHINES["paper-bus"]),
                    ),
                )
            )
        )
    return batch


def bench_fusion() -> dict:
    """Plan a mixed batch once; compare against one-request-at-a-time."""
    batch = _mixed_requests()

    start = time.perf_counter()
    fused_plan = plan(batch)
    fused_results = fused_plan.execute()
    fused_s = time.perf_counter() - start

    start = time.perf_counter()
    solo_results = [evaluate([node])[0] for node in _mixed_requests()]
    solo_s = time.perf_counter() - start

    # The fused slices must equal the solo evaluations bit for bit.
    for fused, solo in zip(fused_results, solo_results):
        for name in solo:
            np.testing.assert_array_equal(fused[name], solo[name])

    return {
        "requests": fused_plan.n_requests,
        "evaluations": fused_plan.evaluations,
        "siblings_fused": fused_plan.siblings_fused,
        "fused_seconds": fused_s,
        "solo_seconds": solo_s,
        "speedup": solo_s / fused_s if fused_s else float("inf"),
    }


def bench_dedup() -> dict:
    """A forest of overlapping subgraphs: most instances must dedup."""
    sides = list(range(64, 1024, 16))
    cube, net = DEFAULT_MACHINES["ipsc"], DEFAULT_MACHINES["butterfly"]
    forest = []
    for _ in range(20):
        forest.append(nodes.speedup_ratio(cube, net, FIVE_POINT, SQUARE, sides))
        forest.append(nodes.strip_square_ratio(PAPER_BUS, FIVE_POINT, sides))
        forest.append(nodes.allocation_curve(cube, FIVE_POINT, SQUARE, sides))
        forest.append(nodes.allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, sides))

    start = time.perf_counter()
    p = plan(forest)
    p.execute()
    elapsed = time.perf_counter() - start

    instances = sum(planned.instances for planned in p.nodes)
    deduped = p.subgraphs_deduped
    return {
        "requests": p.n_requests,
        "node_instances": instances,
        "unique_nodes": p.n_nodes,
        "subgraphs_deduped": deduped,
        "dedup_rate": deduped / instances if instances else 0.0,
        "evaluations": p.evaluations,
        "elapsed_seconds": elapsed,
    }


def run_bench(output_path: Path | None = None) -> dict:
    payload = {
        "bench": "graph",
        "fusion": bench_fusion(),
        "dedup": bench_dedup(),
        "min_dedup_rate": MIN_DEDUP_RATE,
    }
    path = output_path or (default_results_dir() / "BENCH_graph.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    payload["path"] = str(path)
    return payload


def test_bench_graph(results_dir):
    payload = run_bench(results_dir / "BENCH_graph.json")
    print()
    print(json.dumps(payload, indent=2))
    fusion = payload["fusion"]
    assert fusion["evaluations"] < fusion["requests"], fusion
    assert fusion["siblings_fused"] > 0, fusion
    dedup = payload["dedup"]
    assert dedup["dedup_rate"] >= MIN_DEDUP_RATE, dedup


if __name__ == "__main__":
    report = run_bench()
    json.dump(report, sys.stdout, indent=2)
    print()
    fusion, dedup = report["fusion"], report["dedup"]
    fusion_ok = fusion["evaluations"] < fusion["requests"]
    dedup_ok = dedup["dedup_rate"] >= MIN_DEDUP_RATE
    print(
        f"fusion: {fusion['requests']} requests -> {fusion['evaluations']} "
        f"evaluations ({'PASS' if fusion_ok else 'FAIL'}); "
        f"dedup rate {dedup['dedup_rate']:.3f} over {dedup['node_instances']} "
        f"node instances ({'PASS' if dedup_ok else 'FAIL'} >= {MIN_DEDUP_RATE})"
    )
    sys.exit(0 if fusion_ok and dedup_ok else 1)
