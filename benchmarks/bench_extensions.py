"""Extension benches: fully-async bus, embedding ablation, placement ablation."""

import math

from conftest import emit

from repro.experiments import get_experiment


def test_bench_fully_async(benchmark, results_dir):
    result = benchmark.pedantic(
        get_experiment("E-EXT-FULLASYNC"), rounds=1, iterations=1
    )
    emit(result, results_dir)
    table = result.table("optimal speedup by overlap level")
    for row in table.rows:
        n, kind, s_sync, s_async, s_full, ratio = row
        assert s_sync < s_async < s_full
        expected = math.sqrt(2.0) if kind == "strip" else 2.0 ** (1.0 / 3.0)
        assert abs(ratio - expected) < 1e-6
    for row in result.table("fully-async growth exponents (unchanged)").rows:
        assert abs(row[1] - row[2]) < 1e-3


def test_bench_mapping_ablation(benchmark, results_dir):
    result = benchmark.pedantic(
        get_experiment("E-ABL-MAPPING"), rounds=1, iterations=1
    )
    emit(result, results_dir)
    table = result.table("optimal speedup with and without the embedding")
    gains = table.column("embedding gain")
    assert all(g > 1.0 for g in gains)
    assert gains[-1] > gains[0]  # the embedding matters more at scale
    exp_row = result.table("random-mapping growth exponent (drops below linear)")
    assert exp_row.rows[0][0] < 0.999


def test_bench_placement_ablation(benchmark, results_dir):
    result = benchmark.pedantic(
        get_experiment("E-ABL-PLACEMENT"), rounds=1, iterations=1
    )
    emit(result, results_dir)
    table = result.table("max switch-edge congestion by placement")
    for row in table.rows:
        n_ports, identity, shift, reversal, rand, sqrt_ref = row
        assert identity == 1          # the paper's assumption 3 holds
        assert shift == 1             # butterflies route cyclic shifts
        assert reversal > 1           # ... but not bit reversal
        assert 1 <= rand <= reversal + 2
    reversals = table.column("bit reversal")
    # Θ(sqrt N): congestion doubles every 4x in ports (exactly 2x here).
    assert reversals[-1] == 2 * reversals[-3]
