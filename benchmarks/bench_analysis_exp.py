"""Analysis-extension experiment benches: isoefficiency, arbitration, operators."""

from conftest import emit

from repro.experiments import get_experiment


def test_bench_isoefficiency(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-ISO"), rounds=1, iterations=1)
    emit(result, results_dir)
    table = result.table("n² growth exponent in N at efficiency 0.5")
    fitted = dict(zip(table.column("configuration"), table.column("fitted exponent")))
    assert abs(fitted["hypercube / squares"] - 1.0) < 0.15
    assert abs(fitted["sync bus / squares"] - 3.0) < 0.1
    assert abs(fitted["sync bus / strips"] - 4.0) < 0.1
    assert 1.0 < fitted["banyan / squares"] < 2.0


def test_bench_arbitration(benchmark, results_dir):
    result = benchmark.pedantic(
        get_experiment("E-ABL-ARBITRATION"), rounds=1, iterations=1
    )
    emit(result, results_dir)
    table = result.table("phase completion by discipline (V words/processor)")
    for row in table.rows:
        _, _, _, _, _, block_ratio, word_ratio = row
        assert abs(block_ratio - 1.0) < 1e-12  # block FIFO == analytic model
        assert 0.7 <= word_ratio <= 1.0 + 1e-12  # round-robin inside envelope


def test_bench_operators(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-OPERATORS"), rounds=1, iterations=1)
    emit(result, results_dir)
    fixed_point = result.table("Jacobi fixed point vs sparse direct solve")
    assert all(row[2] < 1e-9 for row in fixed_point.rows)
    radii = dict(
        (row[0], row[1])
        for row in result.table("Jacobi iteration spectral radius").rows
    )
    assert radii["5-point"] < 1.0
    assert radii["9-point-star"] > 1.0
