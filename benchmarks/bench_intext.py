"""E-TEXT1/E-TEXT2: the Section-6.1 worked example and the c/b rule."""

from conftest import emit

from repro.experiments import get_experiment


def test_bench_intext_example(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-TEXT1"), rounds=3, iterations=1)
    emit(result, results_dir)

    rows = {r[0]: r for r in result.table("speedup at N=16").rows}
    # Paper's printed formulas: strips 16/(1+512/n), squares 16/(1+128/n).
    assert abs(rows[256][6] - 10.67) < 0.01   # squares at 256 ("10.6")
    assert abs(rows[1024][5] - 10.67) < 0.01  # strips at 1024 ("10.6")
    assert abs(rows[1024][6] - 14.22) < 0.05  # squares at 1024 ("14.2")
    # Shape holds in every accounting: squares beat strips, growth in n.
    for n in (256, 1024):
        assert rows[n][2] > rows[n][1]  # read+write accounting
        assert rows[n][4] > rows[n][3]  # read-only accounting
    assert rows[1024][1] > rows[256][1]


def test_bench_flex32_rule(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-TEXT2"), rounds=1, iterations=1)
    emit(result, results_dir)
    # c/b = 1000 >> N: no interior optimum ever appears.
    table = result.table("FLEX/32-style bus (c/b = 1000) allocations")
    assert all(row[3] != "interior" for row in table.rows)
    # Large problems: all processors; the c/b ratio is as measured.
    assert all(abs(row[2] - 1000.0) < 1e-9 for row in table.rows)
    big_rows = [row for row in table.rows if row[0] >= 512]
    assert all(row[4] == row[1] for row in big_rows)
