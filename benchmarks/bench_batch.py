"""BENCH-BATCH: the sweep engine's speedups over the per-point paths.

Two measurements, recorded to ``results/BENCH_batch.json`` so the perf
trajectory is tracked across PRs:

* **scalar vs vectorized** — a 200×200 (N, P) grid across the four
  architecture families (hypercube, mesh, bus, banyan) through
  ``run_sweep`` versus the equivalent scalar ``cycle_time`` loop.  The
  engine promises ≥ 10×; typical is well above.
* **serial vs parallel runner** — the rewired figure/table experiments
  through ``run_experiments`` with ``jobs=1`` versus ``jobs=4``.

Run as a script (CI's smoke bench) or under pytest:

    PYTHONPATH=src python benchmarks/bench_batch.py
    pytest benchmarks/bench_batch.py -s
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.batch import SweepSpec, run_sweep
from repro.core.parameters import Workload
from repro.experiments.runner import run_experiments
from repro.machines.catalog import DEFAULT_MACHINES
from repro.report.csvio import default_results_dir
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

#: One preset per architecture family of the paper.
MACHINES = ("ipsc", "fem", "paper-bus", "butterfly")

#: ``None`` = every registered experiment: the mix of two slow runs
#: (E-SOLVE, E-FIG7) and many fast ones is what the pool overlaps.
PARALLEL_IDS = None

GRID_POINTS = 200


def _axes() -> tuple[list[int], list[float]]:
    """200 grid sides in [64, 4096], 200 processor counts in [1, 4096]."""
    sides = np.unique(
        np.round(np.geomspace(64, 4096, GRID_POINTS)).astype(int)
    ).tolist()
    # Top the list back up to exactly GRID_POINTS unique values.
    extra = (n for n in range(64, 4096) if n not in set(sides))
    while len(sides) < GRID_POINTS:
        sides.append(next(extra))
    sides = sorted(sides[:GRID_POINTS])
    procs = np.geomspace(1.0, 4096.0, GRID_POINTS)
    procs[0] = 1.0
    return sides, procs.tolist()


def bench_vectorized() -> dict:
    """Time the dense sweep both ways and check they agree."""
    sides, procs = _axes()
    spec = SweepSpec.across_catalog(
        sides, procs, machines=MACHINES, stencil=FIVE_POINT, kind=PartitionKind.SQUARE
    )

    start = time.perf_counter()
    result = run_sweep(spec)
    vectorized_s = time.perf_counter() - start

    start = time.perf_counter()
    scalar = {}
    for name in MACHINES:
        machine = DEFAULT_MACHINES[name]
        surface = np.empty((len(sides), len(procs)))
        for i, n in enumerate(sides):
            w = Workload(n=n, stencil=FIVE_POINT)
            serial = w.serial_time()
            for j, p in enumerate(procs):
                if p == 1.0:
                    surface[i, j] = serial
                else:
                    surface[i, j] = machine.cycle_time(
                        w, PartitionKind.SQUARE, w.grid_points / p
                    )
        scalar[name] = surface
    scalar_s = time.perf_counter() - start

    for name in MACHINES:
        np.testing.assert_array_equal(result.cycle_time(name), scalar[name])
    return {
        "grid": [len(sides), len(procs)],
        "machines": list(MACHINES),
        "cells": len(sides) * len(procs) * len(MACHINES),
        "scalar_seconds": scalar_s,
        "vectorized_seconds": vectorized_s,
        "speedup": scalar_s / vectorized_s,
    }


def bench_parallel_runner(jobs: int = 4) -> dict:
    """Wall-clock the experiment set serially and through the pool."""
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        run_experiments(Path(tmp) / "serial", ids=PARALLEL_IDS, jobs=1)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        run_experiments(Path(tmp) / "parallel", ids=PARALLEL_IDS, jobs=jobs)
        parallel_s = time.perf_counter() - start
    return {
        "experiments": PARALLEL_IDS or "all",
        "jobs": jobs,
        # Interpret the ratio against the cores actually available: on a
        # single-CPU box the pool cannot beat serial, by construction.
        "cpus": os.cpu_count(),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s,
    }


def run_bench(output_path: Path | None = None) -> dict:
    payload = {
        "bench": "batch",
        "vectorized_sweep": bench_vectorized(),
        "parallel_runner": bench_parallel_runner(),
    }
    path = output_path or (default_results_dir() / "BENCH_batch.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    payload["path"] = str(path)
    return payload


def test_bench_batch(results_dir):
    payload = run_bench(results_dir / "BENCH_batch.json")
    print()
    print(json.dumps(payload, indent=2))
    sweep = payload["vectorized_sweep"]
    # The acceptance bar: a 200x200 (N, P) sweep across the four
    # architectures is at least 10x faster vectorized than per-point.
    assert sweep["speedup"] >= 10.0, sweep
    assert payload["parallel_runner"]["speedup"] > 0.0


if __name__ == "__main__":
    report = run_bench()
    json.dump(report, sys.stdout, indent=2)
    print()
    ok = report["vectorized_sweep"]["speedup"] >= 10.0
    print(f"vectorized speedup {report['vectorized_sweep']['speedup']:.1f}x "
          f"({'PASS' if ok else 'FAIL'} >= 10x), "
          f"parallel runner {report['parallel_runner']['speedup']:.2f}x")
    sys.exit(0 if ok else 1)
