"""E-KTAB: Section 3's k(Partition, Stencil) table (and Figures 1/3)."""

from conftest import emit

from repro.experiments import get_experiment


def test_bench_ktable(benchmark, results_dir):
    result = benchmark.pedantic(get_experiment("E-KTAB"), rounds=3, iterations=1)
    emit(result, results_dir)
    rows = {(r[0], r[1]): r[2] for r in result.table("k values").rows}
    assert rows[("strip", "5-point")] == 1
    assert rows[("square", "9-point-box")] == 1
    assert rows[("strip", "9-point-star")] == 2
    assert rows[("square", "13-point")] == 2
