"""E-FIG1: stencil definitions, plus stencil-application throughput."""

import numpy as np
from conftest import emit

from repro.experiments import get_experiment
from repro.stencils.apply import apply_stencil_into, ghost_width
from repro.stencils.library import ALL_STENCILS, NINE_POINT_BOX


def test_bench_stencil_definitions(benchmark, results_dir):
    """Figure 1 / Figure 3 are stencil definitions; the E-KTAB experiment
    renders them (footprints + E(S) + k)."""
    result = benchmark.pedantic(get_experiment("E-KTAB"), rounds=3, iterations=1)
    emit(result, results_dir)
    props = {row[0]: row for row in result.table("stencil properties").rows}
    assert props["5-point"][1] == 5.0
    assert props["9-point-box"][3] == "yes"   # diagonals (Figure 1 right)
    assert props["9-point-star"][2] == 2      # reach 2 (Figure 3 left)


def test_bench_apply_nine_point_box(benchmark):
    """Vectorized 9-point application on 512² — the heaviest kernel."""
    g = ghost_width(NINE_POINT_BOX)
    rng = np.random.default_rng(7)
    field = rng.standard_normal((512 + 2 * g, 512 + 2 * g))
    out = np.empty((512, 512))
    benchmark(apply_stencil_into, NINE_POINT_BOX, field, out)
    assert np.isfinite(out).all()
