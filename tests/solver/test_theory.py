"""Convergence theory vs the actual solver."""

import math

import pytest

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.catalog import PAPER_BUS
from repro.solver.convergence import InfNormCriterion
from repro.solver.jacobi import solve_jacobi
from repro.solver.problems import poisson_manufactured
from repro.solver.sor import solve_sor
from repro.solver.theory import (
    estimate_jacobi_iterations,
    estimate_solve_time,
    estimate_sor_iterations,
    jacobi_spectral_radius,
    sor_spectral_radius,
)
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind


class TestSpectralRadii:
    def test_jacobi_radius_value(self):
        assert jacobi_spectral_radius(15) == pytest.approx(math.cos(math.pi / 16))

    def test_radii_in_unit_interval(self):
        for n in (4, 16, 64, 256):
            assert 0 < sor_spectral_radius(n) < jacobi_spectral_radius(n) < 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            jacobi_spectral_radius(0)


class TestIterationEstimates:
    def test_jacobi_quadratic_in_n(self):
        r = estimate_jacobi_iterations(64) / estimate_jacobi_iterations(32)
        assert r == pytest.approx(4.0, rel=0.1)

    def test_sor_linear_in_n(self):
        r = estimate_sor_iterations(64) / estimate_sor_iterations(32)
        assert r == pytest.approx(2.0, rel=0.15)

    def test_sor_much_cheaper(self):
        assert estimate_sor_iterations(128) * 10 < estimate_jacobi_iterations(128)

    def test_reduction_validation(self):
        with pytest.raises(InvalidParameterError):
            estimate_jacobi_iterations(16, reduction=1.5)


class TestAgainstMeasurement:
    def test_jacobi_estimate_tracks_measured_count(self):
        """Theory and the real solver agree within ~25% (the estimate
        models error reduction; the solver stops on update size)."""
        n = 24
        problem = poisson_manufactured()
        tol = 1e-8
        measured = solve_jacobi(
            FIVE_POINT, problem, n, InfNormCriterion(tol), max_iterations=200_000
        ).iterations
        # The inf-norm update criterion stops when updates are ~tol;
        # total error reduction from the initial O(1) error is ~tol.
        predicted = estimate_jacobi_iterations(n, reduction=tol)
        assert 0.5 * predicted < measured < 1.5 * predicted

    def test_sor_estimate_order_of_magnitude(self):
        n = 24
        problem = poisson_manufactured()
        measured = solve_sor(
            problem, n, criterion=InfNormCriterion(1e-8)
        ).iterations
        predicted = estimate_sor_iterations(n, reduction=1e-8)
        assert measured < 4 * predicted
        assert predicted < 6 * measured


class TestSolveEstimate:
    def test_composition(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        est = estimate_solve_time(PAPER_BUS, w, PartitionKind.SQUARE, 16)
        assert est.total_time == pytest.approx(est.iterations * est.cycle_time)
        assert est.speedup_vs_serial > 1.0

    def test_sor_solve_cheaper_than_jacobi(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        jac = estimate_solve_time(PAPER_BUS, w, PartitionKind.SQUARE, 16)
        sor = estimate_solve_time(
            PAPER_BUS, w, PartitionKind.SQUARE, 16, algorithm="sor"
        )
        assert sor.total_time < jac.total_time / 10

    def test_unknown_algorithm(self):
        w = Workload(n=64, stencil=FIVE_POINT)
        with pytest.raises(InvalidParameterError):
            estimate_solve_time(PAPER_BUS, w, PartitionKind.SQUARE, algorithm="magic")
