"""Sparse operators: direct solves and measured spectral radii."""

import math

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.solver.convergence import InfNormCriterion
from repro.solver.jacobi import solve_jacobi
from repro.solver.operators import (
    boundary_vector,
    direct_solve,
    measured_spectral_radius,
    system_matrix,
    weight_matrix,
)
from repro.solver.problems import laplace_problem, poisson_manufactured
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX, NINE_POINT_STAR
from repro.stencils.stencil import Stencil


class TestWeightMatrix:
    def test_interior_row_sums(self):
        """Rows away from the boundary sum to 1 (constant preservation)."""
        w = weight_matrix(FIVE_POINT, 5)
        sums = np.asarray(w.sum(axis=1)).ravel().reshape(5, 5)
        assert sums[2, 2] == pytest.approx(1.0)
        # Corner rows lose the weights that left the grid.
        assert sums[0, 0] == pytest.approx(0.5)

    def test_boundary_vector_complements_row_sums(self):
        for stencil in (FIVE_POINT, NINE_POINT_BOX):
            w = weight_matrix(stencil, 4)
            g = boundary_vector(stencil, 4, boundary_value=1.0)
            sums = np.asarray(w.sum(axis=1)).ravel()
            np.testing.assert_allclose(sums + g, 1.0, rtol=1e-12)

    def test_geometric_stencil_rejected(self):
        bare = Stencil(name="bare", offsets=((0, 1),))
        with pytest.raises(InvalidParameterError):
            weight_matrix(bare, 4)

    def test_system_matrix_is_i_minus_w(self):
        a = system_matrix(FIVE_POINT, 4)
        w = weight_matrix(FIVE_POINT, 4)
        np.testing.assert_allclose(
            a.toarray(), np.eye(16) - w.toarray(), rtol=1e-14
        )


class TestDirectSolve:
    def test_matches_jacobi_fixed_point(self):
        problem = poisson_manufactured()
        direct = direct_solve(FIVE_POINT, problem, 12)
        iterated = solve_jacobi(
            FIVE_POINT, problem, 12, InfNormCriterion(1e-13), max_iterations=300_000
        )
        assert np.max(np.abs(direct - iterated.field.interior)) < 1e-10

    def test_constant_boundary_laplace(self):
        direct = direct_solve(FIVE_POINT, laplace_problem(2.5), 8)
        np.testing.assert_allclose(direct, 2.5, rtol=1e-12)

    def test_nine_point_agrees_too(self):
        problem = poisson_manufactured()
        direct = direct_solve(NINE_POINT_BOX, problem, 10)
        iterated = solve_jacobi(
            NINE_POINT_BOX, problem, 10, InfNormCriterion(1e-13),
            max_iterations=300_000,
        )
        assert np.max(np.abs(direct - iterated.field.interior)) < 1e-10


class TestSpectralRadius:
    def test_five_point_matches_theory(self):
        for n in (8, 16):
            measured = measured_spectral_radius(FIVE_POINT, n)
            assert measured == pytest.approx(math.cos(math.pi / (n + 1)), rel=1e-9)

    def test_nine_point_star_exceeds_one(self):
        """Why the solver needs damping for the fourth-order star."""
        assert measured_spectral_radius(NINE_POINT_STAR, 12) > 1.0

    def test_nine_point_box_contracts(self):
        assert measured_spectral_radius(NINE_POINT_BOX, 12) < 1.0

    def test_tiny_grid_dense_path(self):
        assert measured_spectral_radius(FIVE_POINT, 1) == pytest.approx(0.0)
