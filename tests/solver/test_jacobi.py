"""Jacobi solver: convergence, accuracy, damping, failure modes."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, InvalidParameterError
from repro.solver.convergence import CheckSchedule, InfNormCriterion
from repro.solver.jacobi import solve_jacobi
from repro.solver.problems import laplace_problem, poisson_manufactured
from repro.stencils.library import (
    ALL_STENCILS,
    FIVE_POINT,
    NINE_POINT_BOX,
    NINE_POINT_STAR,
    THIRTEEN_POINT,
)

DAMPING = {
    FIVE_POINT.name: 1.0,
    NINE_POINT_BOX.name: 1.0,
    # Fourth-order star schemes need damping: plain Jacobi's symbol
    # exceeds 1 at the highest frequency (|g(pi,pi)| = 34/30).
    NINE_POINT_STAR.name: 0.8,
    THIRTEEN_POINT.name: 0.8,
}


class TestConstantBoundary:
    @pytest.mark.parametrize("stencil", ALL_STENCILS, ids=lambda s: s.name)
    def test_converges_to_constant(self, stencil):
        res = solve_jacobi(
            stencil,
            laplace_problem(1.0),
            12,
            InfNormCriterion(1e-11),
            damping=DAMPING[stencil.name],
            max_iterations=50_000,
        )
        assert res.converged
        np.testing.assert_allclose(res.field.interior, 1.0, atol=1e-8)


class TestPoissonAccuracy:
    def test_five_point_second_order(self):
        problem = poisson_manufactured()
        errors = []
        for n in (8, 16, 32):
            res = solve_jacobi(
                FIVE_POINT, problem, n, InfNormCriterion(1e-13), max_iterations=500_000
            )
            errors.append(
                float(np.max(np.abs(res.field.interior - problem.exact_grid(n))))
            )
        orders = [np.log2(a / b) for a, b in zip(errors, errors[1:])]
        assert all(o > 1.7 for o in orders)  # h² convergence

    def test_history_is_monotone_eventually(self):
        res = solve_jacobi(
            FIVE_POINT,
            poisson_manufactured(),
            16,
            InfNormCriterion(1e-8),
            max_iterations=100_000,
        )
        tail = res.history[len(res.history) // 2 :]
        assert all(b <= a * 1.001 for a, b in zip(tail, tail[1:]))


class TestSchedules:
    def test_sparse_checking_converges_same_place(self):
        problem = poisson_manufactured()
        every = solve_jacobi(
            FIVE_POINT, problem, 12, InfNormCriterion(1e-9), max_iterations=100_000
        )
        sparse = solve_jacobi(
            FIVE_POINT,
            problem,
            12,
            InfNormCriterion(1e-9),
            schedule=CheckSchedule(10),
            max_iterations=100_000,
        )
        # Sparse checking may overshoot by up to period-1 iterations.
        assert sparse.iterations % 10 == 0
        assert 0 <= sparse.iterations - every.iterations < 10
        assert len(sparse.history) < len(every.history)


class TestFailures:
    def test_exhaustion_raises(self):
        with pytest.raises(ConvergenceError, match="did not converge"):
            solve_jacobi(
                FIVE_POINT,
                poisson_manufactured(),
                32,
                InfNormCriterion(1e-14),
                max_iterations=5,
            )

    def test_bad_damping_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_jacobi(
                FIVE_POINT, laplace_problem(), 8, damping=1.5
            )

    def test_bad_max_iterations_rejected(self):
        with pytest.raises(InvalidParameterError):
            solve_jacobi(FIVE_POINT, laplace_problem(), 8, max_iterations=0)

    def test_final_measure_requires_history(self):
        from repro.solver.jacobi import JacobiResult
        from repro.solver.grid import GridField

        empty = JacobiResult(
            field=GridField.zeros(4, FIVE_POINT), iterations=0, converged=False
        )
        with pytest.raises(ConvergenceError):
            empty.final_measure()


class TestInitialGuess:
    def test_warm_start_converges_faster(self):
        problem = poisson_manufactured()
        cold = solve_jacobi(
            FIVE_POINT, problem, 16, InfNormCriterion(1e-9), max_iterations=100_000
        )
        warm = solve_jacobi(
            FIVE_POINT,
            problem,
            16,
            InfNormCriterion(1e-9),
            max_iterations=100_000,
            initial=cold.field,
        )
        assert warm.iterations < cold.iterations
