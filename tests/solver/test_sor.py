"""Red-black SOR: speedup over Jacobi, restrictions, parameter checks."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, InvalidParameterError
from repro.solver.convergence import InfNormCriterion
from repro.solver.jacobi import solve_jacobi
from repro.solver.problems import laplace_problem, poisson_manufactured
from repro.solver.sor import optimal_sor_omega, solve_sor
from repro.stencils.library import NINE_POINT_BOX


class TestOmega:
    def test_optimal_omega_in_range(self):
        for n in (4, 16, 64, 256):
            assert 1.0 < optimal_sor_omega(n) < 2.0

    def test_omega_grows_with_n(self):
        assert optimal_sor_omega(64) > optimal_sor_omega(8)

    def test_rejects_empty_grid(self):
        with pytest.raises(InvalidParameterError):
            optimal_sor_omega(0)


class TestSolve:
    def test_matches_jacobi_solution(self):
        problem = poisson_manufactured()
        jac = solve_jacobi(
            NINE_POINT_BOX.with_flops(10),  # any stencil for jacobi; use 5pt below
            problem,
            16,
            InfNormCriterion(1e-11),
            max_iterations=200_000,
        )
        # Compare SOR against the 5-point Jacobi answer (same discretization).
        from repro.stencils.library import FIVE_POINT

        jac5 = solve_jacobi(
            FIVE_POINT, problem, 16, InfNormCriterion(1e-11), max_iterations=200_000
        )
        sor = solve_sor(problem, 16, criterion=InfNormCriterion(1e-11))
        assert jac5.field.max_abs_diff(sor.field) < 1e-7

    def test_sor_converges_much_faster_than_jacobi(self):
        problem = poisson_manufactured()
        from repro.stencils.library import FIVE_POINT

        jac = solve_jacobi(
            FIVE_POINT, problem, 24, InfNormCriterion(1e-9), max_iterations=200_000
        )
        sor = solve_sor(problem, 24, criterion=InfNormCriterion(1e-9))
        assert sor.iterations * 5 < jac.iterations

    def test_omega_one_is_gauss_seidel(self):
        problem = laplace_problem(2.0)
        res = solve_sor(problem, 8, omega=1.0, criterion=InfNormCriterion(1e-10))
        np.testing.assert_allclose(res.field.interior, 2.0, atol=1e-8)


class TestValidation:
    def test_omega_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            solve_sor(laplace_problem(), 8, omega=2.0)

    def test_exhaustion_raises(self):
        with pytest.raises(ConvergenceError):
            solve_sor(
                poisson_manufactured(),
                16,
                criterion=InfNormCriterion(1e-14),
                max_iterations=2,
            )
