"""Model problems: manufactured solutions and their grids."""

import math

import numpy as np
import pytest

from repro.solver.problems import laplace_problem, poisson_manufactured


class TestLaplace:
    def test_rhs_is_zero(self):
        p = laplace_problem(3.0)
        assert np.all(p.rhs_grid(8) == 0.0)

    def test_exact_is_boundary_constant(self):
        p = laplace_problem(3.0)
        assert np.all(p.exact_grid(8) == 3.0)
        assert p.boundary_value == 3.0


class TestPoisson:
    def test_rhs_matches_minus_laplacian_of_exact(self):
        """f = -Δu* for u* = sin(πx)sin(πy): f = 2π²·u*."""
        p = poisson_manufactured()
        exact = p.exact_grid(16)
        rhs = p.rhs_grid(16)
        np.testing.assert_allclose(rhs, 2 * math.pi**2 * exact, rtol=1e-12)

    def test_zero_boundary(self):
        p = poisson_manufactured()
        assert p.boundary_value == 0.0

    def test_exact_peak_at_center(self):
        p = poisson_manufactured()
        grid = p.exact_grid(31)  # odd n puts a point at the center
        assert grid[15, 15] == pytest.approx(1.0, abs=1e-12)

    def test_missing_exact_raises(self):
        from repro.solver.problems import ModelProblem

        p = ModelProblem(
            name="no-exact",
            rhs=lambda x, y: x,
            boundary_value=0.0,
            exact=None,
        )
        with pytest.raises(ValueError, match="closed-form"):
            p.exact_grid(4)
