"""Partitioned Jacobi: bit-identical execution and measured halo traffic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.decomposition import decomposition_for
from repro.solver.convergence import InfNormCriterion, SumSquaresCriterion
from repro.solver.jacobi import solve_jacobi
from repro.solver.parallel import ParallelJacobi, solve_jacobi_parallel
from repro.solver.problems import laplace_problem, poisson_manufactured
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX, NINE_POINT_STAR


class TestBitIdentical:
    @pytest.mark.parametrize(
        "procs,kind",
        [(2, "strip"), (4, "strip"), (4, "block"), (6, "block"), (9, "block")],
    )
    def test_matches_sequential_exactly(self, procs, kind):
        problem = poisson_manufactured()
        dec = decomposition_for(24, procs, kind)
        seq = solve_jacobi(
            FIVE_POINT, problem, 24, InfNormCriterion(1e-9), max_iterations=100_000
        )
        par = solve_jacobi_parallel(
            FIVE_POINT, problem, dec, InfNormCriterion(1e-9), max_iterations=100_000
        )
        assert par.iterations == seq.iterations
        assert np.array_equal(par.field.interior, seq.field.interior)

    @pytest.mark.parametrize("stencil", [NINE_POINT_BOX, NINE_POINT_STAR],
                             ids=lambda s: s.name)
    def test_wide_and_diagonal_stencils(self, stencil):
        """Reach-2 and corner halos exercise the general exchange plan."""
        problem = laplace_problem(1.0)
        dec = decomposition_for(20, 4, "block")
        damping = 0.8 if stencil is NINE_POINT_STAR else 1.0
        seq = solve_jacobi(
            stencil, problem, 20, InfNormCriterion(1e-10),
            max_iterations=100_000, damping=damping,
        )
        par = solve_jacobi_parallel(
            stencil, problem, dec, InfNormCriterion(1e-10),
            max_iterations=100_000, damping=damping,
        )
        assert np.array_equal(par.field.interior, seq.field.interior)

    @given(
        procs=st.integers(min_value=1, max_value=8),
        kind=st.sampled_from(["strip", "block"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_single_sweep_identity_property(self, procs, kind):
        """One parallel sweep == one sequential sweep, any decomposition."""
        problem = poisson_manufactured()
        n = 16
        dec = decomposition_for(n, procs, kind)
        runner = ParallelJacobi(FIVE_POINT, problem, dec)
        runner.sweep()
        parallel_result = runner.gather().interior.copy()

        from repro.solver.grid import GridField
        from repro.solver.jacobi import jacobi_sweep

        fld = GridField.zeros(n, FIVE_POINT, problem.boundary_value)
        fld.set_boundary(problem.boundary_value)
        scratch = np.empty((n, n))
        jacobi_sweep(FIVE_POINT, fld, scratch, problem.rhs_grid(n))
        np.testing.assert_array_equal(parallel_result, fld.interior)


class TestHaloTraffic:
    def test_strip_volumes_match_model(self):
        dec = decomposition_for(64, 4, "strip")
        runner = ParallelJacobi(FIVE_POINT, laplace_problem(), dec)
        volumes = runner.read_volume_per_rank()
        # Interior strips read 2kn, edge strips kn (model counts interior).
        assert volumes[1] == 2 * 64
        assert volumes[0] == 64

    def test_words_counted_during_exchange(self):
        dec = decomposition_for(32, 4, "block")
        runner = ParallelJacobi(FIVE_POINT, laplace_problem(), dec)
        words = runner.exchange_halos()
        assert words == sum(runner.read_volume_per_rank())
        assert runner.words_exchanged_last_iteration == words

    def test_reach_two_stencil_doubles_strip_traffic(self):
        dec = decomposition_for(32, 4, "strip")
        r1 = ParallelJacobi(FIVE_POINT, laplace_problem(), dec)
        r2 = ParallelJacobi(NINE_POINT_STAR, laplace_problem(), dec, damping=0.8)
        assert r2.read_volume_per_rank()[1] == 2 * r1.read_volume_per_rank()[1]


class TestCriteria:
    def test_sum_squares_reduction_matches_sequential(self):
        problem = poisson_manufactured()
        dec = decomposition_for(16, 4, "block")
        seq = solve_jacobi(
            FIVE_POINT, problem, 16, SumSquaresCriterion(1e-16),
            max_iterations=100_000,
        )
        par = solve_jacobi_parallel(
            FIVE_POINT, problem, dec, SumSquaresCriterion(1e-16),
            max_iterations=100_000,
        )
        assert par.iterations == seq.iterations
        np.testing.assert_allclose(par.history, seq.history, rtol=1e-12)
