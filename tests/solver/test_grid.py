"""GridField storage, ghosts, and coordinates."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.solver.grid import GridField, domain_coordinates
from repro.stencils.library import FIVE_POINT, NINE_POINT_STAR


class TestCoordinates:
    def test_unit_square_interior(self):
        x, y = domain_coordinates(3)
        h = 0.25
        np.testing.assert_allclose(x[0], [h, 2 * h, 3 * h])
        np.testing.assert_allclose(y[:, 0], [h, 2 * h, 3 * h])

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            domain_coordinates(0)


class TestGridField:
    def test_zeros_has_boundary_ring(self):
        f = GridField.zeros(4, FIVE_POINT, boundary_value=2.5)
        assert f.data.shape == (6, 6)
        assert f.data[0, 0] == 2.5
        assert np.all(f.interior == 0.0)

    def test_ghost_width_follows_stencil_reach(self):
        f = GridField.zeros(4, NINE_POINT_STAR)
        assert f.ghost == 2
        assert f.data.shape == (8, 8)

    def test_interior_is_view(self):
        f = GridField.zeros(4, FIVE_POINT)
        f.interior[1, 1] = 9.0
        assert f.data[2, 2] == 9.0

    def test_from_function(self):
        f = GridField.from_function(3, FIVE_POINT, lambda x, y: x + y)
        x, y = domain_coordinates(3)
        np.testing.assert_allclose(f.interior, x + y)

    def test_set_boundary_overwrites_ring_only(self):
        f = GridField.zeros(3, FIVE_POINT)
        f.interior[:] = 1.0
        f.set_boundary(7.0)
        assert f.data[0, 2] == 7.0
        assert np.all(f.interior == 1.0)

    def test_mesh_spacing(self):
        assert GridField.zeros(3, FIVE_POINT).h == pytest.approx(0.25)

    def test_copy_is_deep(self):
        f = GridField.zeros(3, FIVE_POINT)
        g = f.copy()
        g.interior[0, 0] = 5.0
        assert f.interior[0, 0] == 0.0

    def test_max_abs_diff(self):
        f = GridField.zeros(3, FIVE_POINT)
        g = f.copy()
        g.interior[1, 1] = -2.0
        assert f.max_abs_diff(g) == 2.0

    def test_storage_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            GridField(data=np.zeros((4, 4)), ghost=2)
