"""Convergence criteria, schedules, and dissemination cost models."""

import numpy as np
import pytest

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid
from repro.solver.convergence import (
    CheckSchedule,
    InfNormCriterion,
    SumSquaresCriterion,
    checked_cycle_time,
    convergence_check_flops,
    dissemination_time,
)
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind


class TestCriteria:
    def test_inf_norm(self):
        c = InfNormCriterion(tol=0.5)
        old = np.zeros((2, 2))
        new = np.array([[0.1, 0.2], [0.3, 0.4]])
        assert c.measure(old, new) == pytest.approx(0.4)
        assert c.is_converged(0.4)
        assert not c.is_converged(0.6)

    def test_sum_squares(self):
        c = SumSquaresCriterion(tol=1.0)
        old = np.zeros((2, 2))
        new = np.full((2, 2), 0.5)
        assert c.measure(old, new) == pytest.approx(1.0)

    def test_tolerance_validation(self):
        with pytest.raises(InvalidParameterError):
            InfNormCriterion(tol=0.0)
        with pytest.raises(InvalidParameterError):
            SumSquaresCriterion(tol=-1.0)


class TestSchedule:
    def test_every_iteration(self):
        s = CheckSchedule(1)
        assert all(s.should_check(i) for i in range(1, 10))

    def test_period_m(self):
        s = CheckSchedule(3)
        assert [i for i in range(1, 10) if s.should_check(i)] == [3, 6, 9]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CheckSchedule(0)


class TestCheckCost:
    def test_five_point_check_is_sixty_percent(self):
        """3 flops/point vs E=5: ~50-60% extra, Section 4's magnitude."""
        w = Workload(n=64, stencil=FIVE_POINT)
        area = 1000.0
        ratio = convergence_check_flops(w, area) / (5.0 * area)
        assert ratio == pytest.approx(0.6)

    def test_rejects_nonpositive_area(self):
        w = Workload(n=64, stencil=FIVE_POINT)
        with pytest.raises(InvalidParameterError):
            convergence_check_flops(w, 0.0)


class TestDissemination:
    def test_single_processor_is_free(self):
        cube = Hypercube(alpha=1e-6, beta=1e-5)
        assert dissemination_time(cube, 1) == 0.0

    def test_hypercube_grows_logarithmically(self):
        cube = Hypercube(alpha=1e-6, beta=1e-5)
        t16 = dissemination_time(cube, 16)
        t256 = dissemination_time(cube, 256)
        assert t256 == pytest.approx(2 * t16)

    def test_mesh_hardware_is_free(self):
        mesh = MeshGrid(alpha=1e-6, beta=1e-5, convergence_hardware=True)
        assert dissemination_time(mesh, 64) == 0.0

    def test_mesh_without_hardware_pays(self):
        mesh = MeshGrid(alpha=1e-6, beta=1e-5, convergence_hardware=False)
        assert dissemination_time(mesh, 64) > 0.0

    def test_bus_linear_in_processors(self):
        bus = SynchronousBus(b=1e-6, c=1e-6)
        assert dissemination_time(bus, 20) == pytest.approx(
            2 * dissemination_time(bus, 10)
        )

    def test_banyan_uses_network_reads(self):
        net = BanyanNetwork(w=1e-7)
        assert dissemination_time(net, 16) == pytest.approx(2 * 2 * 1e-7 * 4)


class TestCheckedCycle:
    def test_scheduling_amortizes_cost(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=64, stencil=FIVE_POINT)
        base = bus.cycle_time(w, PartitionKind.SQUARE, 256.0)
        every = checked_cycle_time(bus, w, PartitionKind.SQUARE, 256.0, CheckSchedule(1))
        sparse = checked_cycle_time(
            bus, w, PartitionKind.SQUARE, 256.0, CheckSchedule(10)
        )
        assert every > sparse > base
        assert (sparse - base) == pytest.approx((every - base) / 10.0)
