"""Every example script must run clean — they are living documentation."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # Examples are plain scripts with a main() guard; run them as __main__.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # they all narrate their results


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 5  # quickstart + at least four scenario scripts
