"""CLI subcommands drive the library end to end."""

import pytest

from repro.cli import build_parser, main


class TestMachines:
    def test_lists_presets(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "paper-bus" in out
        assert "flex32" in out
        assert "Hypercube" in out


class TestOptimize:
    def test_interior_allocation_reported(self, capsys):
        code = main(
            [
                "optimize",
                "--machine",
                "paper-bus",
                "--n",
                "256",
                "--max-processors",
                "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "interior" in out
        assert "processors" in out

    def test_hypercube_uses_all(self, capsys):
        main(["optimize", "--machine", "ipsc", "--n", "128", "--max-processors", "32"])
        out = capsys.readouterr().out
        assert "regime" in out

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["optimize", "--machine", "cray-1"])


class TestPlan:
    def test_bus_plan_contains_anchor(self, capsys):
        main(["plan", "--machine", "paper-bus", "--n", "256"])
        out = capsys.readouterr().out
        assert "14" in out  # the Section 6.1 anchor
        assert "max useful processors" in out

    def test_non_bus_machine_explains_extremal(self, capsys):
        main(["plan", "--machine", "ipsc", "--n", "256"])
        out = capsys.readouterr().out
        assert "extremal" in out


class TestExperiments:
    def test_list(self, capsys):
        main(["experiments", "--list"])
        out = capsys.readouterr().out
        assert "E-FIG7" in out
        assert "E-TAB1" in out

    def test_run_one(self, capsys):
        main(["experiments", "E-KTAB"])
        out = capsys.readouterr().out
        assert "[E-KTAB]" in out
        assert "5-point" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
