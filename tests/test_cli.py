"""CLI subcommands drive the library end to end."""

import pytest

from repro.cli import build_parser, main


class TestMachines:
    def test_lists_presets(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "paper-bus" in out
        assert "flex32" in out
        assert "Hypercube" in out


class TestOptimize:
    def test_interior_allocation_reported(self, capsys):
        code = main(
            [
                "optimize",
                "--machine",
                "paper-bus",
                "--n",
                "256",
                "--max-processors",
                "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "interior" in out
        assert "processors" in out

    def test_hypercube_uses_all(self, capsys):
        main(["optimize", "--machine", "ipsc", "--n", "128", "--max-processors", "32"])
        out = capsys.readouterr().out
        assert "regime" in out

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["optimize", "--machine", "cray-1"])


class TestPlan:
    def test_bus_plan_contains_anchor(self, capsys):
        main(["plan", "--machine", "paper-bus", "--n", "256"])
        out = capsys.readouterr().out
        assert "14" in out  # the Section 6.1 anchor
        assert "max useful processors" in out

    def test_non_bus_machine_explains_extremal(self, capsys):
        main(["plan", "--machine", "ipsc", "--n", "256"])
        out = capsys.readouterr().out
        assert "extremal" in out


class TestExperiments:
    def test_list(self, capsys):
        main(["experiments", "--list"])
        out = capsys.readouterr().out
        assert "E-FIG7" in out
        assert "E-TAB1" in out

    def test_run_one(self, capsys):
        main(["experiments", "E-KTAB"])
        out = capsys.readouterr().out
        assert "[E-KTAB]" in out
        assert "5-point" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestParseAxis:
    def test_range_inclusive(self):
        from repro.cli import parse_axis

        assert parse_axis("2:6") == [2, 3, 4, 5, 6]
        assert parse_axis("64:256:64") == [64, 128, 192, 256]

    def test_comma_list(self):
        from repro.cli import parse_axis

        assert parse_axis("8,16,32") == [8, 16, 32]

    def test_bad_specs_rejected(self):
        from repro.cli import parse_axis
        from repro.errors import InvalidParameterError

        for bad in ("", "5:2", "1:10:0", "a:b", "1:2:3:4", ","):
            with pytest.raises(InvalidParameterError):
                parse_axis(bad)


class TestExitCodes:
    def test_all_subcommands_return_zero(self, capsys, tmp_path):
        assert main(["machines"]) == 0
        assert main(["optimize", "--machine", "paper-bus", "--n", "64"]) == 0
        assert main(["plan", "--machine", "paper-bus", "--n", "64"]) == 0
        assert main(["experiments", "--list"]) == 0
        capsys.readouterr()

    def test_table_headers_present(self, capsys):
        main(["machines"])
        out = capsys.readouterr().out
        assert "preset" in out and "model" in out and "parameters" in out
        main(["plan", "--machine", "paper-bus", "--n", "256"])
        out = capsys.readouterr().out
        assert "stencil" in out and "partition" in out
        assert "min grid side (squares, 5-point)" in out


class TestOptimizeGrid:
    def test_whole_curve_table(self, capsys):
        code = main(
            ["optimize", "--machine", "paper-bus", "--grid", "64:256:64"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Optimal allocation curve" in out
        assert "regime" in out and "speedup" in out and "efficiency" in out
        # One row per swept grid side.
        assert all(f"\n{n} " in out for n in (64, 128, 192, 256))

    def test_grid_rows_match_scalar_optimizer(self, capsys):
        from repro.core.allocation import optimize_allocation
        from repro.core.parameters import Workload
        from repro.machines.catalog import PAPER_BUS
        from repro.stencils.library import FIVE_POINT
        from repro.stencils.perimeter import PartitionKind

        main(["optimize", "--machine", "paper-bus", "--grid", "256:256"])
        out = capsys.readouterr().out
        scalar = optimize_allocation(
            PAPER_BUS,
            Workload(n=256, stencil=FIVE_POINT),
            PartitionKind.SQUARE,
            integer=True,
        )
        assert str(round(scalar.speedup, 3)) in out
        assert scalar.regime in out

    def test_cache_dir_reports_cold_then_warm(self, capsys, tmp_path):
        args = [
            "optimize",
            "--machine",
            "paper-bus",
            "--grid",
            "64:128:64",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        main(args)
        assert "[cold]" in capsys.readouterr().out
        main(args)
        out = capsys.readouterr().out
        assert "[warm]" in out and "sweep cache" in out

    def test_bad_grid_spec_raises(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            main(["optimize", "--machine", "paper-bus", "--grid", "9:1"])


class TestPlanGrid:
    def test_capacity_curve_table(self, capsys):
        code = main(["plan", "--machine", "paper-bus", "--grid", "2:10:2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Capacity curve" in out
        assert "min grid side (strips)" in out
        assert "min grid side (squares)" in out
        # The --n anchor table is still shown above the curve.
        assert "max useful processors" in out

    def test_cache_warm_hit_reported(self, capsys, tmp_path):
        args = [
            "plan",
            "--machine",
            "paper-bus",
            "--grid",
            "2:20:2",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        main(args)
        capsys.readouterr()
        main(args)
        assert "[warm]" in capsys.readouterr().out


class TestExplainAndExecutor:
    def test_optimize_explain_plans_without_executing(self, capsys):
        code = main(
            ["optimize", "--machine", "paper-bus", "--grid", "64:256:16", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep graph: 1 request(s)" in out
        assert "allocation_curve[paper-bus" in out
        assert "compute" in out
        # No allocation table was printed — the graph was not executed.
        assert "Optimal allocation curve" not in out

    def test_plan_explain_shows_the_whole_forest(self, capsys):
        code = main(["plan", "--machine", "paper-bus", "--n", "256", "--explain"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep graph:" in out
        assert "max_useful[paper-bus" in out
        assert "plan_grid[paper-bus" in out
        assert "max useful processors" not in out  # anchor table not printed

    def test_explain_reports_cache_hits(self, capsys, tmp_path):
        args = [
            "optimize",
            "--machine",
            "paper-bus",
            "--grid",
            "64:128:64",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        main(args)
        capsys.readouterr()
        main(args + ["--explain"])
        out = capsys.readouterr().out
        assert "1 cache hit(s)" in out
        assert "cached (" in out

    @pytest.mark.parametrize(
        "argv",
        [
            ["optimize", "--machine", "flex32", "--grid", "64:256:16"],
            ["optimize", "--machine", "paper-bus", "--n", "256"],
            ["plan", "--machine", "paper-bus-async", "--grid", "2:32:2"],
        ],
    )
    def test_oracle_executor_output_is_byte_identical(self, capsys, argv):
        assert main(argv) == 0
        via_numpy = capsys.readouterr().out
        assert main(argv + ["--executor", "oracle"]) == 0
        via_oracle = capsys.readouterr().out
        assert via_oracle == via_numpy

    def test_unknown_executor_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="unknown executor"):
            main(
                ["optimize", "--machine", "paper-bus", "--n", "64",
                 "--executor", "cuda"]
            )

    def test_explain_with_server_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="--explain is local"):
            main(
                ["optimize", "--machine", "paper-bus", "--grid", "64:128:64",
                 "--server", "http://127.0.0.1:1", "--explain"]
            )

    def test_executor_with_server_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="--executor"):
            main(
                ["plan", "--machine", "paper-bus", "--n", "64",
                 "--server", "http://127.0.0.1:1", "--executor", "oracle"]
            )

    def test_oracle_with_jobs_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="--jobs"):
            main(
                ["optimize", "--machine", "paper-bus", "--grid", "64:128:64",
                 "--executor", "oracle", "--jobs", "4"]
            )


class TestSimulate:
    ARGV = [
        "simulate", "--machine", "paper-bus", "--n", "48",
        "--processors", "8", "--replicas", "12", "--jitter", "0.05",
    ]

    def test_band_and_per_seed_table(self, capsys):
        assert main(self.ARGV) == 0
        out = capsys.readouterr().out
        assert "Replica simulation" in out
        assert "mean cycle time (s)" in out
        assert "q95 cycle time (s)" in out
        # 12 replicas is small enough for the per-seed table.
        assert "seed" in out and "cycle time (s)" in out

    def test_band_matches_offline_simulator(self, capsys):
        import numpy as np

        from repro.batch.sim import ReplicaBatchSpec, simulate_replicas
        from repro.machines.catalog import PAPER_BUS
        from repro.stencils.library import FIVE_POINT
        from repro.stencils.perimeter import PartitionKind

        main(self.ARGV)
        out = capsys.readouterr().out
        spec = ReplicaBatchSpec.monte_carlo(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, 48, 8, 12,
            jitter=0.05,
        )
        mean = simulate_replicas(spec).cycle_times.mean()
        assert f"{np.float64(mean).item():g}" in out

    def test_oracle_executor_output_is_byte_identical(self, capsys):
        assert main(self.ARGV) == 0
        via_numpy = capsys.readouterr().out
        assert main(self.ARGV + ["--executor", "oracle"]) == 0
        via_oracle = capsys.readouterr().out
        assert via_oracle == via_numpy

    def test_server_output_is_byte_identical(self, capsys):
        from repro.service import SweepServer

        main(self.ARGV)
        offline = capsys.readouterr().out
        with SweepServer(port=0) as srv:
            assert main(self.ARGV + ["--server", srv.url]) == 0
            served = capsys.readouterr().out
        assert served == offline

    def test_cache_dir_serves_repeat_from_store(self, capsys, tmp_path):
        argv = self.ARGV + ["--cache-dir", str(tmp_path / "cache")]
        main(argv)
        cold = capsys.readouterr().out
        main(argv)
        warm = capsys.readouterr().out
        # Same bytes either way; the second run hit the store.
        assert warm == cold

    def test_explain_plans_without_executing(self, capsys):
        assert main(self.ARGV + ["--explain"]) == 0
        out = capsys.readouterr().out
        assert "sim_sweep" in out
        assert "compute" in out
        assert "Replica simulation" not in out

    def test_bad_replicas_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="--replicas"):
            main(["simulate", "--replicas", "0"])

    def test_server_plus_cache_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="mutually exclusive"):
            main(
                self.ARGV
                + ["--server", "http://127.0.0.1:1", "--cache-dir", "/tmp/x"]
            )


class TestExperimentsOutput:
    def test_output_directory_created(self, capsys, tmp_path):
        target = tmp_path / "fresh" / "nested"
        assert not target.exists()
        code = main(["experiments", "E-KTAB", "--output", str(target)])
        assert code == 0
        assert target.is_dir()
        assert list(target.glob("e-ktab_*.csv"))
        capsys.readouterr()

    def test_artifact_names_are_ascii_slugs(self, capsys, tmp_path):
        main(["experiments", "E-KTAB", "--output", str(tmp_path)])
        capsys.readouterr()
        for path in tmp_path.glob("*.csv"):
            assert all(
                c.islower() or c.isdigit() or c in "._-" for c in path.name
            ), path.name

    def test_cache_dir_surfaces_stats_table(self, capsys, tmp_path):
        main(
            [
                "experiments",
                "E-TEXT2",
                "--output",
                str(tmp_path),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert "Sweep cache" in out
        assert "cold" in out
        main(
            [
                "experiments",
                "E-TEXT2",
                "--output",
                str(tmp_path),
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert "warm" in out


class TestServerRouting:
    """`--server` responses are byte-identical to the offline CLI."""

    @pytest.fixture()
    def server(self):
        from repro.service import SweepServer

        with SweepServer(port=0) as srv:
            yield srv

    def _run(self, capsys, argv):
        assert main(argv) == 0
        return capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["optimize", "--machine", "paper-bus", "--grid", "64:512:64"],
            ["optimize", "--machine", "flex32", "--n", "256", "--max-processors", "16"],
            ["optimize", "--machine", "paper-bus-async", "--n", "128", "--partition", "strip"],
            ["plan", "--machine", "paper-bus", "--n", "256"],
            ["plan", "--machine", "paper-bus", "--grid", "2:64:7"],
            ["plan", "--machine", "ipsc", "--n", "256"],  # non-bus: local answer
        ],
    )
    def test_byte_identical_to_offline(self, capsys, server, argv):
        offline = self._run(capsys, argv)
        routed = self._run(capsys, argv + ["--server", server.url])
        assert routed == offline

    def test_concurrent_requests_then_cli_output_agrees(self, capsys, server):
        # Hammer the daemon with identical concurrent requests first
        # (stdout redirection is process-global, so the byte comparison
        # itself runs sequentially afterwards).
        import threading

        from repro.service import ServiceClient

        argv = ["optimize", "--machine", "paper-bus", "--grid", "64:256:16"]
        offline = self._run(capsys, argv)

        def fire():
            ServiceClient(server.url).allocation_curve(
                "paper-bus", "5-point", "square", list(range(64, 257, 16)),
                integer=True,
            )

        threads = [threading.Thread(target=fire) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        routed = self._run(capsys, argv + ["--server", server.url])
        assert routed == offline

    def test_server_with_cache_dir_rejected(self, tmp_path):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="mutually exclusive"):
            main(
                [
                    "optimize",
                    "--machine",
                    "paper-bus",
                    "--grid",
                    "64:128:64",
                    "--server",
                    "http://127.0.0.1:1",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )

    def test_server_with_max_cache_mb_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="no effect with --server"):
            main(
                [
                    "plan",
                    "--machine",
                    "paper-bus",
                    "--n",
                    "64",
                    "--server",
                    "http://127.0.0.1:1",
                    "--max-cache-mb",
                    "4",
                ]
            )

    def test_server_with_jobs_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="no effect with --server"):
            main(
                [
                    "optimize",
                    "--machine",
                    "paper-bus",
                    "--grid",
                    "64:128:64",
                    "--server",
                    "http://127.0.0.1:1",
                    "--jobs",
                    "4",
                ]
            )

    def test_max_cache_mb_bounds_the_local_store(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        for lo in ("64", "128", "256", "512"):
            assert (
                main(
                    [
                        "optimize",
                        "--machine",
                        "paper-bus",
                        "--grid",
                        f"{lo}:{int(lo) + 8}",
                        "--cache-dir",
                        str(cache_dir),
                        "--max-cache-mb",
                        "0.004",
                    ]
                )
                == 0
            )
        capsys.readouterr()
        total = sum(p.stat().st_size for p in cache_dir.glob("*.npz"))
        assert total <= int(0.004 * 2**20)


class TestServeSubcommand:
    def test_serve_starts_answers_and_stops(self, tmp_path):
        import json
        import os
        import signal
        import subprocess
        import sys
        import urllib.request

        env = dict(os.environ)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner
            url = banner.strip().rsplit(" ", 1)[-1]
            with urllib.request.urlopen(f"{url}/healthz", timeout=10) as response:
                assert json.load(response)["status"] == "ok"
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                raise
        assert process.returncode == 0


class TestLintSubcommand:
    def test_text_mode_reports_clean_tree(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "repro lint" in out
        assert "fingerprint-purity" in out
        assert "parity coverage" in out

    def test_json_mode_writes_report_file(self, capsys, tmp_path):
        target = tmp_path / "LINT.json"
        assert main(["lint", "--format", "json", "--output", str(target)]) == 0
        out = capsys.readouterr().out
        assert str(target) in out
        assert "clean" in out
        import json as _json

        payload = _json.loads(target.read_text())
        assert payload["ok"] is True
        assert set(payload["rules"]) == {
            "fingerprint-purity",
            "lock-discipline",
            "parity-coverage",
            "vectorization-guard",
        }

    def test_parser_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.format == "text"
        assert args.output is None
