"""Legal/working rectangles: the Figure-6 approximation machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.partitioning.rectangles import (
    DEFAULT_PERIMETER_TOLERANCE,
    LegalRectangle,
    approximation_errors,
    closest_working_rectangle,
    divisors,
    legal_rectangles,
    working_rectangles,
)


class TestDivisors:
    def test_known_values(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(64) == [1, 2, 4, 8, 16, 32, 64]

    def test_rejects_nonpositive(self):
        with pytest.raises(DecompositionError):
            divisors(0)

    @given(n=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=50)
    def test_every_divisor_divides(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(ds)
        assert ds[0] == 1 and ds[-1] == n


class TestLegalRectangles:
    def test_widths_divide_grid(self):
        for rect in legal_rectangles(12):
            assert 12 % rect.width == 0
            assert 1 <= rect.height <= 12

    def test_count(self):
        # heights 1..n times number of divisors of n
        assert len(legal_rectangles(12)) == 12 * 6


class TestWorkingRectangles:
    def test_perimeter_excess_nonnegative(self):
        for rect in working_rectangles(64):
            assert rect.perimeter_excess() >= -1e-15

    def test_all_within_tolerance(self):
        for rect in working_rectangles(64):
            assert rect.perimeter_excess() <= DEFAULT_PERIMETER_TOLERANCE

    def test_exact_squares_always_survive(self):
        areas = {r.area for r in working_rectangles(64)}
        for width in divisors(64):
            assert width * width in areas

    def test_unique_per_area_sorted(self):
        rects = working_rectangles(128)
        areas = [r.area for r in rects]
        assert areas == sorted(areas)
        assert len(areas) == len(set(areas))

    def test_tolerance_validation(self):
        with pytest.raises(DecompositionError):
            working_rectangles(16, tolerance=0.0)


class TestClosest:
    def test_exact_hit(self):
        rect = closest_working_rectangle(64, 64.0)
        assert rect.area == 64

    def test_ties_prefer_smaller_area(self):
        rects = working_rectangles(64)
        # Construct a midpoint between two adjacent achievable areas.
        a0, a1 = rects[10].area, rects[11].area
        chosen = closest_working_rectangle(64, (a0 + a1) / 2.0)
        assert chosen.area == min(a0, a1, key=lambda a: (abs((a0 + a1) / 2 - a), a))


class TestFigure6Claims:
    """The paper's headline: errors usually < 3% (area) and < 6% (perimeter)."""

    @pytest.mark.parametrize("n", [128, 256])
    def test_error_bounds_hold_in_bulk(self, n):
        lo, hi = n * n // 64, n * n // 4
        errors = approximation_errors(n, range(lo, hi + 1, 8))
        frac_area_ok = sum(e.area_error <= 0.03 for e in errors) / len(errors)
        frac_perim_ok = sum(e.perimeter_error <= 0.06 for e in errors) / len(errors)
        assert frac_area_ok >= 0.9
        assert frac_perim_ok >= 0.9

    def test_256_grid_worst_case_is_moderate(self):
        errors = approximation_errors(256, range(1024, 16385, 16))
        assert max(e.area_error for e in errors) < 0.10
        assert max(e.perimeter_error for e in errors) < 0.10


@given(
    h=st.integers(min_value=1, max_value=200),
    w=st.integers(min_value=1, max_value=200),
)
def test_rectangle_invariants(h, w):
    rect = LegalRectangle(height=h, width=w)
    assert rect.area == h * w
    assert rect.perimeter == 2 * (h + w)
    # AM-GM: perimeter of any rectangle >= perimeter of equal-area square.
    assert rect.perimeter_excess() >= -1e-12
    if h == w:
        assert rect.perimeter_excess() == pytest.approx(0.0, abs=1e-12)
