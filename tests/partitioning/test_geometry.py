"""Continuous volume formulas used by the analytic model."""

import pytest

from repro.errors import InvalidParameterError
from repro.partitioning.geometry import (
    area_for_processors,
    partition_side,
    processors_for_area,
    read_volume,
    transfer_volume,
    write_volume,
)
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


class TestVolumes:
    def test_strip_read_volume_independent_of_area(self):
        assert read_volume(STRIP, 100, 64, 1) == read_volume(STRIP, 5000, 64, 1)
        assert read_volume(STRIP, 100, 64, 1) == 128.0

    def test_square_read_volume_scales_with_side(self):
        assert read_volume(SQUARE, 64, 256, 1) == pytest.approx(32.0)
        assert read_volume(SQUARE, 256, 256, 1) == pytest.approx(64.0)

    def test_k_scales_linearly(self):
        assert read_volume(STRIP, 100, 64, 2) == 2 * read_volume(STRIP, 100, 64, 1)

    def test_writes_equal_reads(self):
        assert write_volume(SQUARE, 81, 64, 1) == read_volume(SQUARE, 81, 64, 1)

    def test_transfer_is_sum(self):
        assert transfer_volume(STRIP, 100, 64, 1) == 2 * read_volume(STRIP, 100, 64, 1)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            read_volume(STRIP, -1, 64, 1)


class TestProcessorAreaDuality:
    def test_roundtrip(self):
        assert processors_for_area(64, area_for_processors(64, 16)) == pytest.approx(16)

    def test_partition_side(self):
        assert partition_side(144.0) == 12.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            processors_for_area(64, 0.0)
        with pytest.raises(InvalidParameterError):
            area_for_processors(64, 0.0)
        with pytest.raises(InvalidParameterError):
            partition_side(-4.0)
