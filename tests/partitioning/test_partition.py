"""Partition box geometry and adjacency relations."""

import pytest

from repro.errors import DecompositionError
from repro.partitioning.partition import Partition


class TestConstruction:
    def test_rejects_empty_box(self):
        with pytest.raises(DecompositionError, match="empty"):
            Partition(0, 0, 0, 4)

    def test_rejects_negative_origin(self):
        with pytest.raises(DecompositionError, match="negative"):
            Partition(-1, 2, 0, 4)


class TestGeometry:
    def test_area_and_perimeter(self):
        p = Partition(0, 4, 0, 8)
        assert p.area == 32
        assert p.perimeter == 2 * (4 + 8)

    def test_square_detection(self):
        assert Partition(0, 4, 4, 8).is_square()
        assert not Partition(0, 3, 0, 4).is_square()

    def test_aspect_ratio(self):
        assert Partition(0, 2, 0, 8).aspect_ratio == 4.0
        assert Partition(0, 3, 0, 3).aspect_ratio == 1.0


class TestRelations:
    def test_overlap_detection(self):
        a = Partition(0, 4, 0, 4)
        assert a.overlaps(Partition(2, 6, 2, 6))
        assert not a.overlaps(Partition(4, 8, 0, 4))

    def test_edge_adjacency(self):
        a = Partition(0, 4, 0, 4)
        below = Partition(4, 8, 0, 4)
        right = Partition(0, 4, 4, 8)
        assert a.touches(below)
        assert a.touches(right)

    def test_corner_contact_is_not_touching(self):
        a = Partition(0, 4, 0, 4)
        diag = Partition(4, 8, 4, 8)
        assert not a.touches(diag)

    def test_distant_boxes_not_touching(self):
        assert not Partition(0, 2, 0, 2).touches(Partition(5, 7, 5, 7))

    def test_contains_point(self):
        p = Partition(2, 5, 3, 6)
        assert p.contains_point(2, 3)
        assert p.contains_point(4, 5)
        assert not p.contains_point(5, 3)  # row_stop exclusive


class TestBoundaryCount:
    def test_full_ring(self):
        p = Partition(0, 4, 0, 4)
        # 4x4 box: 16 - 2x2 interior = 12 boundary points at depth 1.
        assert p.boundary_point_count(1) == 12

    def test_thin_partition_all_boundary(self):
        p = Partition(0, 2, 0, 10)
        assert p.boundary_point_count(1) == p.area

    def test_depth_validation(self):
        with pytest.raises(DecompositionError):
            Partition(0, 2, 0, 2).boundary_point_count(0)

    def test_ordering_is_lexicographic(self):
        assert Partition(0, 1, 0, 2) < Partition(0, 1, 0, 3)
