"""Decomposition invariants: exact covers, neighbour graphs, halo volumes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.partitioning.decomposition import (
    Decomposition,
    block_grid_shape,
    decompose_blocks,
    decomposition_for,
)
from repro.partitioning.partition import Partition
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX, NINE_POINT_STAR


class TestBlockGridShape:
    def test_perfect_square(self):
        assert block_grid_shape(16, 100) == (4, 4)

    def test_prefers_squarest_factoring(self):
        assert block_grid_shape(12, 100) == (3, 4)
        assert block_grid_shape(6, 100) == (2, 3)

    def test_prime_counts_become_strips(self):
        assert block_grid_shape(7, 100) == (1, 7)

    def test_respects_grid_limit(self):
        # 8 = 2x4 fits a 4-wide grid; 1x8 does not.
        assert block_grid_shape(8, 4) == (2, 4)
        with pytest.raises(DecompositionError):
            block_grid_shape(17, 4)  # 1x17 needs 17 columns


class TestCoverInvariant:
    @given(
        n=st.integers(min_value=2, max_value=64),
        p=st.integers(min_value=1, max_value=16),
        kind=st.sampled_from(["strip", "block"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_partitions_tile_disjointly(self, n, p, kind):
        if p > n:
            return
        dec = decomposition_for(n, p, kind)
        assert dec.n_processors == p
        # Disjoint: pairwise no overlaps; cover: areas sum (checked in init).
        parts = dec.partitions
        for i in range(len(parts)):
            for j in range(i + 1, len(parts)):
                assert not parts[i].overlaps(parts[j])

    def test_cover_mismatch_rejected(self):
        with pytest.raises(DecompositionError, match="cover"):
            Decomposition(n=4, partitions=(Partition(0, 2, 0, 4),), kind="strip")

    def test_unknown_kind_rejected(self):
        with pytest.raises(DecompositionError, match="unknown"):
            decomposition_for(8, 2, "hexagon")


class TestLoadBalance:
    def test_even_split_balanced(self):
        dec = decomposition_for(16, 4, "block")
        assert dec.load_imbalance() == 1.0

    def test_remainder_imbalance_bounded(self):
        dec = decomposition_for(10, 3, "strip")
        assert 1.0 < dec.load_imbalance() <= (4 * 10) / (100 / 3)


class TestNeighbourGraph:
    def test_strips_form_a_path(self):
        dec = decomposition_for(16, 4, "strip")
        nbrs = dec.neighbour_map(FIVE_POINT)
        assert nbrs[0] == [1]
        assert nbrs[1] == [0, 2]
        assert nbrs[2] == [1, 3]
        assert nbrs[3] == [2]

    def test_five_point_blocks_have_no_diagonal_neighbours(self):
        dec = decomposition_for(16, 4, "block")  # 2x2 blocks
        nbrs = dec.neighbour_map(FIVE_POINT)
        assert all(len(v) == 2 for v in nbrs.values())

    def test_nine_point_box_adds_diagonals(self):
        dec = decomposition_for(16, 4, "block")
        nbrs = dec.neighbour_map(NINE_POINT_BOX)
        assert all(len(v) == 3 for v in nbrs.values())  # 2 edges + 1 corner


class TestHaloVolumes:
    def test_interior_strip_reads_two_rows(self):
        dec = decomposition_for(32, 4, "strip")
        assert dec.communication_volume(FIVE_POINT, 1) == 2 * 32

    def test_edge_strip_reads_one_row(self):
        dec = decomposition_for(32, 4, "strip")
        assert dec.communication_volume(FIVE_POINT, 0) == 32

    def test_reach_two_stencil_doubles_strip_volume(self):
        dec = decomposition_for(32, 4, "strip")
        assert dec.communication_volume(NINE_POINT_STAR, 1) == 2 * 2 * 32

    def test_corner_point_volume_nine_point(self):
        # 2x2 blocks on 16x16: a block reads 8 from each edge neighbour
        # plus 1 corner point from the diagonal one.
        dec = decomposition_for(16, 4, "block")
        assert dec.communication_volume(NINE_POINT_BOX, 0) == 8 + 8 + 1

    def test_total_volume_symmetric_for_symmetric_stencils(self):
        dec = decomposition_for(16, 4, "block")
        edges = dec.halo_edges(FIVE_POINT)
        vol = {(e.src, e.dst): e.volume for e in edges}
        for (s, d), v in vol.items():
            assert vol[(d, s)] == v
