"""Strip decomposition: the paper's remainder rule, property-tested."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.partitioning.strips import decompose_strips, strip_heights


class TestRemainderRule:
    def test_even_split(self):
        assert strip_heights(16, 4) == [4, 4, 4, 4]

    def test_paper_rule_remainder_first(self):
        # n = k*P + r: the first r strips get one extra row.
        assert strip_heights(10, 3) == [4, 3, 3]
        assert strip_heights(11, 3) == [4, 4, 3]

    def test_single_processor(self):
        assert strip_heights(7, 1) == [7]

    def test_one_row_each(self):
        assert strip_heights(5, 5) == [1, 1, 1, 1, 1]


class TestValidation:
    def test_too_many_processors(self):
        with pytest.raises(DecompositionError, match="non-empty"):
            strip_heights(4, 5)

    def test_nonpositive_inputs(self):
        with pytest.raises(DecompositionError):
            strip_heights(0, 1)
        with pytest.raises(DecompositionError):
            strip_heights(4, 0)


@given(
    n=st.integers(min_value=1, max_value=512),
    p=st.integers(min_value=1, max_value=64),
)
def test_heights_tile_and_balance(n, p):
    """Heights sum to n, differ by at most 1, and are non-increasing."""
    if p > n:
        with pytest.raises(DecompositionError):
            strip_heights(n, p)
        return
    heights = strip_heights(n, p)
    assert sum(heights) == n
    assert len(heights) == p
    assert max(heights) - min(heights) <= 1
    assert heights == sorted(heights, reverse=True)


class TestDecomposition:
    def test_strips_cover_grid_in_order(self):
        parts = decompose_strips(10, 3)
        assert parts[0].row_start == 0
        assert parts[-1].row_stop == 10
        for prev, cur in zip(parts, parts[1:]):
            assert prev.row_stop == cur.row_start
        assert all(p.col_start == 0 and p.col_stop == 10 for p in parts)

    @given(
        n=st.integers(min_value=1, max_value=128),
        p=st.integers(min_value=1, max_value=32),
    )
    def test_strip_areas_match_heights(self, n, p):
        if p > n:
            return
        parts = decompose_strips(n, p)
        assert [s.n_rows for s in parts] == strip_heights(n, p)
        assert sum(s.area for s in parts) == n * n
