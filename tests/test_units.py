"""Formatting and integer helpers in repro.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    ceil_div,
    format_count,
    format_time,
    geometric_span,
    is_power_of_two,
    log2_int,
    next_power_of_two,
)


class TestFormatTime:
    def test_scales(self):
        assert format_time(1.5) == "1.5s"
        assert format_time(3.2e-3) == "3.2ms"
        assert format_time(3.2e-5) == "32us"
        assert format_time(5e-8) == "50ns"

    def test_zero_and_negative(self):
        assert format_time(0.0) == "0s"
        assert format_time(-2e-3) == "-2ms"


class TestFormatCount:
    def test_integers_get_separators(self):
        assert format_count(12345) == "12,345"

    def test_fractions_keep_decimals(self):
        assert format_count(12.5) == "12.50"


class TestLog2Int:
    def test_powers(self):
        assert log2_int(1) == 0
        assert log2_int(1024) == 10

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_int(12)
        with pytest.raises(ValueError):
            log2_int(0)

    @given(e=st.integers(min_value=0, max_value=40))
    def test_roundtrip(self, e):
        assert log2_int(1 << e) == e


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(64)
        assert not is_power_of_two(63)
        assert not is_power_of_two(0)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(9) == 16
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @given(v=st.integers(min_value=1, max_value=1 << 30))
    def test_next_power_bounds(self, v):
        p = next_power_of_two(v)
        assert is_power_of_two(p)
        assert p >= v
        assert p < 2 * v or v == 1


class TestCeilDiv:
    def test_values(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)


class TestGeometricSpan:
    def test_endpoints_included(self):
        span = geometric_span(1.0, 100.0, 3)
        assert span[0] == pytest.approx(1.0)
        assert span[-1] == pytest.approx(100.0)
        assert span[1] == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_span(0.0, 10.0, 3)
        with pytest.raises(ValueError):
            geometric_span(10.0, 1.0, 3)

    def test_single_point(self):
        assert geometric_span(2.0, 8.0, 1) == [2.0]
