"""Text tables, ASCII plots, CSV writers."""

import csv

import pytest

from repro.report.ascii_plot import bar_chart, line_plot, multi_line_plot
from repro.report.csvio import write_csv
from repro.report.tables import format_kv_block, format_table


class TestTables:
    def test_alignment_and_rule(self):
        out = format_table(["n", "speedup"], [[256, 10.67], [1024, 14.2]])
        lines = out.splitlines()
        assert lines[0].startswith("n")
        assert set(lines[1]) <= {"-", " "}
        assert "256" in lines[2]

    def test_title_block(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"
        assert out.splitlines()[1] == "="

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456789e-9]])
        assert "e-09" in out

    def test_kv_block(self):
        out = format_kv_block({"alpha": 1, "b": 2.5}, title="params")
        assert "alpha : 1" in out
        assert out.splitlines()[0] == "params"


class TestPlots:
    def test_line_plot_contains_range_labels(self):
        out = line_plot([1, 2, 3], [10.0, 20.0, 15.0], width=20, height=5)
        assert "[10, 20]" in out
        assert out.count("\n") >= 6

    def test_multi_line_legend(self):
        out = multi_line_plot(
            [1, 2], {"up": [1.0, 2.0], "down": [2.0, 1.0]}, width=10, height=4
        )
        assert "* up" in out
        assert "+ down" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_line_plot([1, 2], {"s": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multi_line_plot([], {})

    def test_flat_series_renders(self):
        out = line_plot([1, 2, 3], [5.0, 5.0, 5.0], width=12, height=4)
        assert "*" in out

    def test_single_point_renders_mid_canvas(self):
        # One sample: both axes are degenerate; the marker clamps to the
        # middle column/row instead of dividing by the zero span.
        out = line_plot([3.0], [7.0], width=11, height=5)
        lines = out.splitlines()
        canvas = [l[1:] for l in lines if l.startswith("|")]
        assert canvas[5 // 2][11 // 2] == "*"

    def test_constant_x_values_render_mid_column(self):
        # All x equal (a vertical series) must not crash the x-scaler.
        out = multi_line_plot(
            [4.0, 4.0, 4.0], {"s": [1.0, 2.0, 3.0]}, width=9, height=5
        )
        for line in out.splitlines():
            if line.startswith("|") and "*" in line:
                assert line[1:].index("*") == 9 // 2

    def test_constant_everything_renders(self):
        out = multi_line_plot([2.0, 2.0], {"s": [5.0, 5.0]}, width=8, height=4)
        assert "*" in out

    def test_nan_and_inf_anywhere_render_without_crashing(self):
        # min/max are order-dependent with NaN: a NaN that is not in the
        # winning position leaves the span finite, so the guard must
        # scan the values, not just the span.
        nan, inf = float("nan"), float("inf")
        for xs, ys in [
            ([1.0, nan, 2.0], [1.0, 2.0, 3.0]),
            ([1.0, 2.0, 3.0], [1.0, nan, 2.0]),
            ([1.0, 2.0], [inf, 1.0]),
        ]:
            assert "|" in line_plot(xs, ys, width=8, height=3)

    def test_bar_chart(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2.5], [3, 4.5]])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "dir" / "x.csv", ["h"], [[1]])
        assert path.exists()

    def test_bad_row_width_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cells"):
            write_csv(tmp_path / "x.csv", ["a", "b"], [[1]])


class TestSlugify:
    def test_ascii_only_output(self):
        from repro.report.csvio import slugify

        names = [
            "log2(n^2_min) — 5-point",
            "n² growth exponent in N at efficiency 0.5",
            "section 6.1 anchor: max useful processors on 256x256 squares",
            "best processor count over P in [1, 64], n=64 squares",
            "c-dominated bus (c/b=1000): leverage of 2x speedups",
        ]
        for name in names:
            slug = slugify(name)
            assert slug
            assert all(c.islower() or c.isdigit() or c in "._-" for c in slug), slug

    def test_known_foldings(self):
        from repro.report.csvio import slugify

        assert slugify("log2(n^2_min) — 5-point") == "log2n2_min_-_5-point"
        assert slugify("n² growth / exponent") == "n2_growth_-_exponent"
        assert slugify("a: b, (c)") == "a_b_c"

    def test_empty_or_symbol_only_names_get_placeholder(self):
        from repro.report.csvio import slugify

        assert slugify("§§§") == "table"

    def test_distinct_names_stay_distinct(self):
        from repro.report.csvio import slugify

        assert slugify("curves — 5-point") != slugify("curves — 9-point-box")


class TestArtifactNaming:
    def test_csv_filename_is_safe(self):
        from repro.report.csvio import csv_filename

        name = csv_filename("E-FIG7", "log2(n^2_min) — 5-point")
        assert name == "e-fig7_log2n2_min_-_5-point.csv"

    def test_locate_prefers_canonical(self, tmp_path):
        from repro.report.csvio import csv_filename, locate_csv

        canonical = tmp_path / csv_filename("E-X", "a — b")
        canonical.write_text("new\n")
        assert locate_csv(tmp_path, "E-X", "a — b") == canonical

    def test_locate_falls_back_to_legacy_with_warning(self, tmp_path):
        from repro.report.csvio import legacy_csv_filename, locate_csv

        legacy = tmp_path / legacy_csv_filename("E-X", "a — b")
        legacy.write_text("old\n")
        with pytest.warns(DeprecationWarning, match="legacy artifact"):
            found = locate_csv(tmp_path, "E-X", "a — b")
        assert found == legacy

    def test_locate_returns_canonical_when_nothing_exists(self, tmp_path):
        from repro.report.csvio import csv_filename, locate_csv

        expected = tmp_path / csv_filename("E-X", "fresh table")
        assert locate_csv(tmp_path, "E-X", "fresh table") == expected

    def test_write_csvs_uses_slugs(self, tmp_path):
        from repro.experiments.registry import ExperimentResult

        result = ExperimentResult(experiment_id="E-X", title="t")
        result.add_table("log2(n^2_min) — 5-point", ["a"], [[1]])
        (path,) = result.write_csvs(tmp_path)
        assert path.name == "e-x_log2n2_min_-_5-point.csv"
