"""Text tables, ASCII plots, CSV writers."""

import csv

import pytest

from repro.report.ascii_plot import bar_chart, line_plot, multi_line_plot
from repro.report.csvio import write_csv
from repro.report.tables import format_kv_block, format_table


class TestTables:
    def test_alignment_and_rule(self):
        out = format_table(["n", "speedup"], [[256, 10.67], [1024, 14.2]])
        lines = out.splitlines()
        assert lines[0].startswith("n")
        assert set(lines[1]) <= {"-", " "}
        assert "256" in lines[2]

    def test_title_block(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"
        assert out.splitlines()[1] == "="

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456789e-9]])
        assert "e-09" in out

    def test_kv_block(self):
        out = format_kv_block({"alpha": 1, "b": 2.5}, title="params")
        assert "alpha : 1" in out
        assert out.splitlines()[0] == "params"


class TestPlots:
    def test_line_plot_contains_range_labels(self):
        out = line_plot([1, 2, 3], [10.0, 20.0, 15.0], width=20, height=5)
        assert "[10, 20]" in out
        assert out.count("\n") >= 6

    def test_multi_line_legend(self):
        out = multi_line_plot(
            [1, 2], {"up": [1.0, 2.0], "down": [2.0, 1.0]}, width=10, height=4
        )
        assert "* up" in out
        assert "+ down" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            multi_line_plot([1, 2], {"s": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multi_line_plot([], {})

    def test_flat_series_renders(self):
        out = line_plot([1, 2, 3], [5.0, 5.0, 5.0], width=12, height=4)
        assert "*" in out

    def test_bar_chart(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2.5], [3, 4.5]])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]

    def test_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "dir" / "x.csv", ["h"], [[1]])
        assert path.exists()

    def test_bad_row_width_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cells"):
            write_csv(tmp_path / "x.csv", ["a", "b"], [[1]])
