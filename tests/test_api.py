"""Public API surface: the README quickstart must work as written."""

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestQuickstart:
    def test_readme_example(self):
        """The exact snippet from the package docstring and README."""
        from repro import (
            FIVE_POINT,
            PAPER_BUS,
            PartitionKind,
            Workload,
            optimize_allocation,
        )

        w = Workload(n=256, stencil=FIVE_POINT)
        alloc = optimize_allocation(
            PAPER_BUS, w, PartitionKind.SQUARE, max_processors=16
        )
        assert 1 <= alloc.processors <= 16
        assert alloc.speedup > 1.0

    def test_error_hierarchy(self):
        assert issubclass(repro.InvalidParameterError, repro.ReproError)
        assert issubclass(repro.DecompositionError, repro.ReproError)
        assert issubclass(repro.ConvergenceError, repro.ReproError)
        assert issubclass(repro.InvalidParameterError, ValueError)

    def test_optimal_speedup_headline(self):
        """The paper's headline comparison is reachable in three lines."""
        from repro import FIVE_POINT, Hypercube, PAPER_BUS, PartitionKind, Workload
        from repro import optimal_speedup

        w = Workload(n=1024, stencil=FIVE_POINT)
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        s_cube = optimal_speedup(cube, w, PartitionKind.SQUARE).speedup
        s_bus = optimal_speedup(PAPER_BUS, w, PartitionKind.SQUARE).speedup
        assert s_cube > 10 * s_bus
