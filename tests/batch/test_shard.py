"""Sharded evaluation equals unsharded evaluation exactly."""

import numpy as np
import pytest

from repro.batch import (
    SweepCache,
    SweepSpec,
    axis_chunks,
    optimal_allocation_curve,
    run_sweep,
    run_sweep_sharded,
    sharded_allocation_arrays,
    sharded_allocation_curve,
)
from repro.errors import InvalidParameterError
from repro.machines.catalog import PAPER_BUS
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

SQUARE = PartitionKind.SQUARE
SIDES = list(range(64, 400))  # wide enough to actually shard


class TestAxisChunks:
    def test_covers_axis_in_order(self):
        chunks = axis_chunks(1000, jobs=4)
        flat = []
        for sl in chunks:
            flat.extend(range(sl.start, sl.stop))
        assert flat == list(range(1000))
        assert 1 < len(chunks) <= 4

    def test_small_axes_collapse_to_one_chunk(self):
        assert axis_chunks(10, jobs=8) == [slice(0, 10)]

    def test_rejects_empty_axis(self):
        with pytest.raises(InvalidParameterError):
            axis_chunks(0, jobs=2)


class TestShardedAllocation:
    def test_matches_unsharded_bitwise(self):
        sharded = sharded_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, jobs=2
        )
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True
        )
        np.testing.assert_array_equal(sharded.speedup, direct.speedup)
        np.testing.assert_array_equal(sharded.area, direct.area)
        np.testing.assert_array_equal(sharded.cycle_time, direct.cycle_time)
        np.testing.assert_array_equal(sharded.processors, direct.processors)
        assert sharded.regime == direct.regime

    def test_single_job_short_circuits(self):
        one = sharded_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, [64, 128], jobs=1)
        direct = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, [64, 128])
        np.testing.assert_array_equal(one.speedup, direct.speedup)

    def test_rejects_bad_jobs(self):
        with pytest.raises(InvalidParameterError):
            sharded_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, [64], jobs=0)

    def test_sharded_result_is_cached_whole(self, tmp_path):
        cache = SweepCache(tmp_path)
        sharded_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, jobs=2, cache=cache
        )
        assert cache.stats.misses == 1
        # The warm repeat is served without sharding (or computing).
        again = sharded_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, jobs=2, cache=cache
        )
        assert cache.stats.memory_hits == 1
        direct = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES)
        np.testing.assert_array_equal(again.speedup, direct.speedup)

    def test_unsharded_and_sharded_share_cache_keys(self, tmp_path):
        cache = SweepCache(tmp_path)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        sharded_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, jobs=2, cache=cache
        )
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1


class TestShardedAllocationArrays:
    def test_raw_fanout_equals_curve_arrays(self):
        arrays = sharded_allocation_arrays(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, jobs=2
        )
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True
        ).to_arrays()
        assert set(arrays) == set(direct)
        for name in direct:
            np.testing.assert_array_equal(arrays[name], direct[name])

    def test_raw_fanout_never_touches_the_cache(self, tmp_path):
        cache = SweepCache(tmp_path)
        from repro.batch import configure_default_cache, clear_default_cache

        configure_default_cache(tmp_path)
        try:
            sharded_allocation_arrays(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, jobs=2)
        finally:
            clear_default_cache()
        assert len(list(tmp_path.glob("*.npz"))) == 0
        assert cache.stats.requests == 0


class TestShardedCorruption:
    def test_corrupt_disk_entry_recomputes_on_the_shard_path(self, tmp_path):
        cache = SweepCache(tmp_path)
        first = sharded_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, jobs=2, cache=cache
        )
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(b"torn write: not an archive")
        fresh = SweepCache(tmp_path)
        again = sharded_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, jobs=2, cache=fresh
        )
        assert fresh.stats.misses == 1 and fresh.stats.disk_hits == 0
        np.testing.assert_array_equal(again.speedup, first.speedup)
        # ... and the recompute rewrote a servable entry.
        rewarmed = SweepCache(tmp_path)
        sharded_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, jobs=2, cache=rewarmed
        )
        assert rewarmed.stats.disk_hits == 1


class TestShardedSweep:
    def test_matches_unsharded_bitwise(self):
        spec = SweepSpec.across_catalog(
            SIDES, [1.0, 2.0, 8.0, 64.0], machines=["ipsc", "paper-bus"]
        )
        sharded = run_sweep_sharded(spec, jobs=2)
        direct = run_sweep(spec)
        for name in ("ipsc", "paper-bus"):
            np.testing.assert_array_equal(
                sharded.cycle_time(name), direct.cycle_time(name)
            )
        np.testing.assert_array_equal(sharded.serial_times, direct.serial_times)
