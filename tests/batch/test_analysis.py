"""The array-first analysis layer matches the scalar core oracle exactly.

Acceptance contract for ``repro.batch.analysis``: allocation area,
speedup, n²_min, max useful processors, crossovers, and isoefficiency
exponents agree with the scalar :mod:`repro.core` routines bit for bit
(the transcriptions reuse the same floating-point operations in the
same order) across all four machine families, both partition kinds,
and both stencils.
"""

import zlib

import numpy as np
import pytest

from repro.batch import (
    find_crossover_grid_size_batch,
    grid_for_efficiency_curve,
    isoefficiency_exponent_grid,
    max_useful_processors_curve,
    minimal_problem_size_curve,
    optimal_allocation_curve,
    scaled_speedup_banyan_curve,
    scaled_speedup_hypercube_curve,
    speedup_ratio_curve,
    strip_square_ratio_curve,
)
from repro.core.allocation import optimize_allocation
from repro.core.crossover import (
    find_crossover_grid_size,
    speedup_ratio,
    strip_square_ratio,
)
from repro.core.isoefficiency import grid_for_efficiency, isoefficiency_exponent
from repro.core.minimal_size import max_useful_processors, minimal_problem_size
from repro.core.parameters import Workload
from repro.core.scaling import scaled_speedup_banyan, scaled_speedup_hypercube
from repro.errors import InvalidParameterError
from repro.machines.bus import BusArchitecture
from repro.machines.catalog import (
    BBN_BUTTERFLY,
    DEFAULT_MACHINES,
    INTEL_IPSC,
    PAPER_BUS,
)
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

MACHINE_ITEMS = sorted(DEFAULT_MACHINES.items())
BUS_ITEMS = [(n, m) for n, m in MACHINE_ITEMS if isinstance(m, BusArchitecture)]
STENCILS = [FIVE_POINT, NINE_POINT_BOX]


def _sides(seed_key, lo=4, hi=4000, size=10):
    # crc32, not hash(): str hashing is salted per process, and this
    # suite's failures must be reproducible by rerunning the test id.
    rng = np.random.default_rng(zlib.crc32(repr(seed_key).encode()))
    return sorted(set(rng.integers(lo, hi, size=size).tolist()))


class TestAllocationCurve:
    """optimal_allocation_curve == optimize_allocation, element by element."""

    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", STENCILS)
    def test_continuous_matches_scalar(self, name, machine, kind, stencil):
        sides = _sides((name, kind.value, stencil.name))
        curve = optimal_allocation_curve(machine, stencil, kind, sides)
        for i, n in enumerate(sides):
            scalar = optimize_allocation(machine, Workload(n=n, stencil=stencil), kind)
            assert curve.speedup[i] == scalar.speedup
            assert curve.processors[i] == scalar.processors
            assert curve.area[i] == scalar.area
            assert curve.cycle_time[i] == scalar.cycle_time
            assert curve.efficiency[i] == scalar.efficiency
            assert curve.regime[i] == scalar.regime

    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("max_processors", [None, 1, 16, 1000])
    def test_integer_rounding_matches_scalar(self, name, machine, kind, max_processors):
        sides = _sides(("int", name, kind.value, max_processors), lo=8, hi=2500)
        curve = optimal_allocation_curve(
            machine,
            FIVE_POINT,
            kind,
            sides,
            max_processors=max_processors,
            integer=True,
        )
        for i, n in enumerate(sides):
            scalar = optimize_allocation(
                machine,
                Workload(n=n, stencil=FIVE_POINT),
                kind,
                max_processors=max_processors,
                integer=True,
            )
            assert curve.area[i] == scalar.area, (name, kind, n)
            assert curve.speedup[i] == scalar.speedup
            assert curve.cycle_time[i] == scalar.cycle_time
            assert curve.processors[i] == scalar.processors
            assert curve.regime[i] == scalar.regime

    @pytest.mark.parametrize("n", [455, 525, 2325])
    def test_exact_cycle_time_tie_breaks_identically(self, n):
        # On the c-dominated FLEX/32 bus the floor- and ceil-bracketed
        # strip areas can tie *exactly* on cycle time; both paths must
        # then pick the same (floor-derived, first-listed) candidate.
        machine = DEFAULT_MACHINES["flex32"]
        curve = optimal_allocation_curve(
            machine, FIVE_POINT, PartitionKind.STRIP, [n], integer=True
        )
        scalar = optimize_allocation(
            machine, Workload(n=n, stencil=FIVE_POINT), PartitionKind.STRIP, integer=True
        )
        assert curve.area[0] == scalar.area
        assert curve.cycle_time[0] == scalar.cycle_time
        assert curve.processors[0] == scalar.processors

    def test_rejects_bad_axes(self):
        with pytest.raises(InvalidParameterError):
            optimal_allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [])
        with pytest.raises(InvalidParameterError):
            optimal_allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [0])
        with pytest.raises(InvalidParameterError):
            optimal_allocation_curve(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64], max_processors=0.5
            )


class TestMinimalSizeCurves:
    @pytest.mark.parametrize("name,machine", BUS_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", STENCILS)
    def test_max_useful_processors(self, name, machine, kind, stencil):
        sides = _sides(("mup", name, kind.value, stencil.name), lo=16, hi=5000)
        curve = max_useful_processors_curve(machine, stencil, kind, sides)
        for i, n in enumerate(sides):
            scalar = max_useful_processors(
                machine, Workload(n=n, stencil=stencil), kind
            )
            assert curve[i] == scalar

    @pytest.mark.parametrize("name,machine", BUS_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", STENCILS)
    def test_minimal_problem_size(self, name, machine, kind, stencil):
        procs = [2, 3, 7, 14, 22, 30, 64]
        curve = minimal_problem_size_curve(machine, stencil, kind, procs)
        for i, p in enumerate(procs):
            scalar = minimal_problem_size(
                machine, Workload(n=2, stencil=stencil), kind, p
            )
            assert curve[i] == scalar


class TestCrossoverBatch:
    def test_matches_scalar_bisection(self):
        def scalar_metric(n: int) -> float:
            return 1.0 / strip_square_ratio(
                PAPER_BUS, Workload(n=n, stencil=FIVE_POINT)
            )

        def batch_metric(ns: np.ndarray) -> np.ndarray:
            return 1.0 / strip_square_ratio_curve(PAPER_BUS, FIVE_POINT, ns)

        for threshold in (1.5, 2.0, 3.0):
            scalar = find_crossover_grid_size(scalar_metric, threshold=threshold)
            batch = find_crossover_grid_size_batch(batch_metric, threshold=threshold)
            assert batch.n == scalar.n
            assert batch.value_after == scalar.value_after
            assert batch.value_before == scalar.value_before

    def test_machine_ratio_curve_matches_scalar(self):
        cube = DEFAULT_MACHINES["ipsc"]
        net = DEFAULT_MACHINES["butterfly"]
        sides = _sides("ratio", lo=32, hi=3000)
        curve = speedup_ratio_curve(cube, net, FIVE_POINT, PartitionKind.SQUARE, sides)
        for i, n in enumerate(sides):
            scalar = speedup_ratio(
                cube, net, Workload(n=n, stencil=FIVE_POINT), PartitionKind.SQUARE
            )
            assert curve[i] == scalar

    def test_immediate_and_unreachable_thresholds(self):
        metric = lambda ns: np.asarray(ns, dtype=float)
        hit = find_crossover_grid_size_batch(metric, threshold=1.0, n_lo=2, n_hi=64)
        assert hit.n == 2 and np.isnan(hit.value_before)
        with pytest.raises(InvalidParameterError):
            find_crossover_grid_size_batch(metric, threshold=1e9, n_lo=2, n_hi=64)
        with pytest.raises(InvalidParameterError):
            find_crossover_grid_size_batch(metric, threshold=1.0, n_lo=8, n_hi=8)


class TestIsoefficiencyGrid:
    CONFIGS = [
        (INTEL_IPSC, PartitionKind.SQUARE),
        (BBN_BUTTERFLY, PartitionKind.SQUARE),
        (PAPER_BUS, PartitionKind.SQUARE),
        (PAPER_BUS, PartitionKind.STRIP),
    ]

    @pytest.mark.parametrize("machine,kind", CONFIGS)
    @pytest.mark.parametrize("target", [0.3, 0.5, 0.8])
    def test_grid_sides_match_scalar(self, machine, kind, target):
        procs = [4, 8, 16, 32, 64]
        batch = grid_for_efficiency_curve(machine, FIVE_POINT, kind, procs, target)
        for i, p in enumerate(procs):
            scalar = grid_for_efficiency(
                machine, Workload(n=16, stencil=FIVE_POINT), kind, p, target
            )
            assert int(batch[i]) == scalar, (machine, kind, p, target)

    @pytest.mark.parametrize("machine,kind", CONFIGS)
    def test_exponent_matches_scalar(self, machine, kind):
        procs = [4, 8, 16, 32, 64]
        batch = isoefficiency_exponent_grid(machine, FIVE_POINT, kind, procs, 0.5)
        scalar = isoefficiency_exponent(
            machine, Workload(n=16, stencil=FIVE_POINT), kind, procs, 0.5
        )
        assert batch.exponent == scalar.exponent
        assert batch.problem_sizes == scalar.problem_sizes
        assert batch.processors == scalar.processors

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            grid_for_efficiency_curve(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [4], 1.5
            )
        with pytest.raises(InvalidParameterError):
            grid_for_efficiency_curve(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [1], 0.5
            )
        with pytest.raises(InvalidParameterError):
            isoefficiency_exponent_grid(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [4], 0.5
            )

    def test_unreachable_efficiency_raises(self):
        with pytest.raises(InvalidParameterError, match="no grid up to"):
            grid_for_efficiency_curve(
                PAPER_BUS,
                FIVE_POINT,
                PartitionKind.STRIP,
                [4, 4096],
                0.9,
                n_max=1 << 12,
            )


class TestScaledCurves:
    def test_hypercube_matches_scalar(self):
        cube = DEFAULT_MACHINES["ipsc"]
        sides = [2**e for e in range(6, 14)]
        curve = scaled_speedup_hypercube_curve(cube, FIVE_POINT, 1e-6, sides, 64.0)
        for i, n in enumerate(sides):
            assert curve[i] == scaled_speedup_hypercube(cube, FIVE_POINT, 1e-6, n, 64.0)

    def test_banyan_matches_scalar_including_odd_sizes(self):
        net = DEFAULT_MACHINES["butterfly"]
        sides = [65, 100, 333, 1023, 4097]  # non-power-of-two log2 args
        curve = scaled_speedup_banyan_curve(net, FIVE_POINT, 1e-6, sides, 50.0)
        for i, n in enumerate(sides):
            assert curve[i] == scaled_speedup_banyan(net, FIVE_POINT, 1e-6, n, 50.0)

    def test_validation(self):
        net = DEFAULT_MACHINES["butterfly"]
        with pytest.raises(InvalidParameterError):
            scaled_speedup_hypercube_curve(
                DEFAULT_MACHINES["ipsc"], FIVE_POINT, 1e-6, [64], 0.0
            )
        with pytest.raises(InvalidParameterError):
            scaled_speedup_banyan_curve(net, FIVE_POINT, 1e-6, [4], 64.0)
