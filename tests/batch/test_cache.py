"""The content-addressed sweep cache: keys, levels, stats, correctness."""

import os
import time

import numpy as np
import pytest

from repro.batch import (
    CacheStats,
    SweepCache,
    SweepSpec,
    cached_run_sweep,
    clear_default_cache,
    configure_default_cache,
    default_cache,
    fingerprint,
    optimal_allocation_curve,
    run_sweep,
)
from repro.errors import InvalidParameterError
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.catalog import PAPER_BUS, PAPER_BUS_ASYNC
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

SQUARE = PartitionKind.SQUARE
SIDES = list(range(64, 512, 16))


@pytest.fixture(autouse=True)
def _no_default_cache():
    """Keep the process-wide default cache out of other tests' way."""
    clear_default_cache()
    yield
    clear_default_cache()


class TestFingerprint:
    def test_stable_across_calls(self):
        req = ("op", PAPER_BUS, FIVE_POINT, SQUARE, np.arange(5.0))
        assert fingerprint(req) == fingerprint(req)

    def test_distinguishes_machine_parameters(self):
        a = fingerprint(("op", PAPER_BUS))
        b = fingerprint(("op", PAPER_BUS_ASYNC))
        c = fingerprint(("op", type(PAPER_BUS)(b=PAPER_BUS.b * 2, c=0.0)))
        assert len({a, b, c}) == 3

    def test_distinguishes_stencil_kind_and_axis(self):
        base = ("op", PAPER_BUS, FIVE_POINT, SQUARE, np.arange(5.0))
        variants = [
            ("op", PAPER_BUS, NINE_POINT_BOX, SQUARE, np.arange(5.0)),
            ("op", PAPER_BUS, FIVE_POINT, PartitionKind.STRIP, np.arange(5.0)),
            ("op", PAPER_BUS, FIVE_POINT, SQUARE, np.arange(6.0)),
        ]
        digests = {fingerprint(base)} | {fingerprint(v) for v in variants}
        assert len(digests) == 4

    def test_rejects_objects_with_default_repr(self):
        # The default object.__repr__ embeds the memory address, so two
        # identical requests would fingerprint differently across runs —
        # the nondeterminism the fingerprint-purity lint rule guards.
        class Opaque:
            pass

        with pytest.raises(InvalidParameterError, match="cannot fingerprint"):
            fingerprint(("op", Opaque()))

    def test_accepts_objects_with_stable_repr(self):
        class Labelled:
            def __repr__(self) -> str:
                return "Labelled(7)"

        assert fingerprint(("op", Labelled())) == fingerprint(("op", Labelled()))


class TestSweepCacheLevels:
    def test_memory_hit_returns_identical_arrays(self, tmp_path):
        cache = SweepCache(tmp_path)
        c1 = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cache
        )
        c2 = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cache
        )
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        np.testing.assert_array_equal(c1.speedup, c2.speedup)
        np.testing.assert_array_equal(c1.area, c2.area)
        assert c1.regime == c2.regime

    def test_disk_hit_after_restart(self, tmp_path):
        cold = SweepCache(tmp_path)
        c1 = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cold
        )
        warm = SweepCache(tmp_path)  # fresh memory, same directory
        c2 = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=warm
        )
        assert warm.stats.disk_hits == 1 and warm.stats.misses == 0
        np.testing.assert_array_equal(c1.cycle_time, c2.cycle_time)
        assert c1.regime == c2.regime  # string arrays survive the .npz round trip

    def test_memory_only_cache(self):
        cache = SweepCache()  # no directory at all
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        assert cache.stats.snapshot() == {
            "memory_hits": 1,
            "disk_hits": 0,
            "misses": 1,
            "memory_evictions": 0,
            "disk_evictions": 0,
            # Each eager call plans a one-node graph; the repeat is a
            # memory hit, so only the first ran the numpy executor.
            "nodes_planned": 2,
            "siblings_fused": 0,
            "subgraphs_deduped": 0,
            "executor_runs": {"numpy": 1},
        }

    def test_different_requests_do_not_collide(self, tmp_path):
        cache = SweepCache(tmp_path)
        c_sq = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        c_st = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, PartitionKind.STRIP, SIDES, cache=cache
        )
        assert cache.stats.misses == 2
        assert not np.array_equal(c_sq.speedup, c_st.speedup)

    def test_cached_result_equals_uncached(self, tmp_path):
        cache = SweepCache(tmp_path)
        cached = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cache
        )
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True
        )
        np.testing.assert_array_equal(cached.speedup, direct.speedup)
        np.testing.assert_array_equal(cached.processors, direct.processors)
        assert cached.regime == direct.regime

    def test_cached_arrays_cannot_be_poisoned_in_place(self, tmp_path):
        cache = SweepCache(tmp_path)
        c1 = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        with pytest.raises(ValueError):
            c1.speedup[:] = 0.0  # read-only: mutation cannot corrupt the store
        c2 = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        direct = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES)
        np.testing.assert_array_equal(c2.speedup, direct.speedup)

    def test_describe_labels_warm_and_cold(self, tmp_path):
        cache = SweepCache(tmp_path)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        assert "[cold]" in cache.stats.describe()
        warm = SweepCache(tmp_path)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=warm)
        assert "[warm]" in warm.stats.describe()


class TestCachedSweep:
    def test_sweep_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = SweepSpec.across_catalog(
            SIDES, [1.0, 4.0, 16.0], machines=["ipsc", "paper-bus"]
        )
        r1 = cached_run_sweep(spec, cache)
        r2 = cached_run_sweep(spec, cache)
        plain = run_sweep(spec)
        assert cache.stats.misses == 1 and cache.stats.memory_hits == 1
        for name in ("ipsc", "paper-bus"):
            np.testing.assert_array_equal(r1.cycle_time(name), plain.cycle_time(name))
            np.testing.assert_array_equal(r2.cycle_time(name), plain.cycle_time(name))

    def test_without_cache_is_passthrough(self):
        spec = SweepSpec.across_catalog([64], [1.0, 2.0], machines=["ipsc"])
        np.testing.assert_array_equal(
            cached_run_sweep(spec).cycle_time("ipsc"),
            run_sweep(spec).cycle_time("ipsc"),
        )


def _entry(seed: float, words: int = 128) -> dict[str, np.ndarray]:
    return {"x": np.full(words, seed)}


class TestBoundedLRU:
    def test_memory_evicts_least_recently_used(self):
        one_kib = 128 * 8
        cache = SweepCache(max_bytes=2 * one_kib)
        cache.store("a" * 64, _entry(1.0))
        cache.store("b" * 64, _entry(2.0))
        assert cache.lookup("a" * 64) is not None  # refresh a; b is now LRU
        cache.store("c" * 64, _entry(3.0))
        assert cache.lookup("b" * 64) is None  # evicted
        assert cache.lookup("a" * 64) is not None
        assert cache.lookup("c" * 64) is not None
        assert cache.stats.memory_evictions == 1

    def test_oversized_entry_is_still_served(self):
        cache = SweepCache(max_bytes=16)  # smaller than any entry
        value = cache.store("a" * 64, _entry(1.0))
        np.testing.assert_array_equal(value["x"], _entry(1.0)["x"])
        assert cache.lookup("a" * 64) is not None

    def test_disk_store_stays_under_bound(self, tmp_path):
        bound = 4096
        cache = SweepCache(tmp_path, max_bytes=bound)
        for i in range(12):
            cache.store(f"{i:064d}".replace("0", "a", 1), _entry(float(i)))
        sizes = sum(p.stat().st_size for p in tmp_path.glob("*.npz"))
        assert sizes <= bound
        assert cache.stats.disk_evictions > 0
        # The newest entry always survives.
        survivors = {p.stem for p in tmp_path.glob("*.npz")}
        assert f"{11:064d}".replace("0", "a", 1) in survivors

    def test_disk_hit_refreshes_lru_age(self, tmp_path):
        # Entries are 1280 bytes on disk; the bound fits three of them.
        bound = 3 * 1280 + 100
        cache = SweepCache(tmp_path, max_bytes=bound)
        keys = ["a" * 64, "b" * 64, "c" * 64]
        for i, key in enumerate(keys):
            cache.store(key, _entry(float(i)))
            os.utime(tmp_path / f"{key}.npz", (time.time() - 100 + i, time.time() - 100 + i))
        fresh = SweepCache(tmp_path, max_bytes=bound)
        assert fresh.lookup("a" * 64) is not None  # refreshes a's mtime
        fresh.store("d" * 64, _entry(9.0))  # must evict the oldest: b
        names = {p.stem for p in tmp_path.glob("*.npz")}
        assert "a" * 64 in names and "b" * 64 not in names

    def test_invalid_bound_rejected(self):
        with pytest.raises(InvalidParameterError):
            SweepCache(max_bytes=0)


class TestOrphanedTempFiles:
    def test_stale_tmp_files_swept_on_open(self, tmp_path):
        stale = tmp_path / "tmpabc123.npz.tmp"
        stale.write_bytes(b"crash debris")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        SweepCache(tmp_path)
        assert not stale.exists()

    def test_fresh_tmp_files_left_for_live_writers(self, tmp_path):
        fresh = tmp_path / "tmpdef456.npz.tmp"
        fresh.write_bytes(b"another process, mid-write")
        SweepCache(tmp_path)
        assert fresh.exists()

    def test_junk_tmp_never_poisons_or_blocks_a_hit(self, tmp_path):
        cold = SweepCache(tmp_path)
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cold
        )
        junk = tmp_path / "tmpzzz.npz.tmpXYZ"
        junk.write_bytes(b"\x00garbage")
        warm = SweepCache(tmp_path)
        served = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=warm
        )
        assert warm.stats.disk_hits == 1 and warm.stats.misses == 0
        np.testing.assert_array_equal(served.speedup, direct.speedup)


class TestCorruptedEntries:
    def _poison(self, tmp_path) -> SweepCache:
        """Warm the store, then corrupt every .npz on disk."""
        cold = SweepCache(tmp_path)
        optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cold
        )
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(path.read_bytes()[: max(8, path.stat().st_size // 3)])
        return cold

    def test_truncated_entry_is_a_miss_then_rewritten(self, tmp_path):
        self._poison(tmp_path)
        cache = SweepCache(tmp_path)
        served = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cache
        )
        assert cache.stats.misses == 1 and cache.stats.disk_hits == 0
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True
        )
        np.testing.assert_array_equal(served.speedup, direct.speedup)
        # The recompute rewrote a readable entry: next fresh cache disk-hits.
        fresh = SweepCache(tmp_path)
        optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=fresh
        )
        assert fresh.stats.disk_hits == 1 and fresh.stats.misses == 0

    def test_garbage_bytes_are_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        bad = tmp_path / ("e" * 64 + ".npz")
        bad.write_bytes(b"not a zip archive at all")
        assert cache.lookup("e" * 64) is None
        assert cache.stats.misses == 1
        assert not bad.exists()  # dropped so the recompute can rewrite


class TestClosedFormDedup:
    """Bus presets sharing a closed form collapse to one fingerprint."""

    def test_sync_read_modes_share_fingerprint(self):
        rw = SynchronousBus(b=PAPER_BUS.b, c=0.0, volume_mode="read_write")
        ro = SynchronousBus(b=2 * PAPER_BUS.b, c=0.0, volume_mode="read_only")
        assert fingerprint(("op", rw)) == fingerprint(("op", ro))

    def test_async_volume_mode_is_immaterial(self):
        rw = AsynchronousBus(b=PAPER_BUS.b, c=1e-7, volume_mode="read_write")
        ro = AsynchronousBus(b=PAPER_BUS.b, c=1e-7, volume_mode="read_only")
        assert fingerprint(rw) == fingerprint(ro)

    def test_sync_and_async_never_collide(self):
        sync = SynchronousBus(b=PAPER_BUS.b, c=0.0)
        asyn = AsynchronousBus(b=PAPER_BUS.b, c=0.0)
        assert fingerprint(sync) != fingerprint(asyn)

    def test_different_effective_constants_never_collide(self):
        a = SynchronousBus(b=PAPER_BUS.b, c=0.0)
        b = SynchronousBus(b=1.5 * PAPER_BUS.b, c=0.0, volume_mode="read_only")
        assert fingerprint(a) != fingerprint(b)

    def test_subclasses_keep_field_encoding(self):
        from repro.machines.bus_extensions import FullyAsynchronousBus

        ext = FullyAsynchronousBus(b=PAPER_BUS.b)
        plain = AsynchronousBus(b=PAPER_BUS.b)
        assert fingerprint(ext) != fingerprint(plain)

    @pytest.mark.parametrize("kind", [PartitionKind.STRIP, SQUARE])
    def test_cache_hit_across_presets_is_bit_identical(self, tmp_path, kind):
        rw = SynchronousBus(b=PAPER_BUS.b, c=3 * PAPER_BUS.b, volume_mode="read_write")
        ro = SynchronousBus(
            b=2 * PAPER_BUS.b, c=6 * PAPER_BUS.b, volume_mode="read_only"
        )
        cache = SweepCache(tmp_path)
        first = optimal_allocation_curve(
            rw, FIVE_POINT, kind, SIDES, integer=True, cache=cache
        )
        second = optimal_allocation_curve(
            ro, FIVE_POINT, kind, SIDES, integer=True, cache=cache
        )
        assert cache.stats.misses == 1 and cache.stats.memory_hits == 1
        # Served result equals what the second preset would compute alone.
        direct = optimal_allocation_curve(ro, FIVE_POINT, kind, SIDES, integer=True)
        np.testing.assert_array_equal(second.speedup, direct.speedup)
        np.testing.assert_array_equal(second.cycle_time, direct.cycle_time)
        np.testing.assert_array_equal(first.cycle_time, direct.cycle_time)
        assert second.regime == direct.regime


class TestCacheStatsMerge:
    def test_merge_adds_worker_counts(self):
        mine = CacheStats(memory_hits=1, misses=2)
        worker = CacheStats(memory_hits=3, disk_hits=4, misses=5, disk_evictions=6)
        mine.merge(worker)
        assert mine.memory_hits == 4
        assert mine.disk_hits == 4
        assert mine.misses == 7
        assert mine.disk_evictions == 6

    def test_merge_accepts_snapshots(self):
        mine = CacheStats()
        mine.merge({"memory_hits": 2, "misses": 1})
        assert mine.hits == 2 and mine.misses == 1

    def test_describe_mentions_evictions(self):
        stats = CacheStats(memory_hits=1, memory_evictions=2)
        assert "2 evictions" in stats.describe()


class TestDefaultCache:
    def test_configure_and_clear(self, tmp_path):
        assert default_cache() is None
        cache = configure_default_cache(tmp_path)
        assert default_cache() is cache
        # Analysis calls with no explicit cache route through the default.
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES)
        assert cache.stats.memory_hits == 1
        clear_default_cache()
        assert default_cache() is None
