"""The content-addressed sweep cache: keys, levels, stats, correctness."""

import numpy as np
import pytest

from repro.batch import (
    SweepCache,
    SweepSpec,
    cached_run_sweep,
    clear_default_cache,
    configure_default_cache,
    default_cache,
    fingerprint,
    optimal_allocation_curve,
    run_sweep,
)
from repro.machines.catalog import PAPER_BUS, PAPER_BUS_ASYNC
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

SQUARE = PartitionKind.SQUARE
SIDES = list(range(64, 512, 16))


@pytest.fixture(autouse=True)
def _no_default_cache():
    """Keep the process-wide default cache out of other tests' way."""
    clear_default_cache()
    yield
    clear_default_cache()


class TestFingerprint:
    def test_stable_across_calls(self):
        req = ("op", PAPER_BUS, FIVE_POINT, SQUARE, np.arange(5.0))
        assert fingerprint(req) == fingerprint(req)

    def test_distinguishes_machine_parameters(self):
        a = fingerprint(("op", PAPER_BUS))
        b = fingerprint(("op", PAPER_BUS_ASYNC))
        c = fingerprint(("op", type(PAPER_BUS)(b=PAPER_BUS.b * 2, c=0.0)))
        assert len({a, b, c}) == 3

    def test_distinguishes_stencil_kind_and_axis(self):
        base = ("op", PAPER_BUS, FIVE_POINT, SQUARE, np.arange(5.0))
        variants = [
            ("op", PAPER_BUS, NINE_POINT_BOX, SQUARE, np.arange(5.0)),
            ("op", PAPER_BUS, FIVE_POINT, PartitionKind.STRIP, np.arange(5.0)),
            ("op", PAPER_BUS, FIVE_POINT, SQUARE, np.arange(6.0)),
        ]
        digests = {fingerprint(base)} | {fingerprint(v) for v in variants}
        assert len(digests) == 4


class TestSweepCacheLevels:
    def test_memory_hit_returns_identical_arrays(self, tmp_path):
        cache = SweepCache(tmp_path)
        c1 = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cache
        )
        c2 = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cache
        )
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        np.testing.assert_array_equal(c1.speedup, c2.speedup)
        np.testing.assert_array_equal(c1.area, c2.area)
        assert c1.regime == c2.regime

    def test_disk_hit_after_restart(self, tmp_path):
        cold = SweepCache(tmp_path)
        c1 = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cold
        )
        warm = SweepCache(tmp_path)  # fresh memory, same directory
        c2 = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=warm
        )
        assert warm.stats.disk_hits == 1 and warm.stats.misses == 0
        np.testing.assert_array_equal(c1.cycle_time, c2.cycle_time)
        assert c1.regime == c2.regime  # string arrays survive the .npz round trip

    def test_memory_only_cache(self):
        cache = SweepCache()  # no directory at all
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        assert cache.stats.snapshot() == {
            "memory_hits": 1,
            "disk_hits": 0,
            "misses": 1,
        }

    def test_different_requests_do_not_collide(self, tmp_path):
        cache = SweepCache(tmp_path)
        c_sq = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        c_st = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, PartitionKind.STRIP, SIDES, cache=cache
        )
        assert cache.stats.misses == 2
        assert not np.array_equal(c_sq.speedup, c_st.speedup)

    def test_cached_result_equals_uncached(self, tmp_path):
        cache = SweepCache(tmp_path)
        cached = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True, cache=cache
        )
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True
        )
        np.testing.assert_array_equal(cached.speedup, direct.speedup)
        np.testing.assert_array_equal(cached.processors, direct.processors)
        assert cached.regime == direct.regime

    def test_cached_arrays_cannot_be_poisoned_in_place(self, tmp_path):
        cache = SweepCache(tmp_path)
        c1 = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        with pytest.raises(ValueError):
            c1.speedup[:] = 0.0  # read-only: mutation cannot corrupt the store
        c2 = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        direct = optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES)
        np.testing.assert_array_equal(c2.speedup, direct.speedup)

    def test_describe_labels_warm_and_cold(self, tmp_path):
        cache = SweepCache(tmp_path)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=cache)
        assert "[cold]" in cache.stats.describe()
        warm = SweepCache(tmp_path)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES, cache=warm)
        assert "[warm]" in warm.stats.describe()


class TestCachedSweep:
    def test_sweep_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = SweepSpec.across_catalog(
            SIDES, [1.0, 4.0, 16.0], machines=["ipsc", "paper-bus"]
        )
        r1 = cached_run_sweep(spec, cache)
        r2 = cached_run_sweep(spec, cache)
        plain = run_sweep(spec)
        assert cache.stats.misses == 1 and cache.stats.memory_hits == 1
        for name in ("ipsc", "paper-bus"):
            np.testing.assert_array_equal(r1.cycle_time(name), plain.cycle_time(name))
            np.testing.assert_array_equal(r2.cycle_time(name), plain.cycle_time(name))

    def test_without_cache_is_passthrough(self):
        spec = SweepSpec.across_catalog([64], [1.0, 2.0], machines=["ipsc"])
        np.testing.assert_array_equal(
            cached_run_sweep(spec).cycle_time("ipsc"),
            run_sweep(spec).cycle_time("ipsc"),
        )


class TestDefaultCache:
    def test_configure_and_clear(self, tmp_path):
        assert default_cache() is None
        cache = configure_default_cache(tmp_path)
        assert default_cache() is cache
        # Analysis calls with no explicit cache route through the default.
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES)
        optimal_allocation_curve(PAPER_BUS, FIVE_POINT, SQUARE, SIDES)
        assert cache.stats.memory_hits == 1
        clear_default_cache()
        assert default_cache() is None
