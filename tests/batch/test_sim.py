"""Lockstep replica batches: bit-exact parity with the scalar oracle.

The contract under test is the tentpole invariant: for any valid
(N, P, machine, seed) replica, :func:`repro.batch.sim.simulate_replicas`
produces *exactly* the float the event-level oracle
:func:`repro.sim.replica.simulate_replica` produces — same decomposition,
same RNG draws, same arbitration, down to the last ulp.  Equality here
is ``==``, never ``approx``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.cache import SweepCache, fingerprint
from repro.batch.sim import (
    SIM_MODES,
    ReplicaBatchSpec,
    machine_sim_tag,
    replica_request,
    simulate_replicas,
    simulate_replicas_cached,
)
from repro.errors import InvalidParameterError
from repro.machines.bus import SynchronousBus
from repro.machines.catalog import DEFAULT_MACHINES
from repro.partitioning.decomposition import decomposition_for
from repro.sim.iteration import halo_volumes
from repro.sim.replica import simulate_replica
from repro.stencils.stencil import Stencil
from repro.sim.rng import MAX_SEED
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX, NINE_POINT_STAR
from repro.stencils.perimeter import PartitionKind

MACHINE_NAMES = sorted(DEFAULT_MACHINES)
STENCILS = {"five": FIVE_POINT, "nine-star": NINE_POINT_STAR, "nine-box": NINE_POINT_BOX}


def _assert_matches_oracle(spec: ReplicaBatchSpec) -> None:
    result = simulate_replicas(spec)
    for i in range(len(spec.seeds)):
        oracle = simulate_replica(
            spec.machine,
            spec.grid_sides[i],
            spec.processors[i],
            spec.stencil,
            spec.seeds[i],
            kind=spec.kind,
            t_flop=spec.t_flop,
            mode=spec.mode,
            jitter=spec.jitter,
        )
        assert result.cycle_times[i] == oracle.cycle_time, (
            f"replica {i}: n={spec.grid_sides[i]} p={spec.processors[i]} "
            f"seed={spec.seeds[i]} machine={spec.machine.name}"
        )


class TestParityWithOracle:
    @given(
        name=st.sampled_from(MACHINE_NAMES),
        stencil=st.sampled_from(sorted(STENCILS)),
        kind=st.sampled_from([PartitionKind.SQUARE, PartitionKind.STRIP]),
        mode=st.sampled_from(list(SIM_MODES)),
        jitter=st.sampled_from([0.0, 0.05, 0.3]),
        configs=st.lists(
            st.tuples(
                st.integers(min_value=4, max_value=24),  # n
                st.integers(min_value=1, max_value=9),  # p (capped below)
                st.integers(min_value=0, max_value=MAX_SEED),  # seed
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_equals_event_level(
        self, name, stencil, kind, mode, jitter, configs
    ):
        """Core property: batched == oracle for any valid (N, P, machine, seed).

        Heterogeneous batches on purpose: each replica picks its own
        (n, p, seed), so config grouping and scatter-back are exercised,
        including degenerate members (P = 1, single-replica batches).
        """
        spec = ReplicaBatchSpec.build(
            DEFAULT_MACHINES[name],
            STENCILS[stencil],
            kind,
            [n for n, _, _ in configs],
            [min(p, n) for n, p, _ in configs],
            [s for _, _, s in configs],
            mode=mode,
            jitter=jitter,
        )
        _assert_matches_oracle(spec)

    @pytest.mark.parametrize("name", MACHINE_NAMES)
    def test_single_replica_batch(self, name):
        spec = ReplicaBatchSpec.build(
            DEFAULT_MACHINES[name], FIVE_POINT, PartitionKind.SQUARE,
            16, 4, 42, jitter=0.1,
        )
        assert len(spec.seeds) == 1
        _assert_matches_oracle(spec)

    @pytest.mark.parametrize("name", MACHINE_NAMES)
    def test_serial_replicas(self, name):
        """P = 1 is pure jittered compute on every machine."""
        spec = ReplicaBatchSpec.build(
            DEFAULT_MACHINES[name], FIVE_POINT, PartitionKind.SQUARE,
            12, 1, [0, 1, 2], jitter=0.2,
        )
        _assert_matches_oracle(spec)

    @pytest.mark.parametrize("mode", SIM_MODES)
    @pytest.mark.parametrize("name", ["paper-bus", "paper-bus-async", "butterfly"])
    def test_zero_word_transfers(self, name, mode):
        """A one-sided stencil gives the top strip zero reads and the
        bottom strip zero writes; the vectorized phases must treat
        zero-word requests as completing at their ready time without
        occupying the bus."""
        upwind = Stencil("upwind", ((-1, 0),))
        dec = decomposition_for(6, 3, "strip")
        reads, writes = halo_volumes(dec, upwind)
        assert 0 in reads and 0 in writes  # premise of the test
        spec = ReplicaBatchSpec.build(
            DEFAULT_MACHINES[name], upwind, PartitionKind.STRIP,
            [6, 6, 8], [3, 6, 4], [7, 8, 9], mode=mode, jitter=0.15,
        )
        _assert_matches_oracle(spec)

    @pytest.mark.parametrize("mode", SIM_MODES)
    def test_monte_carlo_ensemble(self, mode):
        spec = ReplicaBatchSpec.monte_carlo(
            DEFAULT_MACHINES["flex32"], NINE_POINT_STAR, PartitionKind.SQUARE,
            20, 6, 25, seed=100, mode=mode, jitter=0.1,
        )
        assert len(spec.seeds) == 25
        assert spec.seeds[0] == 100
        _assert_matches_oracle(spec)


class TestSpecValidation:
    def test_mismatched_axis_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReplicaBatchSpec.build(
                DEFAULT_MACHINES["paper-bus"], FIVE_POINT, PartitionKind.SQUARE,
                [8, 16], [2, 4, 8], 0,
            )

    def test_processors_beyond_grid_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReplicaBatchSpec.build(
                DEFAULT_MACHINES["paper-bus"], FIVE_POINT, PartitionKind.SQUARE,
                4, 17, 0,
            )

    def test_seed_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReplicaBatchSpec.build(
                DEFAULT_MACHINES["paper-bus"], FIVE_POINT, PartitionKind.SQUARE,
                8, 4, MAX_SEED + 1,
            )

    def test_bad_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReplicaBatchSpec.build(
                DEFAULT_MACHINES["paper-bus"], FIVE_POINT, PartitionKind.SQUARE,
                8, 4, 0, mode="speculative",
            )

    def test_jitter_band_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReplicaBatchSpec.build(
                DEFAULT_MACHINES["paper-bus"], FIVE_POINT, PartitionKind.SQUARE,
                8, 4, 0, jitter=1.0,
            )

    def test_band_summary(self):
        spec = ReplicaBatchSpec.monte_carlo(
            DEFAULT_MACHINES["paper-bus"], FIVE_POINT, PartitionKind.SQUARE,
            16, 4, 50, jitter=0.1,
        )
        band = simulate_replicas(spec).band()
        assert band["replicas"] == 50
        assert band["min"] <= band["q05"] <= band["mean"] <= band["q95"] <= band["max"]
        assert band["std"] > 0.0


class TestFingerprints:
    def test_request_is_deterministic_and_seed_sensitive(self):
        base = dict(
            machine=DEFAULT_MACHINES["paper-bus"],
            stencil=FIVE_POINT,
            kind=PartitionKind.SQUARE,
        )
        a = ReplicaBatchSpec.build(grid_sides=16, processors=4, seeds=0, **base)
        b = ReplicaBatchSpec.build(grid_sides=16, processors=4, seeds=0, **base)
        c = ReplicaBatchSpec.build(grid_sides=16, processors=4, seeds=1, **base)
        assert fingerprint(replica_request(a)) == fingerprint(replica_request(b))
        assert fingerprint(replica_request(a)) != fingerprint(replica_request(c))

    def test_sim_tag_keeps_closed_form_twins_apart(self):
        """The cache's closed-form bus canonicalization merges a
        read_write bus with the read_only bus at doubled constants —
        correct for analytic surfaces, *wrong* for simulation, which
        charges ``b`` and ``c`` per word directly.  The sim tag must
        keep them distinct or the cache would serve one machine's
        timeline for the other."""
        rw = SynchronousBus(b=1e-5, c=2e-5, volume_mode="read_write")
        ro = SynchronousBus(b=2e-5, c=4e-5, volume_mode="read_only")
        # Premise: the generic canonicalization really does merge them.
        assert fingerprint(rw) == fingerprint(ro)
        assert machine_sim_tag(rw) != machine_sim_tag(ro)

        def req(m):
            return replica_request(
                ReplicaBatchSpec.build(
                    m, FIVE_POINT, PartitionKind.SQUARE, 12, 4, 0
                )
            )

        assert fingerprint(req(rw)) != fingerprint(req(ro))
        # And the timelines genuinely differ, so the split matters.
        rw_t = simulate_replicas(
            ReplicaBatchSpec.build(rw, FIVE_POINT, PartitionKind.SQUARE, 12, 4, 0)
        ).cycle_times
        ro_t = simulate_replicas(
            ReplicaBatchSpec.build(ro, FIVE_POINT, PartitionKind.SQUARE, 12, 4, 0)
        ).cycle_times
        assert rw_t[0] != ro_t[0]


class TestCachedPath:
    def test_cache_round_trip_is_bit_exact(self, tmp_path):
        cache = SweepCache(cache_dir=tmp_path)
        spec = ReplicaBatchSpec.monte_carlo(
            DEFAULT_MACHINES["butterfly"], FIVE_POINT, PartitionKind.SQUARE,
            16, 4, 10, jitter=0.05,
        )
        cold = simulate_replicas_cached(spec, cache=cache)
        warm = simulate_replicas_cached(spec, cache=cache)
        np.testing.assert_array_equal(cold.cycle_times, warm.cycle_times)
        np.testing.assert_array_equal(cold.seeds, warm.seeds)
        stats = cache.stats_snapshot()
        assert stats["memory_hits"] + stats["disk_hits"] >= 1

    def test_cache_respects_jitter_in_key(self, tmp_path):
        cache = SweepCache(cache_dir=tmp_path)
        mk = lambda j: ReplicaBatchSpec.monte_carlo(  # noqa: E731
            DEFAULT_MACHINES["paper-bus"], FIVE_POINT, PartitionKind.SQUARE,
            16, 4, 5, jitter=j,
        )
        a = simulate_replicas_cached(mk(0.0), cache=cache)
        b = simulate_replicas_cached(mk(0.2), cache=cache)
        assert not np.array_equal(a.cycle_times, b.cycle_times)


class TestKernelsAgainstEventLevel:
    """The private lockstep scans equal the event-level bus kernels
    directly — the kernel-by-kernel decomposition of the replica
    invariant, so a drift localizes to one scan instead of a whole
    replica trace."""

    B, C = 6.1e-6, 2.0e-6

    def test_phase_completions_from_zero_equals_sync_bus_phase(self):
        from repro.batch.sim import _phase_completions_from_zero
        from repro.sim.network.bus_sim import BlockRequest, sync_bus_phase

        words = np.array([3.0, 0.0, 5.0, 2.0, 0.0, 7.0])
        requests = [
            BlockRequest(p, int(w), 0.0) for p, w in enumerate(words.tolist())
        ]
        oracle = sync_bus_phase(requests, self.B, self.C)
        batched = _phase_completions_from_zero(words, self.B, self.C)
        for p in range(words.size):
            assert batched[p] == oracle[p]

    def test_barrier_write_cycles_equals_sync_bus_phase(self):
        from repro.batch.sim import _barrier_write_cycles
        from repro.sim.network.bus_sim import BlockRequest, sync_bus_phase

        words = np.array([4.0, 0.0, 6.0, 1.0])
        t2 = np.array([0.0125, 0.031, 0.0004])  # one barrier time per replica
        batched = _barrier_write_cycles(t2, words, self.B, self.C)
        for r, ready in enumerate(t2.tolist()):
            requests = [
                BlockRequest(p, int(w), ready)
                for p, w in enumerate(words.tolist())
            ]
            oracle = sync_bus_phase(requests, self.B, self.C)
            assert batched[r] == max(oracle.values())

    def test_fifo_write_cycles_equals_sync_bus_phase(self):
        from repro.batch.sim import _fifo_write_cycles
        from repro.sim.network.bus_sim import BlockRequest, sync_bus_phase

        words = np.array([2.0, 5.0, 0.0, 3.0])
        ready = np.array(
            [
                [0.004, 0.001, 0.003, 0.001],  # ties keep rank order
                [0.010, 0.010, 0.010, 0.010],
                [0.000, 0.020, 0.005, 0.015],
            ]
        )
        batched = _fifo_write_cycles(ready, words, self.B, self.C)
        for r in range(ready.shape[0]):
            requests = [
                BlockRequest(p, int(words[p]), ready[r, p].item())
                for p in range(words.size)
            ]
            oracle = sync_bus_phase(requests, self.B, self.C)
            assert batched[r] == max(oracle.values())

    def test_async_drain_cycles_equals_async_write_drain(self):
        from repro.batch.sim import _async_drain_cycles
        from repro.sim.network.bus_sim import WordStream, async_write_drain

        t1 = 0.002
        writes = np.array([3.0, 0.0, 5.0])
        intervals = np.array(
            [
                [1.1e-5, 0.0, 0.9e-5],
                [2.3e-5, 0.0, 1.7e-5],
            ]
        )
        compute_end = np.array([0.0021, 0.0029])
        batched = _async_drain_cycles(
            t1, compute_end, writes, intervals, self.B
        )
        for r in range(intervals.shape[0]):
            streams = [
                WordStream(p, int(writes[p]), t1, intervals[r, p].item())
                for p in range(writes.size)
            ]
            drain = async_write_drain(streams, self.B)
            assert batched[r] == max(compute_end[r].item(), drain)

    def test_async_drain_zero_words_is_compute_bound(self):
        from repro.batch.sim import _async_drain_cycles
        from repro.sim.network.bus_sim import async_write_drain

        compute_end = np.array([0.5, 0.7])
        batched = _async_drain_cycles(
            0.1, compute_end, np.zeros(3), np.zeros((2, 3)), self.B
        )
        assert async_write_drain([], self.B) == 0.0
        np.testing.assert_array_equal(batched, compute_end)
