"""Bit-equality between scalar closed forms and their vectorized twins.

These are the tests the ``parity-coverage`` lint rule demands: each pair
is exercised with the twin's name spelled out, and equality is exact
(``==``, not allclose) because the twins transcribe the scalar
floating-point operations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.analysis import _admissible_range_grid
from repro.batch.curves import (
    closed_form_optimal_speedup_async_bus_curve,
    closed_form_optimal_speedup_sync_bus_curve,
    uses_all_processors_curve,
)
from repro.core.allocation import admissible_area_range
from repro.core.minimal_size import uses_all_processors
from repro.core.parameters import Workload
from repro.core.scaling import optimal_speedup_sweep
from repro.core.speedup import (
    closed_form_optimal_speedup_async_bus,
    closed_form_optimal_speedup_sync_bus,
    fixed_machine_speedup,
    speedup_at_processors,
    speedup_curve,
)
from repro.batch.curves import optimal_speedup_curve
from repro.errors import InvalidParameterError
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

SIDES = [8, 16, 57, 128, 256, 777, 1024, 4096]


class TestClosedFormBusSpeedups:
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", [FIVE_POINT, NINE_POINT_BOX])
    def test_sync_curve_matches_scalar_bitwise(self, kind, stencil, sync_bus):
        curve = closed_form_optimal_speedup_sync_bus_curve(
            sync_bus, stencil, kind, SIDES
        )
        for i, n in enumerate(SIDES):
            w = Workload(n=n, stencil=stencil)
            assert curve[i] == closed_form_optimal_speedup_sync_bus(sync_bus, w, kind)

    def test_sync_strip_with_latency_matches_scalar_bitwise(self):
        machine = SynchronousBus(b=6.1e-6, c=3.2e-4)
        curve = closed_form_optimal_speedup_sync_bus_curve(
            machine, FIVE_POINT, PartitionKind.STRIP, SIDES
        )
        for i, n in enumerate(SIDES):
            w = Workload(n=n, stencil=FIVE_POINT)
            assert curve[i] == closed_form_optimal_speedup_sync_bus(
                machine, w, PartitionKind.STRIP
            )

    def test_sync_square_with_latency_raises_like_the_scalar(self):
        machine = SynchronousBus(b=6.1e-6, c=3.2e-4)
        with pytest.raises(InvalidParameterError, match="requires c = 0"):
            closed_form_optimal_speedup_sync_bus(
                machine, Workload(n=64, stencil=FIVE_POINT), PartitionKind.SQUARE
            )
        with pytest.raises(InvalidParameterError, match="requires c = 0"):
            closed_form_optimal_speedup_sync_bus_curve(
                machine, FIVE_POINT, PartitionKind.SQUARE, SIDES
            )

    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("c", [0.0, 3.2e-4])
    def test_async_curve_matches_scalar_bitwise(self, kind, c):
        machine = AsynchronousBus(b=6.1e-6, c=c)
        curve = closed_form_optimal_speedup_async_bus_curve(
            machine, FIVE_POINT, kind, SIDES
        )
        for i, n in enumerate(SIDES):
            w = Workload(n=n, stencil=FIVE_POINT)
            assert curve[i] == closed_form_optimal_speedup_async_bus(machine, w, kind)

    def test_rejects_grid_sides_below_one(self, sync_bus):
        with pytest.raises(InvalidParameterError):
            closed_form_optimal_speedup_sync_bus_curve(
                sync_bus, FIVE_POINT, PartitionKind.STRIP, [0, 8]
            )


class TestUsesAllProcessors:
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("n_processors", [1, 16, 100, 4096])
    def test_curve_matches_scalar(self, kind, n_processors, sync_bus, async_bus):
        for machine in (sync_bus, async_bus):
            curve = uses_all_processors_curve(
                machine, FIVE_POINT, kind, SIDES, n_processors
            )
            assert curve.dtype == bool
            for i, n in enumerate(SIDES):
                w = Workload(n=n, stencil=FIVE_POINT)
                assert bool(curve[i]) == uses_all_processors(
                    machine, w, kind, n_processors
                )

    def test_rejects_bad_processor_count(self, sync_bus):
        with pytest.raises(InvalidParameterError):
            uses_all_processors_curve(
                sync_bus, FIVE_POINT, PartitionKind.STRIP, SIDES, 0
            )


class TestAdmissibleRange:
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("max_processors", [None, 4.0, 64.0])
    def test_grid_matches_scalar_range(self, kind, max_processors):
        n = np.asarray(SIDES, dtype=float)
        a_min, a_max = _admissible_range_grid(n, n * n, kind, max_processors)
        for i, side in enumerate(SIDES):
            w = Workload(n=side, stencil=FIVE_POINT)
            lo, hi = admissible_area_range(w, kind, max_processors=max_processors)
            assert a_min[i] == lo
            assert a_max[i] == hi


class TestSweepAndFixedMachineTwins:
    def test_optimal_speedup_sweep_matches_curve(self, sync_bus, workload_256):
        n2, sp = optimal_speedup_sweep(
            sync_bus, workload_256, PartitionKind.SQUARE, SIDES
        )
        curve = optimal_speedup_curve(
            sync_bus, FIVE_POINT, PartitionKind.SQUARE, SIDES
        )
        assert n2.tolist() == (curve.grid_sides.astype(float) ** 2).tolist()
        assert sp.tolist() == curve.speedup.tolist()

    def test_speedup_at_processors_matches_speedup_curve(self, sync_bus, workload_256):
        processors = [1.0, 2.0, 7.0, 64.0, 256.0]
        curve = speedup_curve(sync_bus, workload_256, PartitionKind.SQUARE, processors)
        for i, p in enumerate(processors):
            assert curve[i] == speedup_at_processors(
                sync_bus, workload_256, PartitionKind.SQUARE, p
            )

    def test_fixed_machine_speedup_matches_speedup_curve(self, sync_bus, workload_256):
        p = 64.0
        curve = speedup_curve(sync_bus, workload_256, PartitionKind.SQUARE, [p])
        assert curve[0] == fixed_machine_speedup(
            sync_bus, workload_256, PartitionKind.SQUARE, p
        )
