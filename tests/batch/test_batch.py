"""The batched sweep engine matches the scalar model paths exactly.

The contract under test is stronger than numerical closeness: the grid
methods transcribe the scalar floating-point operations, so sweeps are
*bit-identical* to per-point evaluation.  The property tests assert the
1e-12 tolerance the engine promises publicly, then pin exact equality
where it is guaranteed.
"""

import numpy as np
import pytest

from repro.batch import (
    SweepSpec,
    bus_optimal_area_curve,
    k_matrix,
    minimal_grid_side_curve,
    optimal_speedup_curve,
    rectangle_error_curves,
    run_sweep,
    table1_speedup_curve,
)
from repro.core.minimal_size import minimal_grid_side
from repro.core.parameters import Workload
from repro.core.scaling import table1_optimal_speedup
from repro.core.speedup import optimal_speedup
from repro.errors import InvalidParameterError
from repro.machines.bus import BusArchitecture
from repro.machines.catalog import DEFAULT_MACHINES
from repro.partitioning.rectangles import approximation_errors
from repro.stencils.library import ALL_STENCILS, FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind, k_table

MACHINE_ITEMS = sorted(DEFAULT_MACHINES.items())


class TestSweepEngineProperty:
    """Randomized (N, P, architecture) grids versus the scalar closed forms."""

    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    def test_cycle_times_match_scalar_within_1e12(self, name, machine, kind):
        rng = np.random.default_rng(hash((name, kind.value)) % 2**32)
        sides = sorted(set(rng.integers(4, 3000, size=12).tolist()))
        procs = sorted(set(rng.integers(1, 40, size=10).tolist()))
        spec = SweepSpec(
            grid_sides=tuple(sides),
            processors=tuple(float(p) for p in procs),
            machines=((name, machine),),
            stencil=NINE_POINT_BOX,
            kind=kind,
        )
        surface = run_sweep(spec).cycle_time(name)
        for i, n in enumerate(sides):
            w = Workload(n=n, stencil=NINE_POINT_BOX)
            for j, p in enumerate(procs):
                if p == 1:
                    expected = w.serial_time()
                else:
                    expected = float(machine.cycle_time(w, kind, w.grid_points / p))
                assert surface[i, j] == pytest.approx(expected, rel=1e-12)
                # The engine's actual contract is exact transcription.
                assert surface[i, j] == expected

    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    def test_communication_time_grid_matches_scalar(self, name, machine, kind):
        # Covers every override, including the asynchronous bus's
        # non-overlapped read+overhang form.
        rng = np.random.default_rng(hash(("comm", name, kind.value)) % 2**32)
        sides = sorted(set(rng.integers(8, 2000, size=8).tolist()))
        for n in sides:
            w = Workload(n=n, stencil=FIVE_POINT)
            areas = np.maximum(rng.uniform(1.0, w.grid_points, size=6), 1.0)
            grid = machine.communication_time_grid(
                FIVE_POINT, w.t_flop, kind, float(n), areas
            )
            scalar = np.asarray(machine.communication_time(w, kind, areas))
            np.testing.assert_array_equal(grid, scalar)

    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", [FIVE_POINT, NINE_POINT_BOX])
    def test_optimal_speedup_curve_matches_scalar(self, name, machine, kind, stencil):
        rng = np.random.default_rng(hash((name, kind.value, stencil.name)) % 2**32)
        sides = sorted(set(rng.integers(8, 5000, size=10).tolist()))
        curve = optimal_speedup_curve(machine, stencil, kind, sides)
        for i, n in enumerate(sides):
            scalar = optimal_speedup(machine, Workload(n=n, stencil=stencil), kind)
            assert curve.speedup[i] == pytest.approx(scalar.speedup, rel=1e-12)
            assert curve.speedup[i] == scalar.speedup
            assert curve.processors[i] == scalar.processors
            assert curve.area[i] == scalar.area
            assert curve.cycle_time[i] == scalar.cycle_time
            assert curve.regime[i] == scalar.regime

    @pytest.mark.parametrize("name", ["paper-bus", "paper-bus-async"])
    def test_bus_square_optimum_ulp_regression(self, name):
        # These grid sides once landed 1 ULP off the scalar optimizer:
        # the curve squared the optimal side with NumPy's ``**2`` (a
        # rounded multiply) while the scalar path goes through libm
        # ``pow(side, 2.0)``, and the hash-seeded property test above
        # only tripped on them by luck.  Pinned deterministically.
        machine = DEFAULT_MACHINES[name]
        sides = [150, 982, 1200, 1475, 2763, 3533, 4117]
        curve = optimal_speedup_curve(
            machine, FIVE_POINT, PartitionKind.SQUARE, sides
        )
        for i, n in enumerate(sides):
            scalar = optimal_speedup(
                machine, Workload(n=n, stencil=FIVE_POINT), PartitionKind.SQUARE
            )
            assert curve.area[i] == scalar.area
            assert curve.processors[i] == scalar.processors
            assert curve.speedup[i] == scalar.speedup

    def test_optimal_speedup_curve_with_processor_cap(self):
        machine = DEFAULT_MACHINES["paper-bus"]
        sides = [64, 256, 1024]
        curve = optimal_speedup_curve(
            machine, FIVE_POINT, PartitionKind.SQUARE, sides, max_processors=16
        )
        for i, n in enumerate(sides):
            scalar = optimal_speedup(
                machine,
                Workload(n=n, stencil=FIVE_POINT),
                PartitionKind.SQUARE,
                max_processors=16,
            )
            assert curve.speedup[i] == scalar.speedup
            assert curve.regime[i] == scalar.regime

    def test_table1_curve_matches_scalar(self):
        sides = [64, 128, 512, 2048]
        for name, machine in MACHINE_ITEMS:
            curve = table1_speedup_curve(machine, FIVE_POINT, sides)
            for i, n in enumerate(sides):
                scalar = table1_optimal_speedup(
                    machine, Workload(n=n, stencil=FIVE_POINT)
                )
                assert curve[i] == scalar

    def test_extension_bus_with_own_optimum_matches_scalar(self):
        # A bus subclass outside the sync/async closed forms (overridden
        # cycle_time AND optimal_area) must route through the scalar
        # fallbacks and stay bit-identical end to end.
        from repro.machines.bus_extensions import FullyAsynchronousBus

        machine = FullyAsynchronousBus(b=6.1e-6)
        sides = [64, 256, 1024]
        for kind in PartitionKind:
            curve = optimal_speedup_curve(machine, FIVE_POINT, kind, sides)
            for i, n in enumerate(sides):
                scalar = optimal_speedup(machine, Workload(n=n, stencil=FIVE_POINT), kind)
                assert curve.speedup[i] == scalar.speedup, (kind, n)
                assert curve.regime[i] == scalar.regime
        spec = SweepSpec(
            grid_sides=(64, 256),
            processors=(1.0, 4.0, 64.0),
            machines=(("full-async", machine),),
            stencil=FIVE_POINT,
        )
        surface = run_sweep(spec).cycle_time("full-async")
        for i, n in enumerate(spec.grid_sides):
            w = Workload(n=n, stencil=FIVE_POINT)
            for j, p in enumerate(spec.processors):
                expected = (
                    w.serial_time()
                    if p == 1.0
                    else float(machine.cycle_time(w, PartitionKind.SQUARE, w.grid_points / p))
                )
                assert surface[i, j] == expected, (n, p)

    def test_subclass_overriding_scalar_hooks_stays_bit_identical(self):
        # The closed-form grid transcriptions must detect a subclass
        # that swaps a scalar hook and reroute through the grouped
        # scalar fallback instead of silently using stale formulas.
        from dataclasses import dataclass

        from repro.machines.bus import AsynchronousBus

        @dataclass(frozen=True)
        class HalfWriteAsyncBus(AsynchronousBus):
            def write_volume(self, workload, kind, area):
                return 0.5 * self.read_volume(workload, kind, area)

        machine = HalfWriteAsyncBus(b=6.1e-6)
        n, kind = 256, PartitionKind.SQUARE
        w = Workload(n=n, stencil=FIVE_POINT)
        areas = np.array([4.0, 64.0, 1024.0])
        grid = machine.cycle_time_area_grid(FIVE_POINT, w.t_flop, kind, float(n), areas)
        scalar = np.asarray(machine.cycle_time(w, kind, areas))
        np.testing.assert_array_equal(grid, scalar)
        comm_grid = machine.communication_time_grid(
            FIVE_POINT, w.t_flop, kind, float(n), areas
        )
        np.testing.assert_array_equal(
            comm_grid, np.asarray(machine.communication_time(w, kind, areas))
        )

    def test_bus_optimal_area_curve_matches_machines(self):
        sides = [32, 256, 4096]
        for name, machine in MACHINE_ITEMS:
            if not isinstance(machine, BusArchitecture):
                continue
            for kind in PartitionKind:
                vec = bus_optimal_area_curve(machine, FIVE_POINT, kind, sides)
                for i, n in enumerate(sides):
                    w = Workload(n=n, stencil=FIVE_POINT)
                    assert vec[i] == machine.optimal_area(w, kind), (name, kind, n)


class TestSweepSpecAndResult:
    def test_across_catalog_by_name(self):
        spec = SweepSpec.across_catalog([64], [1.0, 4.0], machines=["paper-bus"])
        assert spec.machines[0][0] == "paper-bus"
        assert spec.shape == (1, 2)

    def test_across_catalog_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known machines"):
            SweepSpec.across_catalog([64], [1.0], machines=["cray-1"])

    def test_rejects_empty_axes_and_duplicates(self):
        machine = ("m", DEFAULT_MACHINES["paper-bus"])
        with pytest.raises(InvalidParameterError):
            SweepSpec(grid_sides=(), processors=(1.0,), machines=(machine,))
        with pytest.raises(InvalidParameterError):
            SweepSpec(grid_sides=(64,), processors=(), machines=(machine,))
        with pytest.raises(InvalidParameterError):
            SweepSpec(grid_sides=(64,), processors=(0.5,), machines=(machine,))
        with pytest.raises(InvalidParameterError):
            SweepSpec(
                grid_sides=(64,), processors=(1.0,), machines=(machine, machine)
            )

    def test_speedup_and_efficiency_definitions(self):
        spec = SweepSpec.across_catalog([256], [1.0, 16.0], machines=["ipsc"])
        res = run_sweep(spec)
        s = res.speedup("ipsc")
        e = res.efficiency("ipsc")
        assert s[0, 0] == 1.0  # P = 1 is the serial run by definition
        assert e[0, 0] == 1.0
        assert np.all(e <= s)

    def test_feasible_mask_strips(self):
        spec = SweepSpec.across_catalog(
            [16], [1.0, 16.0, 17.0], machines=["paper-bus"], kind=PartitionKind.STRIP
        )
        feasible = run_sweep(spec).feasible()
        assert feasible.tolist() == [[True, True, False]]

    def test_iter_rows_long_form(self):
        spec = SweepSpec.across_catalog([64], [1.0, 2.0], machines=["fem", "rp3"])
        res = run_sweep(spec)
        rows = list(res.iter_rows())
        assert len(rows) == 4
        assert rows[0][0] == "fem"
        assert len(res.headers()) == len(rows[0])

    def test_unknown_machine_lookup_rejected(self):
        spec = SweepSpec.across_catalog([64], [1.0], machines=["fem"])
        with pytest.raises(InvalidParameterError, match="no machine"):
            run_sweep(spec).cycle_time("cray-1")


class TestBatchedCurves:
    def test_minimal_grid_side_curve_matches_scalar(self):
        procs = list(range(2, 25, 2))
        for name, machine in MACHINE_ITEMS:
            if not isinstance(machine, BusArchitecture):
                continue
            for stencil in (FIVE_POINT, NINE_POINT_BOX):
                for kind in PartitionKind:
                    k = Workload(n=2, stencil=stencil).k(kind)
                    vec = minimal_grid_side_curve(
                        machine, k, stencil.flops_per_point, 1e-6, procs, kind
                    )
                    for i, n_procs in enumerate(procs):
                        assert vec[i] == minimal_grid_side(
                            machine, k, stencil.flops_per_point, 1e-6, n_procs, kind
                        )

    def test_k_matrix_matches_k_table(self):
        km = k_matrix(ALL_STENCILS)
        table = {
            (row.stencil, row.partition): row.k for row in k_table(ALL_STENCILS)
        }
        for i, stencil in enumerate(ALL_STENCILS):
            assert km[i, 0] == table[(stencil.name, PartitionKind.STRIP)]
            assert km[i, 1] == table[(stencil.name, PartitionKind.SQUARE)]

    def test_rectangle_error_curves_match_scalar(self):
        n = 128
        areas = range(n * n // 64, n * n // 4 + 1, 2)
        vec = rectangle_error_curves(n, areas)
        scalar = approximation_errors(n, areas)
        assert len(vec) == len(scalar)
        for i, err in enumerate(scalar):
            assert vec.target_areas[i] == err.target_area
            assert vec.heights[i] == err.rectangle.height
            assert vec.widths[i] == err.rectangle.width
            assert vec.area_errors[i] == err.area_error
            assert vec.perimeter_errors[i] == err.perimeter_error
