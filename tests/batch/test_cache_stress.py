"""SweepCache under thread pressure: the lock-discipline rule, live.

Concurrent hits, misses, and evictions on a size-bounded cache must
never corrupt entries or tear the stats — these tests lose the race on
purpose and check the invariants the static ``lock-discipline`` rule
guards structurally.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.batch.cache import SweepCache, fingerprint

THREADS = 8
ROUNDS = 40


def _payload(i: int) -> dict[str, np.ndarray]:
    # ~8 KiB per entry, value derived from the key so corruption is
    # detectable on read-back.
    return {"data": np.full(1024, float(i)), "tag": np.array([i], dtype=np.int64)}


class TestThreadedSweepCache:
    def test_concurrent_hits_misses_and_evictions_stay_consistent(self):
        # Bound small enough that the working set (~50 entries) churns
        # the LRU constantly.
        cache = SweepCache(max_bytes=20 * 8 * 1024)
        errors: list[str] = []
        barrier = threading.Barrier(THREADS)

        def worker(seed: int) -> int:
            barrier.wait()
            rng = np.random.default_rng(seed)
            served = 0
            for _ in range(ROUNDS):
                i = int(rng.integers(0, 50))
                value = cache.get_or_compute(("stress", i), lambda i=i: _payload(i))
                served += 1
                if value["data"][0] != float(i) or value["tag"][0] != i:
                    errors.append(f"entry {i} corrupted: {value['tag']}")
                if not value["data"].flags.writeable:
                    continue
                errors.append(f"entry {i} handed out writeable")  # pragma: no cover
            return served

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            served = sum(pool.map(worker, range(THREADS)))

        assert errors == []
        assert served == THREADS * ROUNDS
        snapshot = cache.stats_snapshot()
        hits = snapshot["memory_hits"] + snapshot["disk_hits"]
        # Every serve was either a hit or a miss; nothing double-counted
        # or lost — the tear this asserts against is exactly what an
        # unlocked stats read allows.
        assert hits + snapshot["misses"] == served
        assert snapshot["memory_evictions"] > 0, "bound never engaged"

    def test_concurrent_identical_requests_each_get_valid_data(self):
        cache = SweepCache()
        results: list[dict[str, np.ndarray]] = []
        lock = threading.Lock()
        barrier = threading.Barrier(THREADS)

        def worker() -> None:
            barrier.wait()
            value = cache.get_or_compute(("dedup", 7), lambda: _payload(7))
            with lock:
                results.append(value)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(results) == THREADS
        for value in results:
            assert value["data"][0] == 7.0
            assert value["tag"][0] == 7

    def test_len_and_snapshot_race_free_during_churn(self):
        cache = SweepCache(max_bytes=10 * 8 * 1024)
        stop = threading.Event()
        errors: list[str] = []

        def churn() -> None:
            i = 0
            while not stop.is_set():
                cache.store(fingerprint(("churn", i % 30)), _payload(i % 30))
                i += 1

        def observe() -> None:
            while not stop.is_set():
                n = len(cache)
                if n < 0:  # pragma: no cover - the assert is the point
                    errors.append(f"negative len {n}")
                snap = cache.stats_snapshot()
                if snap["memory_evictions"] < 0:  # pragma: no cover
                    errors.append("negative evictions")

        workers = [threading.Thread(target=churn) for _ in range(4)] + [
            threading.Thread(target=observe) for _ in range(2)
        ]
        for t in workers:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in workers:
            t.join(timeout=10)
        timer.cancel()
        stop.set()

        assert errors == []
        # Steady state respects the bound: at most the protected entry
        # may exceed it transiently.
        assert len(cache) <= 30
