"""Runner semantics: id selection, output handling, concurrency."""

import pytest

from repro.errors import ExperimentError, InvalidParameterError
from repro.experiments.runner import run_all, run_experiments

FAST_IDS = ["E-KTAB", "E-TEXT1"]


class TestIdSelection:
    def test_empty_list_runs_nothing(self, tmp_path):
        # ids=[] must not silently fall through to "run everything".
        assert run_experiments(tmp_path, ids=[]) == []
        assert run_all(tmp_path, ids=[]) == []
        assert not list(tmp_path.glob("*.csv"))

    def test_unknown_id_raises_before_running(self, tmp_path):
        with pytest.raises(ExperimentError, match="E-NOPE"):
            run_experiments(tmp_path, ids=["E-KTAB", "E-NOPE"])
        # The known experiment listed first must not have run.
        assert not list(tmp_path.glob("e-ktab*"))

    def test_selection_order_is_preserved(self, tmp_path):
        runs = run_experiments(tmp_path, ids=list(reversed(FAST_IDS)))
        assert [r.experiment_id for r in runs] == list(reversed(FAST_IDS))

    def test_duplicate_ids_collapse_to_one_run(self, tmp_path):
        # Two concurrent workers must never write the same CSV paths.
        runs = run_experiments(tmp_path, ids=["E-KTAB", "E-KTAB"], jobs=2)
        assert [r.experiment_id for r in runs] == ["E-KTAB"]


class TestOutputDirectory:
    def test_missing_output_dir_is_created(self, tmp_path):
        deep = tmp_path / "does" / "not" / "exist"
        runs = run_experiments(deep, ids=["E-KTAB"])
        assert deep.is_dir()
        assert runs[0].csv_paths
        assert all(p.exists() for p in runs[0].csv_paths)


class TestConcurrency:
    def test_parallel_matches_serial_reports(self, tmp_path):
        serial = run_experiments(tmp_path / "s", ids=FAST_IDS, jobs=1)
        parallel = run_experiments(tmp_path / "p", ids=FAST_IDS, jobs=2)
        assert [r.experiment_id for r in parallel] == [
            r.experiment_id for r in serial
        ]
        assert [r.report for r in parallel] == [r.report for r in serial]

    def test_wall_time_recorded(self, tmp_path):
        (run,) = run_experiments(tmp_path, ids=["E-KTAB"])
        assert run.seconds > 0.0

    def test_invalid_jobs_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            run_experiments(tmp_path, ids=FAST_IDS, jobs=0)


class TestBackCompat:
    def test_run_all_returns_reports(self, tmp_path):
        reports = run_all(tmp_path, ids=["E-KTAB"])
        assert len(reports) == 1
        assert reports[0].startswith("[E-KTAB]")
