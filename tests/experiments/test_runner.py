"""Runner semantics: id selection, output handling, concurrency."""

import pytest

from repro.errors import ExperimentError, InvalidParameterError
from repro.experiments import registry
from repro.experiments.runner import run_all, run_experiments

FAST_IDS = ["E-KTAB", "E-TEXT1"]


def _deliberately_failing_experiment():
    raise ValueError("deliberate boom for the traceback test")


@pytest.fixture()
def failing_experiment():
    """Register a crashing experiment; workers inherit it via fork."""
    exp_id = "E-FAIL-TEST"
    registry._REGISTRY[exp_id] = _deliberately_failing_experiment
    try:
        yield exp_id
    finally:
        registry._REGISTRY.pop(exp_id, None)


class TestIdSelection:
    def test_empty_list_runs_nothing(self, tmp_path):
        # ids=[] must not silently fall through to "run everything".
        assert run_experiments(tmp_path, ids=[]) == []
        assert run_all(tmp_path, ids=[]) == []
        assert not list(tmp_path.glob("*.csv"))

    def test_unknown_id_raises_before_running(self, tmp_path):
        with pytest.raises(ExperimentError, match="E-NOPE"):
            run_experiments(tmp_path, ids=["E-KTAB", "E-NOPE"])
        # The known experiment listed first must not have run.
        assert not list(tmp_path.glob("e-ktab*"))

    def test_selection_order_is_preserved(self, tmp_path):
        runs = run_experiments(tmp_path, ids=list(reversed(FAST_IDS)))
        assert [r.experiment_id for r in runs] == list(reversed(FAST_IDS))

    def test_duplicate_ids_collapse_to_one_run(self, tmp_path):
        # Two concurrent workers must never write the same CSV paths.
        runs = run_experiments(tmp_path, ids=["E-KTAB", "E-KTAB"], jobs=2)
        assert [r.experiment_id for r in runs] == ["E-KTAB"]


class TestOutputDirectory:
    def test_missing_output_dir_is_created(self, tmp_path):
        deep = tmp_path / "does" / "not" / "exist"
        runs = run_experiments(deep, ids=["E-KTAB"])
        assert deep.is_dir()
        assert runs[0].csv_paths
        assert all(p.exists() for p in runs[0].csv_paths)


class TestConcurrency:
    def test_parallel_matches_serial_reports(self, tmp_path):
        serial = run_experiments(tmp_path / "s", ids=FAST_IDS, jobs=1)
        parallel = run_experiments(tmp_path / "p", ids=FAST_IDS, jobs=2)
        assert [r.experiment_id for r in parallel] == [
            r.experiment_id for r in serial
        ]
        assert [r.report for r in parallel] == [r.report for r in serial]

    def test_wall_time_recorded(self, tmp_path):
        (run,) = run_experiments(tmp_path, ids=["E-KTAB"])
        assert run.seconds > 0.0

    def test_invalid_jobs_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            run_experiments(tmp_path, ids=FAST_IDS, jobs=0)


class TestBackCompat:
    def test_run_all_returns_reports(self, tmp_path):
        reports = run_all(tmp_path, ids=["E-KTAB"])
        assert len(reports) == 1
        assert reports[0].startswith("[E-KTAB]")


class TestWorkerFailures:
    def test_pool_failure_names_experiment_and_keeps_traceback(
        self, tmp_path, failing_experiment
    ):
        with pytest.raises(ExperimentError) as excinfo:
            run_experiments(
                tmp_path, ids=["E-KTAB", failing_experiment], jobs=2
            )
        message = str(excinfo.value)
        assert failing_experiment in message
        assert "Traceback (most recent call last)" in message
        assert "deliberate boom for the traceback test" in message
        assert "_deliberately_failing_experiment" in message

    def test_single_process_failure_propagates_unwrapped(
        self, tmp_path, failing_experiment
    ):
        # jobs=1 runs in-process where the real traceback survives; the
        # original exception type must not be masked.
        with pytest.raises(ValueError, match="deliberate boom"):
            run_experiments(tmp_path, ids=[failing_experiment], jobs=1)


class TestRunnerServer:
    @pytest.fixture()
    def server(self):
        from repro.service import SweepServer

        with SweepServer(port=0) as srv:
            yield srv

    def test_server_reports_match_offline_and_totals_match_single_process(
        self, tmp_path, server
    ):
        ids = ["E-TEXT2", "E-KTAB"]

        def totals(runs):
            reported = [r.cache_stats for r in runs if r.cache_stats is not None]
            return (
                sum(s["memory_hits"] + s["disk_hits"] for s in reported),
                sum(s["misses"] for s in reported),
            )

        offline = run_experiments(
            tmp_path / "a", ids=ids, jobs=1, cache_dir=tmp_path / "cache"
        )
        routed = run_experiments(tmp_path / "b", ids=ids, jobs=2, server=server.url)
        assert [r.report for r in routed] == [r.report for r in offline]
        # Cold pass: same misses either way.
        assert totals(routed) == totals(offline)
        # Warm pass: hits served by the daemon are counted by each
        # worker's own stats, so --jobs does not undercount them.
        offline_warm = run_experiments(
            tmp_path / "a", ids=ids, jobs=1, cache_dir=tmp_path / "cache"
        )
        routed_warm = run_experiments(
            tmp_path / "b", ids=ids, jobs=2, server=server.url
        )
        assert totals(routed_warm) == totals(offline_warm)
        assert totals(routed_warm)[1] == 0  # fully warm: no misses


class TestRunnerCache:
    def test_cache_stats_surfaced_and_warm_on_second_run(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_experiments(tmp_path / "out", ids=["E-TEXT2"], cache_dir=cache_dir)
        assert cold[0].cache_stats is not None
        assert cold[0].cache_stats["misses"] > 0
        warm = run_experiments(tmp_path / "out", ids=["E-TEXT2"], cache_dir=cache_dir)
        assert warm[0].cache_stats["misses"] == 0
        assert warm[0].cache_stats["disk_hits"] > 0

    def test_no_cache_dir_means_no_stats(self, tmp_path):
        runs = run_experiments(tmp_path / "out", ids=["E-KTAB"])
        assert runs[0].cache_stats is None

    def test_callers_default_cache_is_restored(self, tmp_path):
        from repro.batch.cache import (
            clear_default_cache,
            configure_default_cache,
            default_cache,
        )

        mine = configure_default_cache(tmp_path / "mine")
        try:
            run_experiments(
                tmp_path / "out", ids=["E-KTAB"], cache_dir=tmp_path / "other"
            )
            assert default_cache() is mine
        finally:
            clear_default_cache()
