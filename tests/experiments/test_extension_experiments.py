"""Value anchors for the extension experiments (E-EXT-*, E-ABL-*, E-ISO)."""

import math

import pytest

import repro.experiments  # noqa: F401 — registers everything
from repro.experiments.registry import get_experiment


class TestFullyAsync:
    def test_constant_factors(self):
        result = get_experiment("E-EXT-FULLASYNC")()
        for row in result.table("optimal speedup by overlap level").rows:
            _, kind, s_sync, s_async, s_full, ratio = row
            assert s_sync < s_async < s_full
            expected = math.sqrt(2) if kind == "strip" else 2 ** (1 / 3)
            assert ratio == pytest.approx(expected, rel=1e-6)

    def test_exponents_unchanged(self):
        result = get_experiment("E-EXT-FULLASYNC")()
        for row in result.table("fully-async growth exponents (unchanged)").rows:
            assert row[1] == pytest.approx(row[2], abs=1e-3)


class TestMappingAblation:
    def test_embedding_gain_grows(self):
        result = get_experiment("E-ABL-MAPPING")()
        gains = result.table(
            "optimal speedup with and without the embedding"
        ).column("embedding gain")
        assert all(g > 1 for g in gains)
        assert gains == sorted(gains)


class TestPlacementAblation:
    def test_identity_and_shift_conflict_free(self):
        result = get_experiment("E-ABL-PLACEMENT")()
        table = result.table("max switch-edge congestion by placement")
        assert all(row[1] == 1 for row in table.rows)  # identity
        assert all(row[2] == 1 for row in table.rows)  # shift

    def test_bit_reversal_explodes(self):
        result = get_experiment("E-ABL-PLACEMENT")()
        table = result.table("max switch-edge congestion by placement")
        reversal = table.column("bit reversal")
        assert reversal[-1] >= 4 * reversal[0]


class TestIsoefficiency:
    def test_growth_laws(self):
        result = get_experiment("E-ISO")()
        table = result.table("n² growth exponent in N at efficiency 0.5")
        fitted = dict(zip(table.column("configuration"), table.column("fitted exponent")))
        assert fitted["hypercube / squares"] == pytest.approx(1.0, abs=0.15)
        assert fitted["sync bus / squares"] == pytest.approx(3.0, abs=0.1)
        assert fitted["sync bus / strips"] == pytest.approx(4.0, abs=0.1)


class TestArbitration:
    def test_block_fifo_exact(self):
        result = get_experiment("E-ABL-ARBITRATION")()
        table = result.table("phase completion by discipline (V words/processor)")
        for row in table.rows:
            assert row[5] == pytest.approx(1.0, abs=1e-12)
            assert row[6] <= 1.0 + 1e-12


class TestOperators:
    def test_fixed_point_and_radii(self):
        result = get_experiment("E-OPERATORS")()
        fixed = result.table("Jacobi fixed point vs sparse direct solve")
        assert all(row[2] < 1e-9 for row in fixed.rows)
        radii = {r[0]: r[1] for r in result.table("Jacobi iteration spectral radius").rows}
        assert radii["5-point"] == pytest.approx(
            math.cos(math.pi / 17), rel=1e-6
        )
        assert radii["9-point-star"] > 1.0
