"""Experiment infrastructure: tables, registry, rendering, CSV output."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import (
    ExperimentResult,
    ExperimentTable,
    all_experiments,
    get_experiment,
    register,
)


class TestTables:
    def test_column_extraction(self):
        t = ExperimentTable(name="t", headers=("a", "b"), rows=((1, 2), (3, 4)))
        assert t.column("b") == [2, 4]

    def test_missing_column_raises(self):
        t = ExperimentTable(name="t", headers=("a",), rows=((1,),))
        with pytest.raises(ExperimentError, match="no column"):
            t.column("z")

    def test_add_and_get_table(self):
        r = ExperimentResult(experiment_id="X", title="x")
        r.add_table("one", ["h"], [[1]])
        assert r.table("one").rows == ((1,),)
        with pytest.raises(ExperimentError, match="no table"):
            r.table("two")


class TestRender:
    def test_render_contains_id_tables_notes(self):
        r = ExperimentResult(experiment_id="E-X", title="demo")
        r.add_table("numbers", ["n"], [[42]])
        r.notes.append("a note")
        out = r.render()
        assert "[E-X] demo" in out
        assert "42" in out
        assert "note: a note" in out

    def test_csv_files_written(self, tmp_path):
        r = ExperimentResult(experiment_id="E-X", title="demo")
        r.add_table("my table", ["n"], [[1]])
        paths = r.write_csvs(tmp_path)
        assert len(paths) == 1
        assert paths[0].name == "e-x_my_table.csv"


class TestRegistry:
    def test_known_experiments_registered(self):
        import repro.experiments  # noqa: F401 — populates registry

        ids = set(all_experiments())
        assert {
            "E-KTAB",
            "E-FIG6",
            "E-FIG7",
            "E-FIG8",
            "E-TAB1",
            "E-TEXT1",
            "E-TEXT2",
            "E-TEXT3",
            "E-TEXT4",
            "E-SCAL",
            "E-EXTREME",
            "E-SIMVAL",
            "E-SOLVE",
        } <= ids

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("E-NOPE")

    def test_duplicate_registration_rejected(self):
        @register("E-TEST-DUP")
        def one():  # pragma: no cover
            return ExperimentResult("E-TEST-DUP", "x")

        with pytest.raises(ExperimentError, match="duplicate"):

            @register("E-TEST-DUP")
            def two():  # pragma: no cover
                return ExperimentResult("E-TEST-DUP", "x")
