"""Integration tests: every experiment runs and reproduces its anchors.

These are the repo's paper-facing acceptance tests — each asserts the
*shape* results the reproduction promises in EXPERIMENTS.md (who wins,
by what law, where thresholds sit), not absolute times.
"""

import math

import pytest

import repro.experiments  # noqa: F401 — registers everything
from repro.experiments.registry import all_experiments, get_experiment


class TestAllRun:
    @pytest.mark.parametrize("exp_id", sorted(all_experiments()))
    def test_runs_and_renders(self, exp_id):
        if exp_id.startswith("E-TEST"):
            pytest.skip("registry-test fixture entry")
        result = get_experiment(exp_id)()
        assert result.experiment_id == exp_id
        assert result.tables, f"{exp_id} produced no tables"
        assert result.render()


class TestKTable:
    def test_paper_k_values(self):
        result = get_experiment("E-KTAB")()
        rows = {(r[0], r[1]): r[2] for r in result.table("k values").rows}
        assert rows[("strip", "5-point")] == 1
        assert rows[("square", "9-point-star")] == 2
        assert rows[("strip", "13-point")] == 2


class TestFigure6:
    def test_error_bounds(self):
        result = get_experiment("E-FIG6")()
        for row in result.table("summary").rows:
            frac_area_ok = row[4]
            frac_perim_ok = row[7]
            assert frac_area_ok >= 0.85
            assert frac_perim_ok >= 0.85


class TestFigure7:
    def test_anchor_row(self):
        result = get_experiment("E-FIG7")()
        anchor = result.table(
            "Section 6.1 anchor: max useful processors on 256x256 squares"
        )
        computed = anchor.column("computed")
        assert computed[0] == pytest.approx(14.0, abs=0.2)
        assert computed[1] == pytest.approx(22.2, abs=0.3)

    def test_no_numeric_disagreement_warnings(self):
        result = get_experiment("E-FIG7")()
        assert not [n for n in result.notes if n.startswith("WARNING")]

    def test_strips_require_larger_problems(self):
        result = get_experiment("E-FIG7")()
        table = result.table("log2(n^2_min) — 5-point")
        sync_strip = table.column("(a) sync strip")
        sync_square = table.column("(c) sync square")
        assert all(st >= sq for st, sq in zip(sync_strip, sync_square))


class TestFigure8:
    def test_exponents(self):
        result = get_experiment("E-FIG8")()
        for stencil in ("5-point", "9-point-box"):
            fits = {
                row[0]: row[1]
                for row in result.table(
                    f"fitted speedup exponents — {stencil}"
                ).rows
            }
            assert fits["squares"] == pytest.approx(1 / 3, abs=1e-3)
            assert fits["strips"] == pytest.approx(1 / 4, abs=1e-3)

    def test_squares_always_beat_strips(self):
        result = get_experiment("E-FIG8")()
        table = result.table("curves — 5-point")
        sq = table.column("speedup (squares)")
        st = table.column("speedup (strips)")
        assert all(a > b for a, b in zip(sq, st))


class TestTable1:
    def test_growth_exponents(self):
        result = get_experiment("E-TAB1")()
        fits = {row[0]: row[1] for row in result.table("fitted growth exponents").rows}
        assert fits["hypercube"] == pytest.approx(1.0, abs=1e-6)
        assert fits["mesh"] == pytest.approx(1.0, abs=1e-6)
        assert 0.85 < fits["switching network"] < 1.0
        assert fits["synchronous bus"] == pytest.approx(1 / 3, abs=1e-3)
        assert fits["asynchronous bus"] == pytest.approx(1 / 3, abs=1e-3)

    def test_async_sync_ratios(self):
        result = get_experiment("E-TAB1")()
        rows = {r[0]: r[1] for r in result.table("async/sync optimal-speedup ratios").rows}
        assert rows["squares"] == pytest.approx(1.5, rel=1e-6)
        assert rows["strips"] == pytest.approx(math.sqrt(2), rel=1e-6)

    def test_architecture_ordering_at_large_n(self):
        """Networks crush buses; async beats sync.  Hypercube-vs-banyan
        absolute ordering is parameter-dependent (Section 7: 'the true
        difference … will not depend on the log factor, but on the
        relative speeds of the communication networks'), so only the
        bus relations are asserted pointwise."""
        result = get_experiment("E-TAB1")()
        table = result.table("optimal speedup vs grid size (square partitions)")
        last = table.rows[-1]
        headers = table.headers
        val = dict(zip(headers, last))
        assert val["hypercube"] > 100 * val["asynchronous bus"]
        assert val["switching network"] > 100 * val["asynchronous bus"]
        assert val["asynchronous bus"] > val["synchronous bus"]
        assert val["mesh"] == pytest.approx(val["hypercube"])


class TestInText:
    def test_squares_beat_strips_in_every_accounting(self):
        result = get_experiment("E-TEXT1")()
        for row in result.table("speedup at N=16").rows:
            _, st_rw, sq_rw, st_ro, sq_ro, st_paper, sq_paper = row
            assert sq_rw > st_rw
            assert sq_ro > st_ro
            assert sq_paper > st_paper

    def test_paper_printed_values(self):
        result = get_experiment("E-TEXT1")()
        rows = {r[0]: r for r in result.table("speedup at N=16").rows}
        # Paper: strips 16/(1+512/n), squares 16/(1+128/n).
        assert rows[1024][5] == pytest.approx(10.67, abs=0.01)
        assert rows[256][6] == pytest.approx(10.67, abs=0.01)
        assert rows[1024][6] == pytest.approx(14.2, abs=0.05)

    def test_flex32_always_all_processors(self):
        result = get_experiment("E-TEXT2")()
        table = result.table("FLEX/32-style bus (c/b = 1000) allocations")
        for row in table.rows:
            assert row[3] in ("all", "one")
            assert row[3] != "interior"

    def test_leverage_factors(self):
        result = get_experiment("E-TEXT3")()
        table = result.table("cycle-time factor after 2x speedup of one component")
        for row in table.rows:
            assert row[2] == pytest.approx(row[3], rel=1e-6)

    def test_async_factors(self):
        result = get_experiment("E-TEXT4")()
        for row in result.table("async/sync ratios").rows:
            assert row[1] == pytest.approx(math.sqrt(2), rel=1e-6)
            assert row[2] == pytest.approx(1.5, rel=1e-6)


class TestScaledAndExtremal:
    def test_hypercube_linearity_spread_is_zero(self):
        result = get_experiment("E-SCAL")()
        spread = result.table("hypercube speedup / n² (constant = exactly linear)")
        assert spread.rows[0][2] == pytest.approx(0.0, abs=1e-12)

    def test_all_extremal(self):
        result = get_experiment("E-EXTREME")()
        table = result.table("best processor count over P in [1, 64], n=64 squares")
        assert all(row[2] == "yes" for row in table.rows)


class TestSimulationValidation:
    def test_rankings_agree_everywhere(self):
        result = get_experiment("E-SIMVAL")()
        table = result.table("validation summary")
        agrees = table.column("ranking agrees")
        best_model = table.column("best P (model)")
        best_sim = table.column("best P (sim)")
        # Rankings must agree, or disagree only between adjacent sweep
        # points (flat optimum region).
        for ok, bm, bs in zip(agrees, best_model, best_sim):
            if ok != "yes":
                assert max(bm, bs) <= 2 * min(bm, bs)

    def test_bus_model_is_upper_envelope(self):
        result = get_experiment("E-SIMVAL")()
        summary = result.table("validation summary")
        for row in summary.rows:
            assert row[2] <= 0.02  # mean relative error <= 0 (+ tolerance)
