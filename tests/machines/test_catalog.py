"""Machine presets: calibration anchors and lookup behaviour."""

import dataclasses

import pytest

from repro.core.minimal_size import max_useful_processors
from repro.core.parameters import Workload
from repro.machines.catalog import (
    BBN_BUTTERFLY,
    DEFAULT_MACHINES,
    FLEX32,
    INTEL_IPSC,
    PAPER_BUS,
    PAPER_BUS_ASYNC,
    by_name,
)
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind


class TestCalibration:
    def test_paper_bus_reproduces_figure7_anchor(self):
        """256x256 squares: 14 processors (5-pt), 22 (9-pt) — Section 6.1."""
        w5 = Workload(n=256, stencil=FIVE_POINT)
        w9 = Workload(n=256, stencil=NINE_POINT_BOX)
        n5 = max_useful_processors(PAPER_BUS, w5, PartitionKind.SQUARE)
        n9 = max_useful_processors(PAPER_BUS, w9, PartitionKind.SQUARE)
        assert int(n5) == 14
        assert int(n9) == 22

    def test_flex32_ratio(self):
        assert FLEX32.c / FLEX32.b == pytest.approx(1000.0)

    def test_sync_async_pair_share_constants(self):
        assert PAPER_BUS.b == PAPER_BUS_ASYNC.b
        assert PAPER_BUS.c == PAPER_BUS_ASYNC.c


class TestLookup:
    def test_by_name_returns_presets(self):
        assert by_name("ipsc") is INTEL_IPSC
        assert by_name("butterfly") is BBN_BUTTERFLY

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="flex32"):
            by_name("cray")

    def test_catalog_is_complete(self):
        assert set(DEFAULT_MACHINES) >= {
            "ipsc",
            "fem",
            "paper-bus",
            "paper-bus-async",
            "flex32",
            "flex32-async",
            "butterfly",
            "rp3",
        }


class TestPresetsAreValues:
    def test_presets_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_BUS.b = 1.0  # type: ignore[misc]

    def test_replace_builds_variants(self):
        faster = dataclasses.replace(PAPER_BUS, b=PAPER_BUS.b / 2)
        assert faster.b == PAPER_BUS.b / 2
        assert faster.volume_mode == PAPER_BUS.volume_mode
