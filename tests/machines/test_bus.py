"""Bus models: the paper's equations (2)-(7), closed forms vs numerics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimize import golden_section_minimize, is_discretely_convex
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.stencils.library import FIVE_POINT, NINE_POINT_STAR
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            SynchronousBus(b=0.0)
        with pytest.raises(InvalidParameterError):
            SynchronousBus(b=1e-6, c=-1.0)
        with pytest.raises(InvalidParameterError):
            SynchronousBus(b=1e-6, volume_mode="telepathy")


class TestSyncEquations:
    """Equation (2): t_cycle = E·A·T + 4·k·b·n³/A + 4·k·c·n (strips, rw)."""

    def test_strip_cycle_time_formula(self):
        bus = SynchronousBus(b=2e-6, c=3e-6)
        w = Workload(n=64, stencil=FIVE_POINT, t_flop=1e-6)
        area = 512.0
        expected = (
            5 * area * 1e-6
            + 4 * 1 * 2e-6 * 64**3 / area
            + 4 * 1 * 3e-6 * 64
        )
        assert bus.cycle_time(w, STRIP, area) == pytest.approx(expected, rel=1e-12)

    def test_square_cycle_time_formula(self):
        bus = SynchronousBus(b=2e-6, c=3e-6)
        w = Workload(n=64, stencil=FIVE_POINT, t_flop=1e-6)
        s = 16.0
        expected = (
            5 * s * s * 1e-6
            + 8 * 1 * 2e-6 * 64**2 / s
            + 8 * 1 * 3e-6 * s
        )
        assert bus.cycle_time(w, SQUARE, s * s) == pytest.approx(expected, rel=1e-12)

    def test_read_only_mode_halves_communication(self):
        rw = SynchronousBus(b=2e-6, c=0.0)
        ro = SynchronousBus(b=2e-6, c=0.0, volume_mode="read_only")
        w = Workload(n=64, stencil=FIVE_POINT)
        area = 512.0
        comp = w.compute_time(area)
        assert ro.cycle_time(w, STRIP, area) - comp == pytest.approx(
            (rw.cycle_time(w, STRIP, area) - comp) / 2.0
        )

    def test_k_two_stencil_doubles_communication(self):
        bus = SynchronousBus(b=2e-6, c=0.0)
        w1 = Workload(n=64, stencil=FIVE_POINT)
        w2 = Workload(n=64, stencil=NINE_POINT_STAR.with_flops(5.0))
        area = 512.0
        comm1 = bus.cycle_time(w1, STRIP, area) - w1.compute_time(area)
        comm2 = bus.cycle_time(w2, STRIP, area) - w2.compute_time(area)
        assert comm2 == pytest.approx(2 * comm1)


class TestSyncOptima:
    @given(
        b=st.floats(min_value=1e-7, max_value=1e-4),
        n_exp=st.integers(min_value=6, max_value=11),
    )
    @settings(max_examples=25, deadline=None)
    def test_strip_closed_form_matches_golden_section(self, b, n_exp):
        bus = SynchronousBus(b=b, c=0.0)
        w = Workload(n=2**n_exp, stencil=FIVE_POINT)
        a_star = bus.optimal_strip_area(w)
        numeric = golden_section_minimize(
            lambda a: bus.cycle_time(w, STRIP, a), 1.0, float(w.grid_points), tol=1e-12
        )
        if 1.0 < a_star < w.grid_points:
            assert numeric.x == pytest.approx(a_star, rel=1e-3)

    @given(
        b=st.floats(min_value=1e-7, max_value=1e-4),
        c=st.floats(min_value=0.0, max_value=1e-4),
    )
    @settings(max_examples=25, deadline=None)
    def test_square_cubic_root_minimizes(self, b, c):
        bus = SynchronousBus(b=b, c=c)
        w = Workload(n=512, stencil=FIVE_POINT)
        s_hat = bus.optimal_square_side(w)
        a_hat = s_hat * s_hat
        if not 1.0 < a_hat < w.grid_points:
            return
        t_opt = bus.cycle_time(w, SQUARE, a_hat)
        for factor in (0.9, 1.1):
            a_near = a_hat * factor
            if 1.0 < a_near < w.grid_points:
                assert bus.cycle_time(w, SQUARE, a_near) >= t_opt - 1e-18

    def test_c_does_not_move_strip_optimum(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        a0 = SynchronousBus(b=2e-6, c=0.0).optimal_strip_area(w)
        a1 = SynchronousBus(b=2e-6, c=1e-3).optimal_strip_area(w)
        assert a0 == a1

    def test_convexity_on_admissible_range(self):
        bus = SynchronousBus(b=6.1e-6, c=1e-6)
        w = Workload(n=128, stencil=FIVE_POINT)
        areas = np.linspace(16, w.grid_points, 400)
        times = [bus.cycle_time(w, SQUARE, a) for a in areas]
        assert is_discretely_convex(times, rel_tol=1e-9)


class TestAsyncEquations:
    """Equation (7): t = t_read + max(t_comp, b·B_total)."""

    def test_cycle_is_max_structure(self):
        bus = AsynchronousBus(b=2e-6, c=0.0)
        w = Workload(n=64, stencil=FIVE_POINT)
        area = 512.0
        read = bus.read_time(w, STRIP, area)
        comp = w.compute_time(area)
        backlog = bus.write_backlog_time(w, STRIP, area)
        assert bus.cycle_time(w, STRIP, area) == pytest.approx(
            read + max(comp, backlog)
        )

    def test_read_time_is_half_sync_ta(self):
        sync = SynchronousBus(b=2e-6, c=3e-6)
        asyn = AsynchronousBus(b=2e-6, c=3e-6)
        w = Workload(n=64, stencil=FIVE_POINT)
        area = 512.0
        sync_ta = sync.cycle_time(w, STRIP, area) - w.compute_time(area)
        assert asyn.read_time(w, STRIP, area) == pytest.approx(sync_ta / 2.0)

    def test_strip_area_ratio_is_sqrt2(self):
        sync = SynchronousBus(b=2e-6, c=0.0)
        asyn = AsynchronousBus(b=2e-6, c=0.0)
        w = Workload(n=256, stencil=FIVE_POINT)
        ratio = sync.optimal_strip_area(w) / asyn.optimal_strip_area(w)
        assert ratio == pytest.approx(math.sqrt(2.0))

    def test_square_side_identical_to_sync(self):
        sync = SynchronousBus(b=2e-6, c=0.0)
        asyn = AsynchronousBus(b=2e-6, c=0.0)
        w = Workload(n=256, stencil=FIVE_POINT)
        assert asyn.optimal_square_side(w) == pytest.approx(
            sync.optimal_square_side(w)
        )

    @given(n_exp=st.integers(min_value=7, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_async_optimum_at_max_crossing(self, n_exp):
        bus = AsynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=2**n_exp, stencil=FIVE_POINT)
        a_star = bus.optimal_strip_area(w)
        comp = w.compute_time(a_star)
        backlog = bus.write_backlog_time(w, STRIP, a_star)
        assert comp == pytest.approx(backlog, rel=1e-9)

    def test_async_beats_sync_everywhere(self):
        sync = SynchronousBus(b=6.1e-6, c=0.0)
        asyn = AsynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=128, stencil=FIVE_POINT)
        for area in (64.0, 256.0, 1024.0, 4096.0):
            assert asyn.cycle_time(w, SQUARE, area) <= sync.cycle_time(
                w, SQUARE, area
            ) + 1e-18


class TestEffectiveDelay:
    def test_contention_grows_linearly_in_processors(self):
        bus = SynchronousBus(b=2e-6, c=1e-6)
        w = Workload(n=64, stencil=FIVE_POINT)
        d1 = bus.effective_word_delay(w, w.grid_points / 4)
        d2 = bus.effective_word_delay(w, w.grid_points / 8)
        assert d2 - 1e-6 == pytest.approx(2 * (d1 - 1e-6))
