"""Banyan network model: log-stage reads, Section-7 cycle times."""

import math

import numpy as np
import pytest

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


class TestValidation:
    def test_rejects_nonpositive_switch_time(self):
        with pytest.raises(InvalidParameterError):
            BanyanNetwork(w=0.0)


class TestStages:
    def test_log_growth(self):
        net = BanyanNetwork(w=1e-7)
        assert net.stages(2.0) == pytest.approx(1.0)
        assert net.stages(64.0) == pytest.approx(6.0)

    def test_single_processor_has_no_stages(self):
        net = BanyanNetwork(w=1e-7)
        assert net.stages(1.0) == 0.0

    def test_read_word_time_is_two_traversals(self):
        net = BanyanNetwork(w=1e-7)
        assert net.read_word_time(16.0) == pytest.approx(2 * 1e-7 * 4)


class TestCycleTime:
    def test_strip_formula(self):
        """t = 4·k·n·w·log2(N) + E·A·T (Section 7)."""
        net = BanyanNetwork(w=1e-7)
        w = Workload(n=64, stencil=FIVE_POINT)
        area = 256.0
        n_procs = w.grid_points / area
        expected = 4 * 1 * 64 * 1e-7 * math.log2(n_procs) + 5 * area * 1e-6
        assert net.cycle_time(w, STRIP, area) == pytest.approx(expected)

    def test_square_formula(self):
        """t = 8·k·s·w·log2(N) + E·s²·T (Section 7)."""
        net = BanyanNetwork(w=1e-7)
        w = Workload(n=64, stencil=FIVE_POINT)
        s = 8.0
        n_procs = w.grid_points / (s * s)
        expected = 8 * 1 * s * 1e-7 * math.log2(n_procs) + 5 * s * s * 1e-6
        assert net.cycle_time(w, SQUARE, s * s) == pytest.approx(expected)

    def test_extremal_allocation_for_realistic_parameters(self):
        """All-processors wins over any interior point (paper's claim)."""
        net = BanyanNetwork(w=2e-7)
        w = Workload(n=64, stencil=FIVE_POINT)
        procs = np.arange(2, w.grid_points + 1, 7, dtype=float)
        times = [net.cycle_time(w, SQUARE, w.grid_points / p) for p in procs]
        assert int(np.argmin(times)) == len(times) - 1

    def test_vectorized_evaluation(self):
        net = BanyanNetwork(w=2e-7)
        w = Workload(n=32, stencil=FIVE_POINT)
        areas = np.array([4.0, 16.0, 64.0])
        times = net.cycle_time(w, SQUARE, areas)
        for a, t in zip(areas, times):
            assert t == pytest.approx(net.cycle_time(w, SQUARE, float(a)))
