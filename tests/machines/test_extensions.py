"""Fully-asynchronous bus and random-mapping hypercube extensions."""

import math

import pytest

from repro.core.parameters import Workload
from repro.core.scaling import fit_scaling_exponent, optimal_speedup_sweep
from repro.core.speedup import optimal_speedup
from repro.machines.bus import AsynchronousBus
from repro.machines.bus_extensions import FullyAsynchronousBus
from repro.machines.hypercube import Hypercube
from repro.machines.mapping import RandomMappingHypercube
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


@pytest.fixture
def big():
    return Workload(n=4096, stencil=FIVE_POINT)


class TestFullyAsyncBus:
    def test_gain_over_async_strips_is_sqrt2(self, big):
        full = FullyAsynchronousBus(b=6.1e-6, c=0.0)
        asyn = AsynchronousBus(b=6.1e-6, c=0.0)
        ratio = (
            optimal_speedup(full, big, STRIP).speedup
            / optimal_speedup(asyn, big, STRIP).speedup
        )
        assert ratio == pytest.approx(math.sqrt(2.0), rel=1e-6)

    def test_gain_over_async_squares_is_cbrt2(self, big):
        """The paper's garbled '126%' = 'a 26%': ratio 2^(1/3) ≈ 1.26."""
        full = FullyAsynchronousBus(b=6.1e-6, c=0.0)
        asyn = AsynchronousBus(b=6.1e-6, c=0.0)
        ratio = (
            optimal_speedup(full, big, SQUARE).speedup
            / optimal_speedup(asyn, big, SQUARE).speedup
        )
        assert ratio == pytest.approx(2.0 ** (1.0 / 3.0), rel=1e-6)

    def test_exponents_unchanged(self):
        full = FullyAsynchronousBus(b=6.1e-6, c=0.0)
        w0 = Workload(n=16, stencil=FIVE_POINT)
        grids = [2**i for i in range(8, 13)]
        for kind, expected in ((STRIP, 0.25), (SQUARE, 1 / 3)):
            n2, sp = optimal_speedup_sweep(full, w0, kind, grids)
            assert fit_scaling_exponent(n2, sp).exponent == pytest.approx(
                expected, abs=1e-4
            )

    def test_optimum_at_max_crossing(self, big):
        full = FullyAsynchronousBus(b=6.1e-6, c=0.0)
        a_star = full.optimal_strip_area(big)
        comp_half = big.compute_time(a_star) / 2.0
        backlog = full.read_backlog_time(big, STRIP, a_star)
        assert comp_half == pytest.approx(backlog, rel=1e-9)

    def test_never_slower_than_async(self, big):
        full = FullyAsynchronousBus(b=6.1e-6, c=0.0)
        asyn = AsynchronousBus(b=6.1e-6, c=0.0)
        for area in (1e4, 1e5, 1e6):
            assert full.cycle_time(big, SQUARE, area) <= asyn.cycle_time(
                big, SQUARE, area
            ) + 1e-18


class TestRandomMapping:
    def test_dilation_grows_with_machine(self):
        rm = RandomMappingHypercube(alpha=1e-6, beta=1e-5)
        assert rm.dilation(4.0) == pytest.approx(1.0)
        assert rm.dilation(256.0) == pytest.approx(4.0)

    def test_embedding_always_wins(self, big):
        rm = RandomMappingHypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        hc = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        for area in (4.0, 64.0, 4096.0):
            assert hc.cycle_time(big, SQUARE, area) <= rm.cycle_time(
                big, SQUARE, area
            ) + 1e-18

    def test_random_mapping_drops_below_linear(self):
        rm = RandomMappingHypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        w0 = Workload(n=16, stencil=FIVE_POINT)
        grids = [2**i for i in range(8, 14)]
        n2, sp = optimal_speedup_sweep(rm, w0, SQUARE, grids)
        exp = fit_scaling_exponent(n2, sp).exponent
        assert 0.8 < exp < 0.999  # banyan-like, no longer linear
