"""Hypercube model: message costs, monotonicity, packetization."""

import numpy as np
import pytest

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.hypercube import Hypercube
from repro.stencils.library import FIVE_POINT, NINE_POINT_STAR
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


@pytest.fixture
def cube():
    return Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)


class TestValidation:
    def test_rejects_free_network(self):
        with pytest.raises(InvalidParameterError, match="free network"):
            Hypercube(alpha=0.0, beta=0.0)

    def test_rejects_negative_costs(self):
        with pytest.raises(InvalidParameterError):
            Hypercube(alpha=-1e-6, beta=1e-5)

    def test_rejects_zero_packet(self):
        with pytest.raises(InvalidParameterError):
            Hypercube(alpha=1e-6, beta=1e-5, packet_words=0)


class TestMessageTime:
    def test_single_packet(self, cube):
        assert cube.message_time(10) == pytest.approx(1e-6 + 1e-5)

    def test_packet_rounding(self, cube):
        # 17 words -> 2 packets
        assert cube.message_time(17) == pytest.approx(2e-6 + 1e-5)

    def test_array_input(self, cube):
        times = cube.message_time(np.array([1.0, 16.0, 17.0]))
        np.testing.assert_allclose(times, [1.1e-5, 1.1e-5, 1.2e-5])


class TestEventsAndVolumes:
    def test_strip_has_four_events(self, cube):
        assert cube.message_events(STRIP) == 4

    def test_square_has_eight_events(self, cube):
        assert cube.message_events(SQUARE) == 8

    def test_strip_volume_is_k_times_n(self, cube):
        w = Workload(n=64, stencil=NINE_POINT_STAR)
        assert cube.words_per_event(w, STRIP, 512.0) == pytest.approx(2 * 64)

    def test_square_volume_is_k_times_side(self, cube):
        w = Workload(n=64, stencil=FIVE_POINT)
        assert cube.words_per_event(w, SQUARE, 256.0) == pytest.approx(16.0)


class TestCycleTime:
    def test_composition(self, cube):
        w = Workload(n=64, stencil=FIVE_POINT)
        area = 256.0
        expected = 5 * 256 * 1e-6 + 8 * cube.message_time(16)
        assert cube.cycle_time(w, SQUARE, area) == pytest.approx(expected)

    def test_monotone_decreasing_in_processors(self, cube):
        """Section 4: t_cycle decreases over P in [2, n^2]."""
        w = Workload(n=32, stencil=FIVE_POINT)
        procs = np.arange(2, 257)
        areas = w.grid_points / procs
        times = np.array([cube.cycle_time(w, SQUARE, a) for a in areas])
        assert np.all(np.diff(times) <= 1e-15)

    def test_one_processor_beats_all_when_network_is_terrible(self):
        slow = Hypercube(alpha=1.0, beta=10.0)  # absurdly slow network
        w = Workload(n=16, stencil=FIVE_POINT)
        serial = w.serial_time()
        spread = slow.cycle_time(w, SQUARE, 1.0)
        assert serial < spread

    def test_area_validation(self, cube):
        w = Workload(n=16, stencil=FIVE_POINT)
        with pytest.raises(InvalidParameterError):
            cube.cycle_time(w, SQUARE, 0.0)
        with pytest.raises(InvalidParameterError):
            cube.cycle_time(w, SQUARE, 300.0)  # exceeds n^2
