"""Architecture base behaviour shared by all machines."""

import numpy as np
import pytest

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import validate_area
from repro.machines.mesh import MeshGrid
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind


@pytest.fixture
def w():
    return Workload(n=32, stencil=FIVE_POINT)


class TestValidateArea:
    def test_accepts_valid_scalar_and_array(self, w):
        validate_area(w, 16.0)
        validate_area(w, np.array([1.0, 512.0, 1024.0]))

    def test_rejects_nonpositive(self, w):
        with pytest.raises(InvalidParameterError):
            validate_area(w, 0.0)
        with pytest.raises(InvalidParameterError):
            validate_area(w, np.array([4.0, -1.0]))

    def test_rejects_overfull(self, w):
        with pytest.raises(InvalidParameterError, match="exceeds"):
            validate_area(w, 1025.0)


class TestCycleTimeAllProcessors:
    def test_one_processor_is_serial(self, w, mesh=MeshGrid(alpha=1e-6, beta=1e-5)):
        assert mesh.cycle_time_all_processors(
            w, PartitionKind.SQUARE, 1
        ) == pytest.approx(w.serial_time())

    def test_two_processors_pay_communication(self, w):
        mesh = MeshGrid(alpha=1e-6, beta=1e-5)
        t2 = mesh.cycle_time_all_processors(w, PartitionKind.SQUARE, 2)
        assert t2 > w.serial_time() / 2

    def test_rejects_nonpositive_processors(self, w):
        mesh = MeshGrid(alpha=1e-6, beta=1e-5)
        with pytest.raises(InvalidParameterError):
            mesh.cycle_time_all_processors(w, PartitionKind.SQUARE, 0)


class TestMeshInheritance:
    def test_mesh_is_monotone_and_scalable(self):
        mesh = MeshGrid(alpha=1e-6, beta=1e-5)
        assert mesh.monotone_in_processors
        assert mesh.scalable
        assert mesh.name == "mesh"

    def test_mesh_matches_hypercube_cost_model(self, w):
        from repro.machines.hypercube import Hypercube

        mesh = MeshGrid(alpha=1e-6, beta=1e-5, packet_words=16)
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        a = 64.0
        assert mesh.cycle_time(w, PartitionKind.SQUARE, a) == pytest.approx(
            cube.cycle_time(w, PartitionKind.SQUARE, a)
        )

    def test_convergence_hardware_flag(self):
        assert MeshGrid(alpha=1e-6, beta=1e-5).convergence_hardware
        bare = MeshGrid(alpha=1e-6, beta=1e-5, convergence_hardware=False)
        assert not bare.convergence_hardware
