"""Hardware-leverage factors (Section 6.1's closed-form expectations)."""

import math

import pytest

from repro.core.leverage import leverage_factor, leverage_report
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


@pytest.fixture
def bus():
    return SynchronousBus(b=6.1e-6, c=0.0)


@pytest.fixture
def big():
    return Workload(n=4096, stencil=FIVE_POINT)


class TestPaperFactors:
    def test_strip_bus_doubling(self, bus, big):
        assert leverage_factor(bus, big, STRIP, "b") == pytest.approx(
            1 / math.sqrt(2), rel=1e-9
        )

    def test_strip_flop_doubling(self, bus, big):
        assert leverage_factor(bus, big, STRIP, "t_flop") == pytest.approx(
            1 / math.sqrt(2), rel=1e-9
        )

    def test_square_bus_doubling_is_63_percent(self, bus, big):
        assert leverage_factor(bus, big, SQUARE, "b") == pytest.approx(
            0.5 ** (2 / 3), rel=1e-9
        )

    def test_square_flop_doubling_is_79_percent(self, bus, big):
        assert leverage_factor(bus, big, SQUARE, "t_flop") == pytest.approx(
            0.5 ** (1 / 3), rel=1e-9
        )


class TestCDominance:
    def test_bus_speed_useless_when_c_dominates(self):
        heavy = SynchronousBus(b=0.5e-6, c=500e-6)
        w = Workload(n=1024, stencil=FIVE_POINT)
        factor_b = leverage_factor(heavy, w, STRIP, "b")
        factor_c = leverage_factor(heavy, w, STRIP, "c")
        assert factor_b > 0.95  # barely helps
        assert factor_c < factor_b  # c is the lever


class TestGenericMachines:
    def test_hypercube_beta_leverage(self):
        cube = Hypercube(alpha=1e-6, beta=1e-3, packet_words=16)
        w = Workload(n=256, stencil=FIVE_POINT)
        factor = leverage_factor(cube, w, SQUARE, "beta", max_processors=256)
        assert 0.5 < factor < 1.0

    def test_unknown_parameter_raises(self, bus, big):
        with pytest.raises(InvalidParameterError, match="no tunable"):
            leverage_factor(bus, big, STRIP, "alpha")

    def test_nonpositive_factor_rejected(self, bus, big):
        with pytest.raises(InvalidParameterError):
            leverage_factor(bus, big, STRIP, "b", factor=0.0)


class TestReport:
    def test_report_skips_missing_and_zero_parameters(self, bus, big):
        report = leverage_report(bus, big, STRIP)
        # c == 0 on this bus: speeding it up is skipped; alpha not a field.
        assert set(report.factors) == {"b", "t_flop"}
        assert report.baseline_cycle_time > 0

    def test_report_values_below_one(self, bus, big):
        report = leverage_report(bus, big, SQUARE)
        assert all(0 < f < 1 for f in report.factors.values())
