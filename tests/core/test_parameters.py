"""Workload parameter validation and derived quantities."""

import pytest

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.stencils.library import FIVE_POINT, NINE_POINT_STAR
from repro.stencils.perimeter import PartitionKind


class TestValidation:
    def test_rejects_tiny_grid(self):
        with pytest.raises(InvalidParameterError):
            Workload(n=0, stencil=FIVE_POINT)

    def test_rejects_nonpositive_flop_time(self):
        with pytest.raises(InvalidParameterError):
            Workload(n=8, stencil=FIVE_POINT, t_flop=0.0)


class TestDerived:
    def test_grid_points(self):
        assert Workload(n=17, stencil=FIVE_POINT).grid_points == 289

    def test_compute_time_is_eat(self):
        w = Workload(n=8, stencil=FIVE_POINT, t_flop=2e-6)
        assert w.compute_time(10.0) == pytest.approx(5 * 10 * 2e-6)

    def test_compute_time_rejects_nonpositive_area(self):
        w = Workload(n=8, stencil=FIVE_POINT)
        with pytest.raises(InvalidParameterError):
            w.compute_time(0.0)

    def test_serial_time_uses_whole_grid(self):
        w = Workload(n=8, stencil=FIVE_POINT)
        assert w.serial_time() == pytest.approx(w.compute_time(64))

    def test_k_dispatches_on_kind(self):
        w = Workload(n=8, stencil=NINE_POINT_STAR)
        assert w.k(PartitionKind.STRIP) == 2
        assert w.k(PartitionKind.SQUARE) == 2


class TestVariants:
    def test_with_n(self):
        w = Workload(n=8, stencil=FIVE_POINT)
        assert w.with_n(16).n == 16
        assert w.with_n(16).stencil is FIVE_POINT

    def test_with_stencil(self):
        w = Workload(n=8, stencil=FIVE_POINT)
        assert w.with_stencil(NINE_POINT_STAR).stencil is NINE_POINT_STAR

    def test_with_t_flop(self):
        w = Workload(n=8, stencil=FIVE_POINT)
        assert w.with_t_flop(3e-6).t_flop == 3e-6

    def test_workload_is_frozen(self):
        w = Workload(n=8, stencil=FIVE_POINT)
        with pytest.raises(Exception):
            w.n = 9  # type: ignore[misc]
