"""Minimal problem size / Figure-7 thresholds: closed form vs optimizer."""

import pytest

from repro.core.minimal_size import (
    max_useful_processors,
    minimal_grid_side,
    minimal_grid_size_numeric,
    minimal_problem_size,
    uses_all_processors,
)
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.catalog import PAPER_BUS, PAPER_BUS_ASYNC
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


class TestAnchors:
    """Section 6.1: 256x256 squares -> 14 procs (5-pt) / 22 procs (9-pt)."""

    def test_five_point_anchor(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        assert max_useful_processors(PAPER_BUS, w, SQUARE) == pytest.approx(
            14.0, abs=0.1
        )

    def test_nine_point_anchor(self):
        w = Workload(n=256, stencil=NINE_POINT_BOX)
        assert max_useful_processors(PAPER_BUS, w, SQUARE) == pytest.approx(
            22.2, abs=0.2
        )

    def test_uses_all_processors_consistent_with_anchor(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        assert uses_all_processors(PAPER_BUS, w, SQUARE, 14)
        assert not uses_all_processors(PAPER_BUS, w, SQUARE, 15)


class TestScalingLaws:
    def test_strips_quadratic_in_n(self):
        r = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, 8, STRIP) / minimal_grid_side(
            PAPER_BUS, 1, 5.0, 1e-6, 4, STRIP
        )
        assert r == pytest.approx(4.0)

    def test_squares_three_halves_in_n(self):
        r = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, 16, SQUARE) / minimal_grid_side(
            PAPER_BUS, 1, 5.0, 1e-6, 4, SQUARE
        )
        assert r == pytest.approx(8.0)

    def test_async_strips_halve_the_threshold(self):
        sync = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, 8, STRIP)
        asyn = minimal_grid_side(PAPER_BUS_ASYNC, 1, 5.0, 1e-6, 8, STRIP)
        assert asyn == pytest.approx(sync / 2.0)

    def test_async_squares_match_sync(self):
        sync = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, 8, SQUARE)
        asyn = minimal_grid_side(PAPER_BUS_ASYNC, 1, 5.0, 1e-6, 8, SQUARE)
        assert asyn == pytest.approx(sync)

    def test_strips_always_need_bigger_problems(self):
        for n_procs in (4, 8, 16, 24):
            strip = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, n_procs, STRIP)
            square = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, n_procs, SQUARE)
            assert strip >= square

    def test_minimal_problem_size_is_squared_side(self):
        w = Workload(n=2, stencil=FIVE_POINT)
        side = minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, 8, STRIP)
        assert minimal_problem_size(PAPER_BUS, w, STRIP, 8) == pytest.approx(side**2)


class TestNumericAgreement:
    @pytest.mark.parametrize("n_procs", [2, 4, 8])
    @pytest.mark.parametrize("kind", [STRIP, SQUARE], ids=str)
    def test_closed_form_matches_golden_section(self, n_procs, kind):
        w = Workload(n=2, stencil=FIVE_POINT)
        closed = minimal_grid_side(
            PAPER_BUS, 1, FIVE_POINT.flops_per_point, w.t_flop, n_procs, kind
        )
        numeric = minimal_grid_size_numeric(PAPER_BUS, w, kind, n_procs)
        assert abs(numeric - closed) <= max(2.0, 0.02 * closed)


class TestValidation:
    def test_rejects_nonpositive_processors(self):
        with pytest.raises(InvalidParameterError):
            minimal_grid_side(PAPER_BUS, 1, 5.0, 1e-6, 0, STRIP)
        w = Workload(n=8, stencil=FIVE_POINT)
        with pytest.raises(InvalidParameterError):
            uses_all_processors(PAPER_BUS, w, STRIP, 0)
