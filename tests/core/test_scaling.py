"""Scaling laws: Table I exponents, scaled speedup, exponent fitting."""

import math

import numpy as np
import pytest

from repro.core.parameters import Workload
from repro.core.scaling import (
    fit_scaling_exponent,
    optimal_speedup_sweep,
    scaled_speedup_banyan,
    scaled_speedup_hypercube,
    table1_optimal_speedup,
)
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

GRIDS = [2**i for i in range(8, 14)]


class TestExponentFit:
    def test_pure_power_law_recovered(self):
        n2 = np.array([10.0, 100.0, 1000.0, 10000.0])
        fit = fit_scaling_exponent(n2, 3.0 * n2**0.37)
        assert fit.exponent == pytest.approx(0.37, abs=1e-12)
        assert fit.residual == pytest.approx(0.0, abs=1e-20)

    def test_needs_two_points(self):
        with pytest.raises(InvalidParameterError):
            fit_scaling_exponent([4.0], [2.0])


class TestTableIExponents:
    """The paper's Table I growth laws, recovered numerically."""

    def test_sync_bus_squares_one_third(self):
        w = Workload(n=16, stencil=FIVE_POINT)
        n2, sp = optimal_speedup_sweep(
            SynchronousBus(b=6.1e-6, c=0.0), w, PartitionKind.SQUARE, GRIDS
        )
        assert fit_scaling_exponent(n2, sp).exponent == pytest.approx(1 / 3, abs=1e-6)

    def test_sync_bus_strips_one_quarter(self):
        w = Workload(n=16, stencil=FIVE_POINT)
        n2, sp = optimal_speedup_sweep(
            SynchronousBus(b=6.1e-6, c=0.0), w, PartitionKind.STRIP, GRIDS
        )
        assert fit_scaling_exponent(n2, sp).exponent == pytest.approx(1 / 4, abs=1e-6)

    def test_async_bus_same_exponents(self):
        w = Workload(n=16, stencil=FIVE_POINT)
        bus = AsynchronousBus(b=6.1e-6, c=0.0)
        n2, sq = optimal_speedup_sweep(bus, w, PartitionKind.SQUARE, GRIDS)
        _, st = optimal_speedup_sweep(bus, w, PartitionKind.STRIP, GRIDS)
        assert fit_scaling_exponent(n2, sq).exponent == pytest.approx(1 / 3, abs=1e-6)
        assert fit_scaling_exponent(n2, st).exponent == pytest.approx(1 / 4, abs=1e-6)

    def test_hypercube_linear(self):
        w = Workload(n=16, stencil=FIVE_POINT)
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        n2, sp = optimal_speedup_sweep(cube, w, PartitionKind.SQUARE, GRIDS)
        assert fit_scaling_exponent(n2, sp).exponent == pytest.approx(1.0, abs=1e-9)

    def test_banyan_just_below_linear(self):
        w = Workload(n=16, stencil=FIVE_POINT)
        net = BanyanNetwork(w=2e-7)
        n2, sp = optimal_speedup_sweep(net, w, PartitionKind.SQUARE, GRIDS)
        exp = fit_scaling_exponent(n2, sp).exponent
        assert 0.85 < exp < 1.0  # n²/log n: strictly sublinear


class TestScaledSpeedup:
    def test_hypercube_exactly_linear_in_n2(self):
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        s1 = scaled_speedup_hypercube(cube, FIVE_POINT, 1e-6, 128, 64.0)
        s2 = scaled_speedup_hypercube(cube, FIVE_POINT, 1e-6, 256, 64.0)
        assert s2 / s1 == pytest.approx(4.0, rel=1e-12)

    def test_banyan_pays_log_factor(self):
        net = BanyanNetwork(w=2e-7)
        cube_like = scaled_speedup_banyan(net, FIVE_POINT, 1e-6, 256, 64.0)
        bigger = scaled_speedup_banyan(net, FIVE_POINT, 1e-6, 512, 64.0)
        # Sublinear: less than 4x for a 4x problem growth.
        assert 1.0 < bigger / cube_like < 4.0

    def test_validation(self):
        cube = Hypercube(alpha=1e-6, beta=1e-5)
        with pytest.raises(InvalidParameterError):
            scaled_speedup_hypercube(cube, FIVE_POINT, 1e-6, 128, 0.0)
        with pytest.raises(InvalidParameterError):
            scaled_speedup_banyan(BanyanNetwork(w=1e-7), FIVE_POINT, 1e-6, 4, 64.0)


class TestTable1Helper:
    def test_monotone_machines_use_one_point_per_processor(self):
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        w = Workload(n=64, stencil=FIVE_POINT)
        expected = w.serial_time() / cube.cycle_time(w, PartitionKind.SQUARE, 1.0)
        assert table1_optimal_speedup(cube, w) == pytest.approx(expected)

    def test_bus_uses_interior_optimum(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=1024, stencil=FIVE_POINT)
        from repro.core.speedup import optimal_speedup

        assert table1_optimal_speedup(bus, w) == pytest.approx(
            optimal_speedup(bus, w, PartitionKind.SQUARE).speedup
        )
