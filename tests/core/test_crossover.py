"""Crossover analysis: strips vs squares, architecture vs architecture."""

import pytest

from repro.core.crossover import (
    find_crossover_grid_size,
    speedup_ratio,
    strip_square_ratio,
)
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import SynchronousBus
from repro.stencils.library import FIVE_POINT


@pytest.fixture
def bus():
    return SynchronousBus(b=6.1e-6, c=0.0)


class TestRatios:
    def test_squares_dominate_strips(self, bus):
        for n in (256, 1024, 4096):
            w = Workload(n=n, stencil=FIVE_POINT)
            assert strip_square_ratio(bus, w) < 1.0

    def test_strip_square_gap_widens_with_n(self, bus):
        r_small = strip_square_ratio(bus, Workload(n=256, stencil=FIVE_POINT))
        r_big = strip_square_ratio(bus, Workload(n=16384, stencil=FIVE_POINT))
        assert r_big < r_small

    def test_banyan_beats_bus_for_large_problems(self, bus):
        net = BanyanNetwork(w=2e-7)
        w = Workload(n=4096, stencil=FIVE_POINT)
        from repro.stencils.perimeter import PartitionKind

        assert speedup_ratio(net, bus, w, PartitionKind.SQUARE) > 1.0


class TestCrossoverSearch:
    def test_threshold_found_monotone_metric(self):
        result = find_crossover_grid_size(lambda n: n / 100.0, threshold=1.0)
        assert result.n == 100
        assert result.value_before < 1.0 <= result.value_after

    def test_already_above_threshold(self):
        result = find_crossover_grid_size(lambda n: 5.0, threshold=1.0, n_lo=4)
        assert result.n == 4

    def test_never_reached_raises(self):
        with pytest.raises(InvalidParameterError, match="never reaches"):
            find_crossover_grid_size(lambda n: 0.0, threshold=1.0, n_hi=128)

    def test_invalid_range(self):
        with pytest.raises(InvalidParameterError):
            find_crossover_grid_size(lambda n: n, n_lo=10, n_hi=10)

    def test_banyan_bus_crossover_is_finite(self, bus):
        """The banyan overtakes the bus at some modest grid size."""
        net = BanyanNetwork(w=2e-7)
        from repro.stencils.perimeter import PartitionKind

        def metric(n: int) -> float:
            w = Workload(n=n, stencil=FIVE_POINT)
            return speedup_ratio(net, bus, w, PartitionKind.SQUARE)

        result = find_crossover_grid_size(metric, threshold=1.0, n_lo=2, n_hi=4096)
        assert 2 <= result.n <= 4096
