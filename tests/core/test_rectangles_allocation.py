"""Working-rectangle-constrained allocation: realizable near the ideal."""

import pytest

from repro.core.parameters import Workload
from repro.core.rectangles_allocation import optimize_with_working_rectangles
from repro.errors import InvalidParameterError
from repro.machines.bus import SynchronousBus
from repro.machines.catalog import PAPER_BUS
from repro.stencils.library import FIVE_POINT


class TestRealizableOptimum:
    def test_overhead_is_small(self):
        """Figure 6's promise: costs 'not far different' from achievable."""
        for n in (128, 256, 512):
            w = Workload(n=n, stencil=FIVE_POINT)
            res = optimize_with_working_rectangles(PAPER_BUS, w)
            assert 0.0 <= res.relative_overhead < 0.05

    def test_rectangle_tiles_grid(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        res = optimize_with_working_rectangles(PAPER_BUS, w)
        assert 256 % res.rectangle.width == 0
        assert res.rectangle.perimeter_excess() <= 0.05

    def test_speedup_consistent(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        res = optimize_with_working_rectangles(PAPER_BUS, w)
        assert res.speedup == pytest.approx(w.serial_time() / res.cycle_time)

    def test_processor_cap_respected(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        res = optimize_with_working_rectangles(PAPER_BUS, w, max_processors=8)
        assert res.processors <= 8 + 1e-9

    def test_neighbourhood_validation(self):
        w = Workload(n=64, stencil=FIVE_POINT)
        with pytest.raises(InvalidParameterError):
            optimize_with_working_rectangles(PAPER_BUS, w, neighbourhood=-1)

    def test_wider_neighbourhood_never_worse(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        narrow = optimize_with_working_rectangles(PAPER_BUS, w, neighbourhood=0)
        wide = optimize_with_working_rectangles(PAPER_BUS, w, neighbourhood=8)
        assert wide.cycle_time <= narrow.cycle_time + 1e-18
