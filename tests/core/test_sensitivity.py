"""Elasticities of the optimized cycle time."""

import pytest

from repro.core.parameters import Workload
from repro.core.sensitivity import elasticity, elasticity_profile
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import SynchronousBus
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


@pytest.fixture
def bus():
    return SynchronousBus(b=6.1e-6, c=0.0)


@pytest.fixture
def big():
    return Workload(n=8192, stencil=FIVE_POINT)


class TestClosedFormElasticities:
    def test_strip_halves(self, bus, big):
        assert elasticity(bus, big, STRIP, "b") == pytest.approx(0.5, abs=1e-4)
        assert elasticity(bus, big, STRIP, "t_flop") == pytest.approx(0.5, abs=1e-4)

    def test_square_two_thirds_one_third(self, bus, big):
        assert elasticity(bus, big, SQUARE, "b") == pytest.approx(2 / 3, abs=1e-4)
        assert elasticity(bus, big, SQUARE, "t_flop") == pytest.approx(
            1 / 3, abs=1e-4
        )

    def test_consistent_with_leverage_doubling(self, bus, big):
        """ε ≈ log2(1/leverage-factor) for a pure power law."""
        import math

        from repro.core.leverage import leverage_factor

        eps = elasticity(bus, big, SQUARE, "b")
        factor = leverage_factor(bus, big, SQUARE, "b")
        assert eps == pytest.approx(-math.log2(factor), abs=1e-3)


class TestHomogeneity:
    def test_bus_elasticities_sum_to_one(self, big):
        """t* is degree-1 homogeneous in (b, c, T_fp)."""
        bus = SynchronousBus(b=6.1e-6, c=2e-6)
        profile = elasticity_profile(bus, big, STRIP)
        assert profile.total() == pytest.approx(1.0, abs=1e-3)

    def test_banyan_homogeneity(self, big):
        net = BanyanNetwork(w=2e-7)
        profile = elasticity_profile(net, big, SQUARE)
        assert profile.total() == pytest.approx(1.0, abs=1e-3)

    def test_dominant_parameter_squares_is_bus(self, bus, big):
        profile = elasticity_profile(bus, big, SQUARE)
        assert profile.dominant() == "b"


class TestValidation:
    def test_step_bounds(self, bus, big):
        with pytest.raises(InvalidParameterError):
            elasticity(bus, big, STRIP, "b", step=0.6)

    def test_unknown_parameter(self, bus, big):
        with pytest.raises(InvalidParameterError):
            elasticity(bus, big, STRIP, "alpha")
