"""Optimal processor allocation: regimes, caps, integrality."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import admissible_area_range, optimize_allocation
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


class TestAdmissibleRange:
    def test_strip_floor_is_one_row(self):
        w = Workload(n=32, stencil=FIVE_POINT)
        lo, hi = admissible_area_range(w, STRIP, None)
        assert lo == 32.0
        assert hi == 1024.0

    def test_square_floor_is_one_point(self):
        w = Workload(n=32, stencil=FIVE_POINT)
        lo, _ = admissible_area_range(w, SQUARE, None)
        assert lo == 1.0

    def test_cap_raises_floor(self):
        w = Workload(n=32, stencil=FIVE_POINT)
        lo, _ = admissible_area_range(w, SQUARE, 16)
        assert lo == 64.0

    def test_rejects_bad_cap(self):
        w = Workload(n=32, stencil=FIVE_POINT)
        with pytest.raises(InvalidParameterError):
            admissible_area_range(w, SQUARE, 0.5)


class TestRegimes:
    def test_monotone_machine_uses_all(self):
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        w = Workload(n=64, stencil=FIVE_POINT)
        alloc = optimize_allocation(cube, w, SQUARE, max_processors=16)
        assert alloc.regime == "all"
        assert alloc.processors == pytest.approx(16.0)

    def test_terrible_network_falls_back_to_one(self):
        slow = Hypercube(alpha=1.0, beta=10.0)
        w = Workload(n=16, stencil=FIVE_POINT)
        alloc = optimize_allocation(slow, w, SQUARE, max_processors=16)
        assert alloc.regime == "one"
        assert alloc.speedup == 1.0
        assert alloc.efficiency == 1.0

    def test_bus_interior_optimum(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=256, stencil=FIVE_POINT)
        alloc = optimize_allocation(bus, w, SQUARE, max_processors=1000)
        assert alloc.regime == "interior"
        assert 1.0 < alloc.processors < 1000.0
        # The interior optimum is the closed-form one.
        assert alloc.area == pytest.approx(
            bus.optimal_square_side(w) ** 2, rel=1e-9
        )

    def test_small_cap_binds(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=256, stencil=FIVE_POINT)
        alloc = optimize_allocation(bus, w, SQUARE, max_processors=8)
        assert alloc.regime == "all"
        assert alloc.processors == pytest.approx(8.0)

    def test_speedup_consistency(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=256, stencil=FIVE_POINT)
        alloc = optimize_allocation(bus, w, SQUARE, max_processors=16)
        assert alloc.speedup == pytest.approx(w.serial_time() / alloc.cycle_time)
        assert alloc.efficiency == pytest.approx(alloc.speedup / alloc.processors)


class TestIntegrality:
    def test_strip_areas_are_whole_rows(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=100, stencil=FIVE_POINT)
        alloc = optimize_allocation(bus, w, STRIP, integer=True)
        assert alloc.area % w.n == pytest.approx(0.0, abs=1e-9)

    def test_square_processor_counts_are_integers(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=100, stencil=FIVE_POINT)
        alloc = optimize_allocation(bus, w, SQUARE, integer=True)
        assert alloc.processors == pytest.approx(round(alloc.processors), abs=1e-6)

    def test_integer_never_beats_continuous(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=100, stencil=FIVE_POINT)
        continuous = optimize_allocation(bus, w, STRIP)
        integral = optimize_allocation(bus, w, STRIP, integer=True)
        assert integral.cycle_time >= continuous.cycle_time - 1e-18

    @given(n=st.integers(min_value=16, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_integer_strip_brackets_continuous(self, n):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        w = Workload(n=n, stencil=FIVE_POINT)
        continuous = optimize_allocation(bus, w, STRIP)
        integral = optimize_allocation(bus, w, STRIP, integer=True)
        if continuous.regime == "interior":
            rows_cont = continuous.area / n
            rows_int = integral.area / n
            assert abs(rows_int - rows_cont) <= 1.0 + 1e-9


class TestOneProcessorAlwaysConsidered:
    @given(b_exp=st.integers(min_value=-7, max_value=-3))
    @settings(max_examples=15, deadline=None)
    def test_never_worse_than_serial(self, b_exp):
        bus = SynchronousBus(b=10.0**b_exp, c=0.0)
        w = Workload(n=64, stencil=FIVE_POINT)
        alloc = optimize_allocation(bus, w, SQUARE, max_processors=64)
        assert alloc.cycle_time <= w.serial_time() + 1e-18
        assert alloc.speedup >= 1.0
