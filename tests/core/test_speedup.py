"""Speedup laws: closed forms, fixed-machine limits, paper ratios."""

import math

import numpy as np
import pytest

from repro.core.parameters import Workload
from repro.core.speedup import (
    closed_form_optimal_speedup_async_bus,
    closed_form_optimal_speedup_sync_bus,
    fixed_machine_speedup,
    optimal_speedup,
    speedup_at_processors,
    speedup_curve,
)
from repro.errors import InvalidParameterError
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


class TestBasics:
    def test_one_processor_speedup_is_one(self, sync_bus, workload_256):
        assert speedup_at_processors(sync_bus, workload_256, SQUARE, 1) == 1.0

    def test_rejects_sub_one(self, sync_bus, workload_256):
        with pytest.raises(InvalidParameterError):
            speedup_at_processors(sync_bus, workload_256, SQUARE, 0.5)

    def test_curve_matches_scalar(self, sync_bus, workload_256):
        procs = np.array([1.0, 4.0, 16.0])
        curve = speedup_curve(sync_bus, workload_256, SQUARE, procs)
        for p, s in zip(procs, curve):
            assert s == pytest.approx(
                speedup_at_processors(sync_bus, workload_256, SQUARE, float(p))
            )


class TestFixedMachineLimit:
    """The 'folk theorem': speedup -> N as the problem grows (Section 1)."""

    @pytest.mark.parametrize("kind", [STRIP, SQUARE], ids=str)
    def test_speedup_approaches_n(self, sync_bus, kind):
        n_procs = 16
        speedups = [
            fixed_machine_speedup(
                sync_bus, Workload(n=n, stencil=FIVE_POINT), kind, n_procs
            )
            for n in (256, 1024, 4096, 16384)
        ]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 0.9 * n_procs
        assert all(s < n_procs for s in speedups)


class TestClosedForms:
    def test_sync_strip_matches_numeric(self, sync_bus, workload_big):
        closed = closed_form_optimal_speedup_sync_bus(sync_bus, workload_big, STRIP)
        numeric = optimal_speedup(sync_bus, workload_big, STRIP).speedup
        assert closed == pytest.approx(numeric, rel=1e-9)

    def test_sync_square_matches_numeric(self, sync_bus, workload_big):
        closed = closed_form_optimal_speedup_sync_bus(sync_bus, workload_big, SQUARE)
        numeric = optimal_speedup(sync_bus, workload_big, SQUARE).speedup
        assert closed == pytest.approx(numeric, rel=1e-9)

    def test_async_strip_matches_numeric(self, async_bus, workload_big):
        closed = closed_form_optimal_speedup_async_bus(async_bus, workload_big, STRIP)
        numeric = optimal_speedup(async_bus, workload_big, STRIP).speedup
        assert closed == pytest.approx(numeric, rel=1e-9)

    def test_async_square_matches_numeric(self, async_bus, workload_big):
        closed = closed_form_optimal_speedup_async_bus(async_bus, workload_big, SQUARE)
        numeric = optimal_speedup(async_bus, workload_big, SQUARE).speedup
        assert closed == pytest.approx(numeric, rel=1e-9)

    def test_sync_square_closed_form_requires_c_zero(self, workload_big):
        bus = SynchronousBus(b=1e-6, c=1e-6)
        with pytest.raises(InvalidParameterError, match="c = 0"):
            closed_form_optimal_speedup_sync_bus(bus, workload_big, SQUARE)

    def test_strip_closed_form_supports_c(self, workload_big):
        bus = SynchronousBus(b=1e-6, c=1e-5)
        closed = closed_form_optimal_speedup_sync_bus(bus, workload_big, STRIP)
        numeric = optimal_speedup(bus, workload_big, STRIP).speedup
        assert closed == pytest.approx(numeric, rel=1e-6)


class TestPaperRatios:
    def test_async_over_sync_strip_is_sqrt2(self, sync_bus, async_bus, workload_big):
        s = closed_form_optimal_speedup_sync_bus(sync_bus, workload_big, STRIP)
        a = closed_form_optimal_speedup_async_bus(async_bus, workload_big, STRIP)
        assert a / s == pytest.approx(math.sqrt(2.0), rel=1e-12)

    def test_async_over_sync_square_is_1_5(self, sync_bus, async_bus, workload_big):
        s = closed_form_optimal_speedup_sync_bus(sync_bus, workload_big, SQUARE)
        a = closed_form_optimal_speedup_async_bus(async_bus, workload_big, SQUARE)
        assert a / s == pytest.approx(1.5, rel=1e-9)

    def test_squares_beat_strips(self, sync_bus, workload_big):
        sq = optimal_speedup(sync_bus, workload_big, SQUARE).speedup
        st = optimal_speedup(sync_bus, workload_big, STRIP).speedup
        assert sq > st

    def test_communication_twice_computation_at_square_optimum(
        self, sync_bus, workload_big
    ):
        """Section 6.1: at the c=0 square optimum comm = 2 x comp."""
        s_hat = sync_bus.optimal_square_side(workload_big)
        comp = workload_big.compute_time(s_hat**2)
        total = sync_bus.cycle_time(workload_big, SQUARE, s_hat**2)
        assert (total - comp) / comp == pytest.approx(2.0, rel=1e-9)


class TestOptimalSpeedupResult:
    def test_unlimited_exceeds_capped(self, sync_bus, workload_big):
        free = optimal_speedup(sync_bus, workload_big, SQUARE).speedup
        capped = optimal_speedup(sync_bus, workload_big, SQUARE, 16).speedup
        assert free > capped

    def test_regime_reported(self, sync_bus, workload_256):
        res = optimal_speedup(sync_bus, workload_256, SQUARE, max_processors=8)
        assert res.regime == "all"
