"""Numeric optimization utilities: golden section, bracketing, convexity."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimize import (
    bracketing_integers,
    brute_force_minimize,
    golden_section_minimize,
    is_discretely_convex,
)
from repro.errors import InvalidParameterError


class TestGoldenSection:
    def test_parabola(self):
        res = golden_section_minimize(lambda x: (x - 3.0) ** 2, 0.0, 10.0)
        assert res.x == pytest.approx(3.0, abs=1e-6)
        assert res.value == pytest.approx(0.0, abs=1e-10)

    def test_boundary_minimum_left(self):
        res = golden_section_minimize(lambda x: x, 2.0, 5.0)
        assert res.x == pytest.approx(2.0)

    def test_boundary_minimum_right(self):
        res = golden_section_minimize(lambda x: -x, 2.0, 5.0)
        assert res.x == pytest.approx(5.0)

    def test_invalid_interval(self):
        with pytest.raises(InvalidParameterError):
            golden_section_minimize(lambda x: x, 5.0, 2.0)

    @given(
        center=st.floats(min_value=-50, max_value=50),
        scale=st.floats(min_value=0.1, max_value=10),
    )
    @settings(max_examples=40)
    def test_convex_property(self, center, scale):
        """For f convex the result is within tolerance of the true optimum."""
        f = lambda x: scale * (x - center) ** 2 + 1.0
        res = golden_section_minimize(f, -100.0, 100.0)
        assert f(res.x) <= f(center) + 1e-6 * scale * 100


class TestBruteForce:
    def test_picks_minimum(self):
        res = brute_force_minimize(lambda x: abs(x - 4.2), [1.0, 4.0, 5.0])
        assert res.x == 4.0

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            brute_force_minimize(lambda x: x, [])

    def test_single_candidate_returned_as_is(self):
        best = brute_force_minimize(lambda x: x * x, [3.0])
        assert (best.x, best.value) == (3.0, 9.0)

    def test_nan_values_are_skipped(self):
        f = lambda x: math.nan if x == 1.0 else x
        best = brute_force_minimize(f, [1.0, 2.0, 3.0])
        assert (best.x, best.value) == (2.0, 2.0)

    def test_all_nan_objective_is_distinct_error(self):
        with pytest.raises(InvalidParameterError, match="NaN"):
            brute_force_minimize(lambda x: math.nan, [1.0, 2.0])

    def test_infinite_minimum_is_legitimate(self):
        best = brute_force_minimize(lambda x: math.inf, [1.0, 2.0])
        assert best.x == 1.0
        assert math.isinf(best.value)


class TestBracketing:
    def test_interior_value(self):
        assert bracketing_integers(4.3, 1, 10) == [4, 5]

    def test_exact_integer(self):
        assert bracketing_integers(7.0, 1, 10) == [7]

    def test_clamped_low(self):
        assert bracketing_integers(0.2, 1, 10) == [1]

    def test_clamped_high(self):
        assert bracketing_integers(99.5, 1, 10) == [10]

    def test_empty_range(self):
        with pytest.raises(InvalidParameterError, match="empty integer range"):
            bracketing_integers(3.0, 5, 4)

    def test_single_point_range_ignores_x(self):
        # A collapsed admissible range (a_min == a_max) must not depend
        # on float rounding of the continuous optimum.
        assert bracketing_integers(3.0, 7, 7) == [7]
        assert bracketing_integers(6.9999999999, 7, 7) == [7]
        assert bracketing_integers(-1e300, 7, 7) == [7]

    def test_nan_optimum_rejected(self):
        with pytest.raises(InvalidParameterError, match="NaN"):
            bracketing_integers(math.nan, 1, 10)

    def test_infinite_optimum_clamps_to_endpoint(self):
        assert bracketing_integers(math.inf, 1, 10) == [10]
        assert bracketing_integers(-math.inf, 1, 10) == [1]


class TestConvexityCheck:
    def test_convex_curve_passes(self):
        xs = [float(i) for i in range(50)]
        assert is_discretely_convex([x * x for x in xs])

    def test_concave_curve_fails(self):
        xs = [float(i + 1) for i in range(50)]
        assert not is_discretely_convex([math.sqrt(x) * 100 for x in xs])

    def test_short_sequences_trivially_convex(self):
        assert is_discretely_convex([1.0, 2.0])
        assert is_discretely_convex([])

    def test_tolerates_noise_within_rel_tol(self):
        values = [x * x for x in range(20)]
        values[10] -= 1e-12
        assert is_discretely_convex(values, rel_tol=1e-9)
