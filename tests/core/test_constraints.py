"""Memory and machine-size constraints on allocation."""

import pytest

from repro.core.constraints import (
    MachineSize,
    constrained_allocation,
    min_processors_for_memory,
)
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

SQUARE = PartitionKind.SQUARE
STRIP = PartitionKind.STRIP


class TestMachineSize:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            MachineSize(n_processors=0)
        with pytest.raises(InvalidParameterError):
            MachineSize(n_processors=4, memory_points=1.0)


class TestMinProcessors:
    def test_unconstrained_memory_allows_serial(self):
        w = Workload(n=64, stencil=FIVE_POINT)
        ms = MachineSize(n_processors=16)
        assert min_processors_for_memory(w, SQUARE, ms) == 1

    def test_big_memory_allows_serial(self):
        w = Workload(n=32, stencil=FIVE_POINT)
        ms = MachineSize(n_processors=16, memory_points=1e9)
        assert min_processors_for_memory(w, SQUARE, ms) == 1

    def test_tight_memory_forces_parallelism(self):
        w = Workload(n=64, stencil=FIVE_POINT)
        # One processor would need 4096 + halo; cap at ~1/4 grid.
        ms = MachineSize(n_processors=64, memory_points=1100.0)
        p_min = min_processors_for_memory(w, SQUARE, ms)
        assert p_min > 1
        # The returned count actually fits, and one fewer does not.
        area_ok = w.grid_points / p_min
        area_bad = w.grid_points / (p_min - 1)
        from repro.stencils.perimeter import boundary_points

        assert area_ok + boundary_points(SQUARE, int(area_ok), 64, 1) <= 1100
        assert area_bad + boundary_points(SQUARE, int(area_bad), 64, 1) > 1100

    def test_problem_too_big_raises(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        ms = MachineSize(n_processors=2, memory_points=100.0)
        with pytest.raises(InvalidParameterError, match="more memory"):
            min_processors_for_memory(w, SQUARE, ms)


class TestConstrainedAllocation:
    def test_unbound_matches_plain_optimizer(self):
        w = Workload(n=256, stencil=FIVE_POINT)
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        ms = MachineSize(n_processors=16)
        res = constrained_allocation(bus, w, SQUARE, ms)
        assert not res.memory_bound
        from repro.core.allocation import optimize_allocation

        plain = optimize_allocation(bus, w, SQUARE, max_processors=16)
        assert res.allocation.cycle_time == pytest.approx(plain.cycle_time)

    def test_memory_forbids_serial_fallback(self):
        """Section 4: a terrible network prefers one processor — unless
        the problem doesn't fit, in which case spread maximally."""
        w = Workload(n=64, stencil=FIVE_POINT)
        slow = Hypercube(alpha=1.0, beta=10.0)
        roomy = MachineSize(n_processors=16)
        assert constrained_allocation(slow, w, SQUARE, roomy).processors == 1.0

        tight = MachineSize(n_processors=16, memory_points=1100.0)
        res = constrained_allocation(slow, w, SQUARE, tight)
        assert res.memory_bound
        assert res.processors >= res.min_processors > 1

    def test_forced_allocation_fits_memory(self):
        w = Workload(n=128, stencil=FIVE_POINT)
        bus = SynchronousBus(b=1e-3, c=0.0)  # slow bus: serial would win
        ms = MachineSize(n_processors=32, memory_points=3000.0)
        res = constrained_allocation(bus, w, SQUARE, ms)
        assert res.memory_bound
        area = w.grid_points / res.processors
        from repro.stencils.perimeter import boundary_points

        assert area + boundary_points(SQUARE, int(area), 128, 1) <= 3000.0
