"""Isoefficiency functions implied by the cycle-time models."""

import pytest

from repro.core.isoefficiency import grid_for_efficiency, isoefficiency_exponent
from repro.core.parameters import Workload
from repro.core.speedup import speedup_at_processors
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

SQUARE = PartitionKind.SQUARE
STRIP = PartitionKind.STRIP
TEMPLATE = Workload(n=16, stencil=FIVE_POINT)
PROCS = [4, 8, 16, 32, 64]


class TestGridForEfficiency:
    def test_found_grid_is_minimal(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        n = grid_for_efficiency(bus, TEMPLATE, SQUARE, 16, 0.5)
        s_at = speedup_at_processors(bus, TEMPLATE.with_n(n), SQUARE, 16.0)
        s_below = speedup_at_processors(bus, TEMPLATE.with_n(n - 1), SQUARE, 16.0)
        assert s_at >= 0.5 * 16
        assert s_below < 0.5 * 16

    def test_higher_efficiency_needs_bigger_grid(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        n50 = grid_for_efficiency(bus, TEMPLATE, SQUARE, 16, 0.5)
        n80 = grid_for_efficiency(bus, TEMPLATE, SQUARE, 16, 0.8)
        assert n80 > n50

    def test_validation(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        with pytest.raises(InvalidParameterError):
            grid_for_efficiency(bus, TEMPLATE, SQUARE, 16, 1.5)
        with pytest.raises(InvalidParameterError):
            grid_for_efficiency(bus, TEMPLATE, SQUARE, 1, 0.5)

    def test_unreachable_raises(self):
        terrible = SynchronousBus(b=10.0, c=0.0)
        with pytest.raises(InvalidParameterError, match="no grid"):
            grid_for_efficiency(terrible, TEMPLATE, SQUARE, 16, 0.9, n_max=256)


class TestExponents:
    def test_hypercube_linear(self):
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        fit = isoefficiency_exponent(cube, TEMPLATE, SQUARE, PROCS)
        assert fit.exponent == pytest.approx(1.0, abs=0.15)

    def test_bus_squares_cubic(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        fit = isoefficiency_exponent(bus, TEMPLATE, SQUARE, PROCS)
        assert fit.exponent == pytest.approx(3.0, abs=0.1)

    def test_bus_strips_quartic(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        fit = isoefficiency_exponent(bus, TEMPLATE, STRIP, PROCS)
        assert fit.exponent == pytest.approx(4.0, abs=0.1)

    def test_banyan_slightly_superlinear(self):
        net = BanyanNetwork(w=2e-7)
        fit = isoefficiency_exponent(net, TEMPLATE, SQUARE, [16, 32, 64, 128, 256])
        assert 1.0 < fit.exponent < 2.0

    def test_needs_two_counts(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        with pytest.raises(InvalidParameterError):
            isoefficiency_exponent(bus, TEMPLATE, SQUARE, [8])

    def test_problem_sizes_monotone(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        fit = isoefficiency_exponent(bus, TEMPLATE, SQUARE, PROCS)
        sizes = list(fit.problem_sizes)
        assert sizes == sorted(sizes)
