"""Cycle-time curves and phase breakdowns."""

import numpy as np
import pytest

from repro.core.cycle_time import (
    communication_fraction,
    cycle_time_curve,
    cycle_time_vs_processors,
    phase_breakdown,
)
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.bus import SynchronousBus
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

SQUARE = PartitionKind.SQUARE


@pytest.fixture
def bus():
    return SynchronousBus(b=6.1e-6, c=0.0)


@pytest.fixture
def w():
    return Workload(n=64, stencil=FIVE_POINT)


class TestCurves:
    def test_curve_matches_scalar_calls(self, bus, w):
        areas = np.array([16.0, 64.0, 256.0])
        curve = cycle_time_curve(bus, w, SQUARE, areas)
        for a, t in zip(areas, curve):
            assert t == pytest.approx(bus.cycle_time(w, SQUARE, float(a)))

    def test_processor_curve_maps_one_to_serial(self, bus, w):
        curve = cycle_time_vs_processors(bus, w, SQUARE, np.array([1.0, 4.0]))
        assert curve[0] == pytest.approx(w.serial_time())
        assert curve[1] == pytest.approx(bus.cycle_time(w, SQUARE, w.grid_points / 4))

    def test_processor_curve_rejects_sub_one(self, bus, w):
        with pytest.raises(InvalidParameterError):
            cycle_time_vs_processors(bus, w, SQUARE, np.array([0.5]))


class TestPhases:
    def test_breakdown_sums_to_total(self, bus, w):
        phases = phase_breakdown(bus, w, SQUARE, 64.0)
        assert phases.total == pytest.approx(bus.cycle_time(w, SQUARE, 64.0))
        assert phases.compute == pytest.approx(w.compute_time(64.0))
        assert phases.communication > 0

    def test_fraction_in_unit_interval(self, bus, w):
        areas = np.linspace(4.0, float(w.grid_points), 32)
        frac = communication_fraction(bus, w, SQUARE, areas)
        assert np.all(frac >= 0.0) and np.all(frac <= 1.0)

    def test_fraction_decreases_with_area(self, bus, w):
        """Bigger partitions -> higher computation-to-communication ratio."""
        frac = communication_fraction(bus, w, SQUARE, np.array([16.0, 1024.0]))
        assert frac[0] > frac[1]
