"""The shipped tree passes its own analyzer — the CI gate, as a test."""

from __future__ import annotations

import json

from repro.analyze import lint_tree, render_text, to_payload, write_json


class TestShippedTree:
    def test_lint_is_clean(self):
        report = lint_tree()
        assert report.ok, "\n" + "\n".join(
            f"{f.location()}: [{f.rule}] {f.message}" for f in report.active_findings
        )

    def test_every_suppression_carries_a_justification(self):
        report = lint_tree()
        for result in report.results:
            for _finding, sup in result.suppressed:
                assert sup.reason, f"unjustified suppression at {sup.module}:{sup.line}"

    def test_all_four_rules_ran(self):
        report = lint_tree()
        assert sorted(r.rule for r in report.results) == [
            "fingerprint-purity",
            "lock-discipline",
            "parity-coverage",
            "vectorization-guard",
        ]

    def test_parity_table_accounts_for_every_core_function(self):
        report = lint_tree()
        rows = report.tables["parity coverage"]
        assert rows, "parity coverage table is empty"
        statuses = {r["status"] for r in rows}
        assert "UNPAIRED" not in statuses
        assert "missing-twin" not in statuses
        # The pairing is real: a healthy majority of closed forms have
        # live twins, not blanket exemptions.
        paired = sum(1 for r in rows if r["status"] in ("paired", "twin"))
        assert paired >= len(rows) // 2

    def test_lock_guard_map_covers_the_cache_and_server(self):
        report = lint_tree()
        rows = report.tables["lock guard map"]
        guarded = {(r["class"], r["attribute"]) for r in rows}
        assert ("repro.batch.cache:SweepCache", "_memory") in guarded
        assert ("repro.batch.cache:SweepCache", "stats") in guarded
        assert ("repro.service.server:SweepServer", "_counters") in guarded


class TestReporters:
    def test_text_report_renders(self):
        report = lint_tree()
        text = render_text(report)
        assert "repro lint" in text
        assert "parity coverage" in text

    def test_json_payload_round_trips(self, tmp_path):
        report = lint_tree()
        path = tmp_path / "LINT.json"
        write_json(report, path)
        payload = json.loads(path.read_text())
        assert payload == to_payload(report)
        assert payload["ok"] is True
        assert set(payload["rules"]) == {
            "fingerprint-purity",
            "lock-discipline",
            "parity-coverage",
            "vectorization-guard",
        }
        suppressed = [
            s
            for rule in payload["rules"].values()
            for s in rule["suppressed"]
        ]
        assert suppressed, "expected the documented libm suppressions"
        assert all(s["justification"] for s in suppressed)
