"""lock-discipline on synthetic classes: inference, annotations, call sites."""

from __future__ import annotations

from repro.analyze import Project
from repro.analyze.locks import LockRule


def _run(sources):
    return LockRule().check(Project.from_sources(sources))


_BASE = (
    "import threading\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._data = {}\n"
)


class TestGuardInference:
    def test_mutation_under_lock_teaches_the_guard(self):
        source = _BASE + (
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._data[k] = v\n"
            "    def peek(self, k):\n"
            "        return self._data.get(k)\n"
        )
        findings = _run({"m": source})
        assert len(findings) == 1
        assert "peek" in findings[0].message
        assert "_data" in findings[0].message

    def test_reads_inside_the_lock_are_clean(self):
        source = _BASE + (
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._data[k] = v\n"
            "    def get(self, k):\n"
            "        with self._lock:\n"
            "            return self._data.get(k)\n"
        )
        assert _run({"m": source}) == []

    def test_init_is_exempt_from_the_guard(self):
        source = _BASE + (
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._data[k] = v\n"
        )
        # __init__ assigns self._data with no lock held — not a finding.
        assert _run({"m": source}) == []

    def test_augmented_assignment_outside_lock_is_flagged(self):
        source = (
            "import threading\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.total = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.total += 1\n"
            "    def racy_bump(self):\n"
            "        self.total += 1\n"
        )
        findings = _run({"m": source})
        assert len(findings) == 1
        assert "racy_bump" in findings[0].message

    def test_mutator_method_call_counts_as_mutation(self):
        source = _BASE + (
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._data.update({k: v})\n"
            "    def racy_clear(self):\n"
            "        self._data.clear()\n"
        )
        findings = _run({"m": source})
        assert [1 for f in findings if "racy_clear" in f.message]


class TestAnnotations:
    def test_guarded_by_annotation_declares_the_guard(self):
        source = (
            "import threading\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.stats = {}  # guarded-by: _lock\n"
            "    def read(self):\n"
            "        return self.stats\n"
        )
        findings = _run({"m": source})
        assert len(findings) == 1
        assert "stats" in findings[0].message

    def test_requires_lock_body_is_checked_as_held(self):
        source = _BASE + (
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._data[k] = v\n"
            "            self._evict()\n"
            "    def _evict(self):  # requires-lock: _lock\n"
            "        self._data.popitem()\n"
        )
        assert _run({"m": source}) == []

    def test_requires_lock_call_site_without_lock_is_flagged(self):
        source = _BASE + (
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._data[k] = v\n"
            "    def _evict(self):  # requires-lock: _lock\n"
            "        self._data.popitem()\n"
            "    def racy(self):\n"
            "        self._evict()\n"
        )
        findings = _run({"m": source})
        assert len(findings) == 1
        assert "racy" in findings[0].message
        assert "requires-lock" in findings[0].message


class TestCrossObject:
    def test_guarded_attribute_of_owned_instance_is_checked(self):
        cache = _BASE + (
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._data[k] = v\n"
        )
        server = (
            "import threading\n"
            "from m import Cache\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self.cache = Cache()\n"
            "    def racy_stats(self):\n"
            "        return self.cache._data\n"
            "    def safe_stats(self):\n"
            "        with self.cache._lock:\n"
            "            return self.cache._data\n"
        )
        findings = _run({"m": cache, "srv": server})
        assert len(findings) == 1
        assert "racy_stats" in findings[0].message
        assert "cache._lock" in findings[0].message


class TestConflicts:
    def test_attribute_guarded_by_two_locks_is_a_finding(self):
        source = (
            "import threading\n"
            "class Confused:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "        self.items = []\n"
            "    def via_a(self):\n"
            "        with self._a:\n"
            "            self.items.append(1)\n"
            "    def via_b(self):\n"
            "        with self._b:\n"
            "            self.items.append(2)\n"
        )
        findings = _run({"m": source})
        assert any("multiple" in f.message for f in findings)
