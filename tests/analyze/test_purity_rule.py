"""fingerprint-purity on synthetic trees: reachability and repr guards."""

from __future__ import annotations

from repro.analyze import Project
from repro.analyze.purity import PurityRule


def _run(sources, roots):
    project = Project.from_sources(sources)
    return PurityRule(roots=roots).check(project)


class TestReachability:
    def test_impure_call_in_reachable_function_is_flagged(self):
        sources = {
            "pkg.cache": (
                "import time\n"
                "def helper():\n"
                "    return time.time()\n"
                "def fingerprint(x):\n"
                "    return helper()\n"
            )
        }
        findings = _run(sources, ["pkg.cache:fingerprint"])
        assert len(findings) == 1
        assert "time.time" in findings[0].message
        assert findings[0].line == 3

    def test_impure_call_outside_the_reachable_set_is_not_flagged(self):
        sources = {
            "pkg.cache": (
                "import time\n"
                "def unrelated():\n"
                "    return time.time()\n"
                "def fingerprint(x):\n"
                "    return repr(str(x))\n"
            )
        }
        assert _run(sources, ["pkg.cache:fingerprint"]) == []

    def test_reachability_crosses_modules_through_imports(self):
        sources = {
            "pkg.cache": (
                "from pkg.util import salt\n"
                "def fingerprint(x):\n"
                "    return salt(x)\n"
            ),
            "pkg.util": (
                "import random\n"
                "def salt(x):\n"
                "    return random.random()\n"
            ),
        }
        findings = _run(sources, ["pkg.cache:fingerprint"])
        assert len(findings) == 1
        assert findings[0].module == "pkg.util"

    def test_method_roots_follow_self_calls(self):
        sources = {
            "pkg.cache": (
                "import uuid\n"
                "class Cache:\n"
                "    def store(self, k):\n"
                "        return self._tag()\n"
                "    def _tag(self):\n"
                "        return uuid.uuid4()\n"
            )
        }
        findings = _run(sources, ["pkg.cache:Cache.store"])
        assert len(findings) == 1
        assert "uuid" in findings[0].message

    def test_id_and_environ_are_flagged(self):
        sources = {
            "pkg.cache": (
                "import os\n"
                "def fingerprint(x):\n"
                "    a = id(x)\n"
                "    b = os.environ['HOME']\n"
                "    return (a, b)\n"
            )
        }
        findings = _run(sources, ["pkg.cache:fingerprint"])
        rules = sorted(f.message for f in findings)
        assert any("id()" in m for m in rules)
        assert any("os.environ" in m for m in rules)


class TestReprGuards:
    def test_unguarded_repr_of_name_is_flagged(self):
        sources = {
            "pkg.cache": "def fingerprint(x):\n    return repr(x)\n"
        }
        findings = _run(sources, ["pkg.cache:fingerprint"])
        assert len(findings) == 1
        assert "repr(x)" in findings[0].message

    def test_isinstance_guard_blesses_the_repr(self):
        sources = {
            "pkg.cache": (
                "def fingerprint(x):\n"
                "    if isinstance(x, float):\n"
                "        return repr(x)\n"
                "    return str(x)\n"
            )
        }
        assert _run(sources, ["pkg.cache:fingerprint"]) == []

    def test_stable_repr_predicate_blesses_the_repr(self):
        sources = {
            "pkg.cache": (
                "def _has_stable_repr(o):\n"
                "    return type(o).__repr__ is not object.__repr__\n"
                "def fingerprint(x):\n"
                "    if _has_stable_repr(x):\n"
                "        return repr(x)\n"
                "    raise ValueError\n"
            )
        }
        assert _run(sources, ["pkg.cache:fingerprint"]) == []

    def test_guard_does_not_leak_into_the_else_branch(self):
        sources = {
            "pkg.cache": (
                "def fingerprint(x):\n"
                "    if isinstance(x, float):\n"
                "        return str(x)\n"
                "    return repr(x)\n"
            )
        }
        findings = _run(sources, ["pkg.cache:fingerprint"])
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_repr_of_call_result_is_the_callees_responsibility(self):
        sources = {
            "pkg.cache": (
                "def _canonical(x):\n"
                "    if isinstance(x, int):\n"
                "        return x\n"
                "    raise ValueError\n"
                "def fingerprint(x):\n"
                "    return repr(_canonical(x))\n"
            )
        }
        assert _run(sources, ["pkg.cache:fingerprint"]) == []
