"""parity-coverage on synthetic trees: pairing, exemptions, machines."""

from __future__ import annotations

from repro.analyze import Project
from repro.analyze.parity import ParityRule

_CORE = (
    "__all__ = ['alpha', 'beta', 'gamma']\n"
    "def alpha(x):\n"
    "    return x\n"
    "def beta(x):\n"
    "    return x\n"
    "def gamma(x):\n"
    "    return x\n"
    "def _private(x):\n"
    "    return x\n"
)


class TestPairing:
    def test_unaccounted_public_function_is_flagged(self):
        project = Project.from_sources({"repro.core.fake": _CORE})
        rule = ParityRule(pairs={}, exempt={})
        findings = rule.check(project)
        assert sorted(f.message.split()[3] for f in findings) == [
            "alpha", "beta", "gamma"
        ]

    def test_private_functions_are_not_in_the_universe(self):
        project = Project.from_sources({"repro.core.fake": _CORE})
        findings = ParityRule(pairs={}, exempt={}).check(project)
        assert not any("_private" in f.message for f in findings)

    def test_paired_function_with_existing_twin_is_clean(self):
        project = Project.from_sources(
            {
                "repro.core.fake": _CORE,
                "repro.batch.fake": "def alpha_curve(xs):\n    return xs\n",
            }
        )
        rule = ParityRule(
            pairs={"alpha": "alpha_curve"},
            exempt={"beta": "array-native", "gamma": "diagnostic"},
        )
        assert rule.check(project) == []

    def test_registered_twin_missing_from_tree_is_flagged(self):
        project = Project.from_sources({"repro.core.fake": _CORE})
        rule = ParityRule(
            pairs={"alpha": "alpha_curve"},
            exempt={"beta": "array-native", "gamma": "diagnostic"},
        )
        findings = rule.check(project)
        assert len(findings) == 1
        assert "no function of that name" in findings[0].message

    def test_twin_functions_account_for_themselves(self):
        source = (
            "__all__ = ['alpha', 'alpha_curve']\n"
            "def alpha(x):\n"
            "    return x\n"
            "def alpha_curve(xs):\n"
            "    return xs\n"
        )
        project = Project.from_sources({"repro.core.fake": source})
        rule = ParityRule(pairs={"alpha": "alpha_curve"}, exempt={})
        assert rule.check(project) == []

    def test_missing_test_mention_is_flagged_when_tests_root_given(self, tmp_path):
        (tmp_path / "test_other.py").write_text("def test_nothing():\n    pass\n")
        project = Project.from_sources(
            {
                "repro.core.fake": "__all__ = ['alpha']\ndef alpha(x):\n    return x\n",
                "repro.batch.fake": "def alpha_curve(xs):\n    return xs\n",
            }
        )
        rule = ParityRule(
            pairs={"alpha": "alpha_curve"}, exempt={}, tests_root=tmp_path
        )
        findings = rule.check(project)
        assert len(findings) == 1
        assert "no test file mentions the twin" in findings[0].message

    def test_test_mention_satisfies_the_rule(self, tmp_path):
        (tmp_path / "test_twins.py").write_text(
            "from repro.batch.fake import alpha_curve\n"
        )
        project = Project.from_sources(
            {
                "repro.core.fake": "__all__ = ['alpha']\ndef alpha(x):\n    return x\n",
                "repro.batch.fake": "def alpha_curve(xs):\n    return xs\n",
            }
        )
        rule = ParityRule(
            pairs={"alpha": "alpha_curve"}, exempt={}, tests_root=tmp_path
        )
        assert rule.check(project) == []


class TestMachines:
    def test_grid_method_without_scalar_counterpart_is_flagged(self):
        source = (
            "class Machine:\n"
            "    def volume_grid(self, n):\n"
            "        return n\n"
        )
        project = Project.from_sources({"repro.machines.fake": source})
        findings = ParityRule(pairs={}, exempt={}).check(project)
        assert len(findings) == 1
        assert "volume_grid" in findings[0].message

    def test_scalar_counterpart_may_come_from_a_base_class(self):
        source = (
            "class Base:\n"
            "    def volume(self, n):\n"
            "        return n\n"
            "class Machine(Base):\n"
            "    def volume_grid(self, n):\n"
            "        return n\n"
        )
        project = Project.from_sources({"repro.machines.fake": source})
        assert ParityRule(pairs={}, exempt={}).check(project) == []

    def test_private_grid_helpers_are_not_twins(self):
        source = (
            "class Machine:\n"
            "    def _volume_grid(self, n):\n"
            "        return n\n"
        )
        project = Project.from_sources({"repro.machines.fake": source})
        assert ParityRule(pairs={}, exempt={}).check(project) == []


class TestCoverageTable:
    def test_every_universe_function_gets_a_row(self):
        project = Project.from_sources(
            {
                "repro.core.fake": _CORE,
                "repro.batch.fake": "def alpha_curve(xs):\n    return xs\n",
            }
        )
        rule = ParityRule(
            pairs={"alpha": "alpha_curve"},
            exempt={"beta": "array-native"},
        )
        rows = rule.tables(project)["parity coverage"]
        by_name = {r["function"]: r for r in rows}
        assert by_name["alpha"]["status"] == "paired"
        assert by_name["beta"]["status"] == "exempt"
        assert by_name["gamma"]["status"] == "UNPAIRED"
