"""vectorization-guard on synthetic functions: dataflow and escapes."""

from __future__ import annotations

from repro.analyze import Project
from repro.analyze.vectorization import VectorizationRule


def _run(source, scope=("m",)):
    project = Project.from_sources({"m": source})
    return VectorizationRule(scope=scope).check(project)


class TestFlagging:
    def test_for_loop_over_np_result_is_flagged(self):
        source = (
            "import numpy as np\n"
            "def curve(xs):\n"
            "    arr = np.asarray(xs)\n"
            "    out = []\n"
            "    for v in arr:\n"
            "        out.append(v * 2)\n"
            "    return out\n"
        )
        findings = _run(source)
        assert len(findings) == 1
        assert findings[0].line == 5

    def test_comprehension_over_annotated_array_param_is_flagged(self):
        source = (
            "import numpy as np\n"
            "def curve(xs: np.ndarray):\n"
            "    return [v * 2 for v in xs]\n"
        )
        assert len(_run(source)) == 1

    def test_zip_and_enumerate_propagate_array_likeness(self):
        source = (
            "import numpy as np\n"
            "def curve(xs: np.ndarray, ys: np.ndarray):\n"
            "    a = [x + y for x, y in zip(xs, ys)]\n"
            "    b = [i * v for i, v in enumerate(ys)]\n"
            "    return a, b\n"
        )
        assert len(_run(source)) == 2

    def test_arithmetic_propagates_array_likeness(self):
        source = (
            "import numpy as np\n"
            "def curve(xs: np.ndarray):\n"
            "    scaled = xs * 2.0 + 1.0\n"
            "    return [v for v in scaled]\n"
        )
        assert len(_run(source)) == 1


class TestEscapesAndExemptions:
    def test_tolist_is_the_blessed_escape(self):
        source = (
            "import numpy as np\n"
            "def curve(xs: np.ndarray):\n"
            "    return [v for v in xs.tolist()]\n"
        )
        assert _run(source) == []

    def test_while_loops_are_exempt(self):
        source = (
            "import numpy as np\n"
            "def bisect(lo: np.ndarray, hi: np.ndarray):\n"
            "    rounds = 0\n"
            "    while rounds < 60:\n"
            "        mid = (lo + hi) / 2\n"
            "        lo = np.where(mid > 0, mid, lo)\n"
            "        rounds += 1\n"
            "    return lo\n"
        )
        assert _run(source) == []

    def test_list_of_arrays_iterates_the_stack_not_an_axis(self):
        source = (
            "import numpy as np\n"
            "def curve(xs: np.ndarray):\n"
            "    candidates: list[np.ndarray] = [xs, xs * 2]\n"
            "    return [c.sum() for c in candidates]\n"
        )
        assert _run(source) == []

    def test_plain_python_loops_stay_clean(self):
        source = (
            "def scalar(items):\n"
            "    return [i * 2 for i in items]\n"
        )
        assert _run(source) == []


class TestScope:
    def test_class_scoped_entry_checks_only_that_class(self):
        source = (
            "import numpy as np\n"
            "class Fast:\n"
            "    def run(self, xs: np.ndarray):\n"
            "        return [v for v in xs]\n"
            "class Oracle:\n"
            "    def run(self, xs: np.ndarray):\n"
            "        return [v for v in xs]\n"
        )
        findings = _run(source, scope=("m:Fast",))
        assert len(findings) == 1
        assert "Fast.run" in findings[0].message

    def test_out_of_scope_modules_are_ignored(self):
        source = (
            "import numpy as np\n"
            "def curve(xs: np.ndarray):\n"
            "    return [v for v in xs]\n"
        )
        project = Project.from_sources({"m": source})
        assert VectorizationRule(scope=("other",)).check(project) == []
