"""The analyzer chassis: parsing, suppressions, annotations, meta findings."""

from __future__ import annotations

from repro.analyze import Finding, Project, Rule, run_rules


class _StubRule(Rule):
    """Emits a fixed list of findings, for exercising the chassis."""

    name = "stub-rule"
    description = "test stub"

    def __init__(self, findings):
        self._findings = findings

    def check(self, project):
        return list(self._findings)


class TestSourceModule:
    def test_comments_come_from_tokenizer_not_substring_search(self):
        project = Project.from_sources(
            {"m": 'x = "# not a comment"\ny = 1  # real comment\n'}
        )
        module = project.get("m")
        assert module.comment_on(1) is None
        assert module.comment_on(2) == "# real comment"

    def test_guarded_by_annotation_parses(self):
        project = Project.from_sources(
            {"m": "class C:\n    def __init__(self):\n        self.x = {}  # guarded-by: _lock\n"}
        )
        assert project.get("m").guarded_by(3) == "_lock"
        assert project.get("m").guarded_by(2) is None

    def test_requires_lock_on_def_line_and_line_above(self):
        source = (
            "class C:\n"
            "    def a(self):  # requires-lock: _lock\n"
            "        pass\n"
            "    # requires-lock: _other\n"
            "    def b(self):\n"
            "        pass\n"
        )
        project = Project.from_sources({"m": source})
        module = project.get("m")
        import ast

        cls = module.tree.body[0]
        a, b = cls.body
        assert isinstance(a, ast.FunctionDef)
        assert module.requires_lock(a) == "_lock"
        assert module.requires_lock(b) == "_other"


class TestSuppressions:
    def test_line_suppression_covers_only_its_line(self):
        source = "x = 1  # lint: disable=stub-rule -- known-good\ny = 2\n"
        project = Project.from_sources({"m": source})
        rule = _StubRule(
            [
                Finding("stub-rule", "m", 1, "on suppressed line"),
                Finding("stub-rule", "m", 2, "on clean line"),
            ]
        )
        results, meta = run_rules(project, [rule])
        assert [f.line for f in results[0].active] == [2]
        assert [f.line for (f, _s) in results[0].suppressed] == [1]
        assert meta == []

    def test_def_line_suppression_covers_the_whole_scope(self):
        source = (
            "def f():  # lint: disable=stub-rule -- whole function is special\n"
            "    a = 1\n"
            "    b = 2\n"
        )
        project = Project.from_sources({"m": source})
        rule = _StubRule([Finding("stub-rule", "m", 3, "inside the scope")])
        results, _meta = run_rules(project, [rule])
        assert results[0].active == []
        assert len(results[0].suppressed) == 1

    def test_missing_justification_is_a_meta_finding(self):
        source = "x = 1  # lint: disable=stub-rule\n"
        project = Project.from_sources({"m": source})
        rule = _StubRule([Finding("stub-rule", "m", 1, "whatever")])
        _results, meta = run_rules(project, [rule])
        assert [m.rule for m in meta] == ["suppression-justification"]

    def test_stale_suppression_is_a_meta_finding(self):
        source = "x = 1  # lint: disable=stub-rule -- no longer needed\n"
        project = Project.from_sources({"m": source})
        _results, meta = run_rules(project, [_StubRule([])])
        assert [m.rule for m in meta] == ["stale-suppression"]

    def test_suppression_for_unknown_rule_is_ignored(self):
        # A suppression naming a rule outside this run must not produce
        # stale-suppression noise (partial rule runs are legitimate).
        source = "x = 1  # lint: disable=other-rule -- for some other run\n"
        project = Project.from_sources({"m": source})
        _results, meta = run_rules(project, [_StubRule([])])
        assert meta == []

    def test_multi_rule_suppression(self):
        source = "x = 1  # lint: disable=stub-rule,other -- both justified\n"
        project = Project.from_sources({"m": source})
        rule = _StubRule([Finding("stub-rule", "m", 1, "hit")])
        results, meta = run_rules(project, [rule])
        assert results[0].active == []
        assert meta == []
