"""The discrete-event engine: ordering, determinism, FIFO resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.events import EventQueue, Resource


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(3.0, lambda: fired.append("c"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(2.0, lambda: fired.append("b"))
        assert q.run() == 3.0
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        fired = []
        for tag in "xyz":
            q.schedule(1.0, lambda t=tag: fired.append(t))
        q.run()
        assert fired == ["x", "y", "z"]

    def test_callbacks_may_schedule_more(self):
        q = EventQueue()
        fired = []

        def chain():
            fired.append(q.now)
            if q.now < 3.0:
                q.schedule(q.now + 1.0, chain)

        q.schedule(1.0, chain)
        q.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_scheduling_in_past_raises(self):
        q = EventQueue()
        q.schedule(5.0, lambda: q.schedule(1.0, lambda: None))
        with pytest.raises(SimulationError, match="before current time"):
            q.run()

    def test_runaway_loop_guard(self):
        q = EventQueue()

        def forever():
            q.schedule(q.now + 1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="exceeded"):
            q.run(max_events=100)

    def test_event_counter(self):
        q = EventQueue()
        q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        q.run()
        assert q.events_processed == 2

    def test_max_events_guard_is_per_run(self):
        # Regression: the guard must count only the current drain, not
        # events accumulated by earlier run() calls on the same queue.
        q = EventQueue()
        for i in range(80):
            q.schedule(float(i), lambda: None)
        q.run(max_events=100)
        for i in range(80):
            q.schedule(q.now + float(i + 1), lambda: None)
        q.run(max_events=100)  # must not raise: 80 < 100 this drain
        assert q.events_processed == 160


class TestResource:
    def test_fifo_back_to_back(self):
        r = Resource()
        g1 = r.serve(0.0, 2.0)
        g2 = r.serve(0.0, 3.0)
        assert (g1.start, g1.finish) == (0.0, 2.0)
        assert (g2.start, g2.finish) == (2.0, 5.0)

    def test_idle_gap_respected(self):
        r = Resource()
        r.serve(0.0, 1.0)
        g = r.serve(10.0, 1.0)
        assert g.start == 10.0

    def test_negative_holding_rejected(self):
        with pytest.raises(SimulationError):
            Resource().serve(0.0, -1.0)

    def test_utilization(self):
        r = Resource()
        r.serve(0.0, 2.0)
        r.serve(0.0, 2.0)
        assert r.utilization(8.0) == pytest.approx(0.5)
        with pytest.raises(SimulationError):
            r.utilization(0.0)

    @given(
        holds=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=20
        )
    )
    @settings(max_examples=40)
    def test_total_busy_is_sum_of_holds(self, holds):
        r = Resource()
        for h in holds:
            r.serve(0.0, h)
        assert r.total_busy == pytest.approx(sum(holds))
        assert r.grants == len(holds)
