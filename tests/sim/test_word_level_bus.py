"""Word-level round-robin bus arbitration vs the block-FIFO model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.network.bus_sim import (
    BlockRequest,
    sync_bus_phase,
    sync_bus_phase_word_level,
)


class TestWordLevel:
    def test_bus_bound_regime(self):
        """c = 0: the bus is saturated; phase ends at V·P·b exactly."""
        done = sync_bus_phase_word_level(
            [BlockRequest(p, 10, 0.0) for p in range(4)], b=2.0, c=0.0
        )
        assert max(done.values()) == pytest.approx(10 * 4 * 2.0)

    def test_overhead_bound_regime(self):
        """c >> P·b: each processor runs at its own c + b pace."""
        done = sync_bus_phase_word_level(
            [BlockRequest(p, 10, 0.0) for p in range(2)], b=1.0, c=100.0
        )
        assert max(done.values()) == pytest.approx(10 * 101.0, rel=0.02)

    def test_zero_word_request(self):
        done = sync_bus_phase_word_level([BlockRequest(0, 0, 5.0)], 1.0, 1.0)
        assert done[0] == 5.0

    def test_duplicate_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            sync_bus_phase_word_level(
                [BlockRequest(0, 1, 0.0), BlockRequest(0, 1, 0.0)], 1.0, 0.0
            )

    @given(
        words=st.integers(min_value=1, max_value=30),
        procs=st.integers(min_value=1, max_value=8),
        b=st.floats(min_value=0.1, max_value=4.0),
        c=st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_effective_delay_envelope(self, words, procs, b, c):
        """Round-robin finishes within [V·max(Pb, c+b), V·(c+bP)] + one
        transient word — the footnote-3 envelope from either side."""
        done = sync_bus_phase_word_level(
            [BlockRequest(p, words, 0.0) for p in range(procs)], b, c
        )
        finish = max(done.values())
        lower = words * max(procs * b, c + b)
        upper = words * (c + procs * b) + (c + b)
        assert lower - 1e-9 <= finish <= upper + 1e-9

    @given(
        words=st.integers(min_value=1, max_value=25),
        procs=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_word_level_never_slower_than_block_fifo(self, words, procs):
        """Interleaving can only help the last finisher (work-conserving
        service of identical totals)."""
        b, c = 1.0, 0.7
        reqs = [BlockRequest(p, words, 0.0) for p in range(procs)]
        block = max(sync_bus_phase(reqs, b, c).values())
        word = max(sync_bus_phase_word_level(reqs, b, c).values())
        assert word <= block + 1e-9
