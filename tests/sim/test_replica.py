"""The scalar replica oracle: jitter semantics and RNG determinism."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, SimulationError
from repro.machines.catalog import DEFAULT_MACHINES
from repro.partitioning.decomposition import decomposition_for
from repro.sim import simulate_iteration, simulate_replica
from repro.sim.rng import (
    MAX_SEED,
    jitter_factor_grid,
    jitter_factors,
    uniform01,
    uniform01_grid,
)
from repro.stencils.library import FIVE_POINT, NINE_POINT_STAR
from repro.stencils.perimeter import PartitionKind

MACHINES = sorted(DEFAULT_MACHINES)


class TestRng:
    def test_uniform_in_unit_interval(self):
        vals = [uniform01(12345, r) for r in range(64)]
        assert all(0.0 <= v < 1.0 for v in vals)

    def test_grid_matches_scalar_bitwise(self):
        seeds = [0, 1, 7, 2**63, MAX_SEED]
        grid = uniform01_grid(np.asarray(seeds, dtype=np.uint64), 8)
        for i, s in enumerate(seeds):
            for r in range(8):
                assert grid[i, r] == uniform01(s, r)

    def test_distinct_seeds_distinct_streams(self):
        a = [uniform01(1, r) for r in range(16)]
        b = [uniform01(2, r) for r in range(16)]
        assert a != b

    def test_zero_jitter_factors_are_exactly_one(self):
        assert jitter_factors(99, 5, 0.0) == [1.0] * 5
        grid = jitter_factor_grid(np.asarray([3, 4], dtype=np.uint64), 5, 0.0)
        assert np.all(grid == 1.0)

    def test_factor_grid_matches_scalar_bitwise(self):
        seeds = np.asarray([11, 12, 13], dtype=np.uint64)
        grid = jitter_factor_grid(seeds, 6, 0.25)
        for i, s in enumerate([11, 12, 13]):
            assert grid[i].tolist() == jitter_factors(s, 6, 0.25)

    def test_seed_range_enforced(self):
        with pytest.raises(InvalidParameterError):
            uniform01(-1, 0)
        with pytest.raises(InvalidParameterError):
            uniform01(MAX_SEED + 1, 0)

    def test_jitter_range_enforced(self):
        with pytest.raises(InvalidParameterError):
            jitter_factors(0, 4, 1.0)
        with pytest.raises(InvalidParameterError):
            jitter_factors(0, 4, -0.1)

    @given(
        seed=st.integers(min_value=0, max_value=MAX_SEED),
        jitter=st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=50)
    def test_factors_stay_in_band(self, seed, jitter):
        for f in jitter_factors(seed, 8, jitter):
            assert 1.0 - jitter <= f <= 1.0 + jitter
            assert math.isfinite(f)


class TestSimulateReplica:
    @pytest.mark.parametrize("name", MACHINES)
    @pytest.mark.parametrize("kind", [PartitionKind.SQUARE, PartitionKind.STRIP])
    def test_zero_jitter_reproduces_event_sim(self, name, kind):
        machine = DEFAULT_MACHINES[name]
        dec_kind = "strip" if kind is PartitionKind.STRIP else "block"
        for p in (1, 3, 8):
            decomposition = decomposition_for(48, p, dec_kind)
            base = simulate_iteration(
                machine, decomposition, FIVE_POINT, 1e-6, mode="barrier"
            )
            rep = simulate_replica(
                machine, 48, p, FIVE_POINT, seed=7, kind=kind, jitter=0.0
            )
            assert rep.cycle_time == base.cycle_time

    @pytest.mark.parametrize("name", MACHINES)
    def test_jitter_perturbs_but_stays_deterministic(self, name):
        machine = DEFAULT_MACHINES[name]
        a = simulate_replica(machine, 40, 4, NINE_POINT_STAR, seed=5, jitter=0.1)
        b = simulate_replica(machine, 40, 4, NINE_POINT_STAR, seed=5, jitter=0.1)
        c = simulate_replica(machine, 40, 4, NINE_POINT_STAR, seed=6, jitter=0.1)
        assert a.cycle_time == b.cycle_time
        assert a.compute_times == b.compute_times
        assert a.cycle_time != c.cycle_time

    def test_single_processor_is_pure_compute(self):
        machine = DEFAULT_MACHINES["paper-bus"]
        rep = simulate_replica(machine, 32, 1, FIVE_POINT, seed=3, jitter=0.2)
        assert rep.n_processors == 1
        assert rep.cycle_time == rep.compute_times[0]

    def test_metadata_round_trip(self):
        machine = DEFAULT_MACHINES["ipsc"]
        rep = simulate_replica(
            machine, 24, 4, FIVE_POINT, seed=9, mode="pipelined", jitter=0.05
        )
        assert rep.seed == 9
        assert rep.jitter == 0.05
        assert rep.mode == "pipelined"
        assert rep.machine_name == machine.name
        assert rep.n_processors == 4

    def test_unknown_machine_rejected(self):
        class Fake:
            name = "fake"

        from repro.machines.base import Architecture

        machine = DEFAULT_MACHINES["paper-bus"]
        assert isinstance(machine, Architecture)
        with pytest.raises(SimulationError, match="no replica simulator"):
            simulate_replica(Fake(), 16, 4, FIVE_POINT, seed=0)  # type: ignore[arg-type]
