"""Link-phase and banyan network models."""

import pytest

from repro.errors import SimulationError
from repro.sim.network.banyan_sim import network_stages, read_phase_time
from repro.sim.network.link_sim import (
    MessageSpec,
    message_time,
    neighbour_exchange_time,
    phase_durations,
)


class TestMessageTime:
    def test_packetization(self):
        assert message_time(17, alpha=1.0, beta=10.0, packet_words=16) == 12.0

    def test_idle_rank_is_free(self):
        assert message_time(0, 1.0, 10.0, 16) == 0.0

    def test_negative_volume_rejected(self):
        with pytest.raises(SimulationError):
            MessageSpec(rank=0, words=-1)


class TestPhases:
    def test_phase_duration_is_slowest_member(self):
        phases = [[MessageSpec(0, 16), MessageSpec(1, 32)]]
        assert phase_durations(phases, 1.0, 10.0, 16) == [12.0]

    def test_exchange_sums_phases(self):
        phases = [
            [MessageSpec(0, 16)],
            [MessageSpec(0, 16)],
            [MessageSpec(1, 32)],
        ]
        assert neighbour_exchange_time(phases, 1.0, 10.0, 16) == 11 + 11 + 12

    def test_empty_phase_contributes_nothing(self):
        assert neighbour_exchange_time([[]], 1.0, 10.0, 16) == 0.0


class TestBanyanStages:
    def test_power_of_two(self):
        assert network_stages(16) == 4

    def test_rounds_up(self):
        assert network_stages(9) == 4

    def test_single_port(self):
        assert network_stages(1) == 0

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            network_stages(0)


class TestBanyanReadPhase:
    def test_max_over_ranks(self):
        # 4 ports -> 2 stages -> 2*w*2 per word.
        t = read_phase_time([10, 20, 5], w=0.5, n_ports=4)
        assert t == pytest.approx(20 * 2 * 0.5 * 2)

    def test_empty_is_zero(self):
        assert read_phase_time([], w=0.5, n_ports=4) == 0.0

    def test_invalid_switch_time(self):
        with pytest.raises(SimulationError):
            read_phase_time([1], w=0.0, n_ports=4)
