"""Butterfly topology: routing correctness and classical congestion facts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.network.butterfly import (
    ButterflyNetwork,
    bit_reversal_permutation,
    cyclic_shift_permutation,
    random_permutation,
)


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(SimulationError):
            ButterflyNetwork(n_ports=12)

    def test_stages(self):
        assert ButterflyNetwork(n_ports=16).stages == 4
        assert ButterflyNetwork(n_ports=1).stages == 0


class TestRouting:
    def test_path_length_is_stage_count(self):
        net = ButterflyNetwork(n_ports=16)
        assert len(net.route(3, 11)) == 4

    def test_path_ends_at_destination(self):
        net = ButterflyNetwork(n_ports=32)
        for src in (0, 7, 31):
            for dst in (0, 13, 31):
                edges = net.route(src, dst)
                assert edges[-1][2] == dst

    @given(
        d=st.integers(min_value=1, max_value=7),
        src=st.integers(min_value=0, max_value=127),
        dst=st.integers(min_value=0, max_value=127),
    )
    @settings(max_examples=60)
    def test_routing_property(self, d, src, dst):
        n = 1 << d
        net = ButterflyNetwork(n_ports=n)
        src %= n
        dst %= n
        edges = net.route(src, dst)
        # Contiguous path starting at src, ending at dst, one per stage.
        assert edges[0][1] == src
        assert edges[-1][2] == dst
        assert [e[0] for e in edges] == list(range(d))
        for (s1, _, to1), (_, frm2, _) in zip(edges, edges[1:]):
            assert to1 == frm2

    def test_out_of_range_rejected(self):
        net = ButterflyNetwork(n_ports=8)
        with pytest.raises(SimulationError):
            net.route(0, 8)


class TestCongestion:
    def test_identity_is_conflict_free(self):
        """The paper's placement (assumption 3) routes with congestion 1."""
        for n in (4, 16, 64, 256):
            net = ButterflyNetwork(n_ports=n)
            assert net.congestion(list(range(n))) == 1

    def test_cyclic_shift_is_conflict_free(self):
        for n in (8, 64):
            net = ButterflyNetwork(n_ports=n)
            for shift in (1, 3, n // 2):
                assert net.congestion(cyclic_shift_permutation(n, shift)) == 1

    def test_bit_reversal_congestion_grows_geometrically(self):
        """Bit reversal is the classical bad case: congestion doubles
        every two dimensions (Θ(√N))."""
        c = {
            n: ButterflyNetwork(n_ports=n).congestion(bit_reversal_permutation(n))
            for n in (16, 64, 256, 1024)
        }
        assert c[64] == 2 * c[16]
        assert c[256] == 2 * c[64]
        assert c[1024] == 2 * c[256]
        assert c[1024] >= 1024 ** 0.5 / 2

    def test_random_between_identity_and_reversal(self):
        n = 256
        net = ButterflyNetwork(n_ports=n)
        rand = net.congestion(random_permutation(n, seed=1))
        rev = net.congestion(bit_reversal_permutation(n))
        assert 1 < rand <= rev

    def test_pattern_length_checked(self):
        net = ButterflyNetwork(n_ports=8)
        with pytest.raises(SimulationError, match="entries"):
            net.congestion([0, 1])


class TestReadTime:
    def test_identity_recovers_paper_formula(self):
        net = ButterflyNetwork(n_ports=16)
        w = 1e-7
        assert net.read_word_time(w, list(range(16))) == pytest.approx(
            2 * w * 4
        )

    def test_congestion_multiplies(self):
        net = ButterflyNetwork(n_ports=64)
        w = 1e-7
        ident = net.read_word_time(w, list(range(64)))
        rev = net.read_word_time(w, bit_reversal_permutation(64))
        assert rev == pytest.approx(ident * net.congestion(bit_reversal_permutation(64)))

    def test_single_port_free(self):
        assert ButterflyNetwork(n_ports=1).read_word_time(1e-7, [0]) == 0.0

    def test_invalid_w(self):
        with pytest.raises(SimulationError):
            ButterflyNetwork(n_ports=4).read_word_time(0.0, list(range(4)))


class TestPermutations:
    def test_bit_reversal_is_involution(self):
        p = bit_reversal_permutation(64)
        assert [p[p[i]] for i in range(64)] == list(range(64))

    def test_random_is_permutation_and_deterministic(self):
        p1 = random_permutation(32, seed=5)
        p2 = random_permutation(32, seed=5)
        assert p1 == p2
        assert sorted(p1) == list(range(32))
