"""Validation sweeps: the shape-agreement contract between model and sim."""

import pytest

from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.sim.validate import validate_machine, validation_summary
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

PROCS = [1, 2, 4, 8, 16]


class TestSweepStructure:
    def test_point_fields(self):
        sweep = validate_machine(
            SynchronousBus(b=6.1e-6), FIVE_POINT, 32, PROCS, PartitionKind.SQUARE
        )
        assert len(sweep.points) == len(PROCS)
        assert [p.processors for p in sweep.points] == PROCS
        assert sweep.points[0].relative_error == pytest.approx(0.0)  # serial

    def test_summary_keys(self):
        sweep = validate_machine(
            SynchronousBus(b=6.1e-6), FIVE_POINT, 32, PROCS, PartitionKind.SQUARE
        )
        s = validation_summary(sweep)
        assert set(s) >= {
            "mean_relative_error",
            "max_abs_relative_error",
            "best_p_analytic",
            "best_p_simulated",
            "ranking_agrees",
        }


class TestAgreementContracts:
    def test_hypercube_tight_agreement(self):
        sweep = validate_machine(
            Hypercube(alpha=1e-6, beta=1e-5, packet_words=16),
            FIVE_POINT,
            32,
            PROCS,
            PartitionKind.SQUARE,
        )
        assert sweep.max_abs_relative_error() < 0.05

    def test_banyan_tight_agreement(self):
        sweep = validate_machine(
            BanyanNetwork(w=2e-7), FIVE_POINT, 32, PROCS, PartitionKind.SQUARE
        )
        assert sweep.max_abs_relative_error() < 0.05

    def test_bus_model_is_upper_envelope(self):
        """The analytic bus model over-counts boundary partitions' volume,
        so simulation must come in at or below it."""
        sweep = validate_machine(
            SynchronousBus(b=6.1e-6), FIVE_POINT, 48, [2, 4, 8, 16],
            PartitionKind.SQUARE,
        )
        for p in sweep.points:
            assert p.simulated <= p.analytic * 1.01

    def test_bus_ranking_agreement(self):
        sweep = validate_machine(
            SynchronousBus(b=6.1e-6), FIVE_POINT, 48,
            [1, 2, 3, 4, 6, 8, 12, 16], PartitionKind.STRIP,
        )
        s = validation_summary(sweep)
        assert s["ranking_agrees"]

    def test_strip_kind_uses_strip_decomposition(self):
        sweep = validate_machine(
            SynchronousBus(b=6.1e-6), FIVE_POINT, 32, [4], PartitionKind.STRIP
        )
        # Strips of 32x8 = 256 points; squares would be 16x16.
        assert sweep.points[0].analytic > 0
