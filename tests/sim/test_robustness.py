"""Robustness: wide stencils, lopsided decompositions, degenerate inputs.

Failure-injection style tests — the simulator and model must either
handle these exactly or refuse loudly, never silently mis-time.
"""

import pytest

from repro.errors import DecompositionError
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.partitioning.decomposition import decomposition_for
from repro.sim.iteration import halo_volumes, simulate_iteration
from repro.sim.validate import validate_machine
from repro.stencils.library import NINE_POINT_STAR, THIRTEEN_POINT
from repro.stencils.perimeter import PartitionKind

T = 1e-6


class TestWideStencils:
    def test_reach_two_strips_double_volume(self):
        dec = decomposition_for(32, 4, "strip")
        reads, writes = halo_volumes(dec, NINE_POINT_STAR)
        assert reads[1] == 2 * 2 * 32  # two perimeters each side
        assert writes[1] == 2 * 2 * 32

    def test_thirteen_point_blocks_have_corner_traffic(self):
        dec = decomposition_for(16, 4, "block")
        reads, _ = halo_volumes(dec, THIRTEEN_POINT)
        # Two edges of 2 rows (16 pts) each, plus the diagonal corner point.
        assert all(r == 2 * 16 + 1 for r in reads)

    def test_hypercube_simulation_handles_reach_two(self):
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        dec = decomposition_for(32, 4, "strip")
        res = simulate_iteration(cube, dec, NINE_POINT_STAR, T)
        # Each directed edge carries 2 rows = 64 words -> 4 packets;
        # 4 phases of (4*alpha + beta), plus compute of 8x32 points.
        expected = 4 * (4e-6 + 1e-5) + 10 * 256 * T
        assert res.cycle_time == pytest.approx(expected, rel=1e-9)

    def test_validation_sweep_with_wide_stencil(self):
        sweep = validate_machine(
            SynchronousBus(b=6.1e-6, c=0.0),
            NINE_POINT_STAR,
            32,
            [1, 2, 4, 8],
            PartitionKind.STRIP,
        )
        # Model still an upper envelope, serial exact.
        assert sweep.points[0].relative_error == pytest.approx(0.0)
        for p in sweep.points[1:]:
            assert p.simulated <= p.analytic * 1.01


class TestLopsidedDecompositions:
    def test_prime_processor_count_on_blocks_degrades_to_strips(self):
        dec = decomposition_for(21, 7, "block")  # 1x7 arrangement
        assert dec.n_processors == 7
        assert dec.load_imbalance() == 1.0

    def test_remainder_rows_show_in_simulated_compute(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        dec = decomposition_for(10, 3, "strip")  # heights 4,3,3
        res = simulate_iteration(bus, dec, NINE_POINT_STAR, T)
        assert max(res.compute_times) == pytest.approx(10 * 40 * T)
        assert min(res.compute_times) == pytest.approx(10 * 30 * T)

    def test_more_processors_than_rows_rejected(self):
        with pytest.raises(DecompositionError):
            decomposition_for(4, 5, "strip")


class TestDegenerateGrids:
    def test_two_by_two_grid_two_processors(self):
        bus = SynchronousBus(b=1e-6, c=0.0)
        dec = decomposition_for(2, 2, "strip")
        res = simulate_iteration(bus, dec, NINE_POINT_STAR, T)
        assert res.cycle_time > 0
        # Each strip is one row; every point is boundary.
        assert all(r == 2 for r in res.read_words)

    def test_single_point_partitions(self):
        bus = SynchronousBus(b=1e-6, c=0.0)
        dec = decomposition_for(2, 4, "block")
        reads, writes = halo_volumes(dec, NINE_POINT_STAR)
        # Every partition is a single point reading its 2 in-grid
        # neighbours (the distance-2 arms all leave the 2x2 domain).
        assert all(r == 2 for r in reads)
        res = simulate_iteration(bus, dec, NINE_POINT_STAR, T)
        assert res.cycle_time > 0
