"""Full-solve simulation: schedules, overheads, machine differences."""

import pytest

from repro.errors import InvalidParameterError
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid
from repro.partitioning.decomposition import decomposition_for
from repro.sim.solve_sim import simulate_solve
from repro.solver.convergence import CheckSchedule
from repro.stencils.library import FIVE_POINT

T = 1e-6


@pytest.fixture
def dec():
    return decomposition_for(32, 8, "block")


class TestTimeline:
    def test_composition(self, dec):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        tl = simulate_solve(bus, dec, FIVE_POINT, T, iterations=100)
        assert tl.iterations == 100
        assert tl.checks_performed == 100
        assert tl.total_time == pytest.approx(
            tl.iteration_time + tl.check_compute_time + tl.dissemination_time_total
        )

    def test_sparse_schedule_reduces_checks(self, dec):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        dense = simulate_solve(bus, dec, FIVE_POINT, T, 100, CheckSchedule(1))
        sparse = simulate_solve(bus, dec, FIVE_POINT, T, 100, CheckSchedule(10))
        assert sparse.checks_performed == 10
        assert sparse.total_time < dense.total_time
        assert sparse.check_overhead_fraction < dense.check_overhead_fraction

    def test_iteration_validation(self, dec):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        with pytest.raises(InvalidParameterError):
            simulate_solve(bus, dec, FIVE_POINT, T, iterations=0)


class TestMachineDifferences:
    def test_mesh_hardware_free_checks(self, dec):
        """Section 5: convergence hardware makes dissemination free."""
        with_hw = MeshGrid(alpha=1e-6, beta=1e-5, convergence_hardware=True)
        without = MeshGrid(alpha=1e-6, beta=1e-5, convergence_hardware=False)
        tl_hw = simulate_solve(with_hw, dec, FIVE_POINT, T, 50)
        tl_no = simulate_solve(without, dec, FIVE_POINT, T, 50)
        assert tl_hw.dissemination_time_total == 0.0
        assert tl_no.dissemination_time_total > 0.0

    def test_hypercube_scheduling_drives_overhead_down(self, dec):
        """Saltz-Naik-Nicol: scheduled checks make the cost insignificant."""
        cube = Hypercube(alpha=1e-6, beta=1e-3, packet_words=16)  # costly startup
        dense = simulate_solve(cube, dec, FIVE_POINT, T, 200, CheckSchedule(1))
        sparse = simulate_solve(cube, dec, FIVE_POINT, T, 200, CheckSchedule(20))
        assert dense.check_overhead_fraction > 0.2
        assert sparse.check_overhead_fraction < 0.1
