"""End-to-end iteration simulation against the analytic model."""

import pytest

from repro.errors import SimulationError
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid
from repro.partitioning.decomposition import decomposition_for
from repro.sim.iteration import halo_volumes, simulate_iteration
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

T_FLOP = 1e-6


class TestHaloVolumes:
    def test_strip_reads_and_writes(self):
        dec = decomposition_for(32, 4, "strip")
        reads, writes = halo_volumes(dec, FIVE_POINT)
        assert reads == [32, 64, 64, 32]
        # A strip's written boundary: one row per exposed side.
        assert writes == [32, 64, 64, 32]

    def test_writes_deduplicate_shared_corners(self):
        """With the 9-point box a corner point serves two+ readers but is
        written to global memory once."""
        dec = decomposition_for(16, 4, "block")
        reads, writes = halo_volumes(dec, NINE_POINT_BOX)
        # Each 8x8 block: reads 8+8+1 = 17; writes its two exposed edges
        # (8+8 points, corner shared between them counted once... the
        # interior corner point is in both edges' rows) = 15 unique points.
        assert all(r == 17 for r in reads)
        assert all(w == 15 for w in writes)

    def test_single_partition_no_traffic(self):
        dec = decomposition_for(16, 1, "strip")
        reads, writes = halo_volumes(dec, FIVE_POINT)
        assert reads == [0] and writes == [0]


class TestSinglePathways:
    def test_one_processor_is_pure_compute(self):
        dec = decomposition_for(16, 1, "block")
        for machine in (
            SynchronousBus(b=1e-6),
            Hypercube(alpha=1e-6, beta=1e-5),
            BanyanNetwork(w=1e-7),
        ):
            res = simulate_iteration(machine, dec, FIVE_POINT, T_FLOP)
            assert res.cycle_time == pytest.approx(5 * 256 * T_FLOP)

    def test_unknown_machine_rejected(self):
        class Weird:
            name = "weird"

        dec = decomposition_for(16, 2, "strip")
        with pytest.raises(SimulationError, match="no simulator"):
            simulate_iteration(Weird(), dec, FIVE_POINT, T_FLOP)

    def test_unknown_bus_mode_rejected(self):
        dec = decomposition_for(16, 2, "strip")
        with pytest.raises(SimulationError, match="unknown bus scheduling"):
            simulate_iteration(
                SynchronousBus(b=1e-6), dec, FIVE_POINT, T_FLOP, mode="psychic"
            )


class TestAgainstModel:
    def test_hypercube_strips_match_model_closely(self):
        """Equal strips, interior volumes: simulation == model formula."""
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        dec = decomposition_for(32, 4, "strip")
        res = simulate_iteration(cube, dec, FIVE_POINT, T_FLOP)
        # Model: 4 phases of ceil(32/16)*alpha+beta, plus compute 5*256*T.
        expected = 4 * (2 * 1e-6 + 1e-5) + 5 * 256 * T_FLOP
        assert res.cycle_time == pytest.approx(expected, rel=1e-12)

    def test_sync_bus_barrier_matches_phase_algebra(self):
        bus = SynchronousBus(b=2e-6, c=1e-6)
        dec = decomposition_for(32, 4, "strip")
        res = simulate_iteration(bus, dec, FIVE_POINT, T_FLOP, mode="barrier")
        reads, writes = halo_volumes(dec, FIVE_POINT)
        # Interior strips carry 64 words; FIFO phase ends at sum(words)*b
        # + last requester's own c per word.
        read_phase = sum(reads) * 2e-6 + reads[-2] * 1e-6
        write_phase = sum(writes) * 2e-6 + writes[-2] * 1e-6
        compute = 5 * (32 * 8) * T_FLOP
        assert res.cycle_time == pytest.approx(
            read_phase + compute + write_phase, rel=0.05
        )

    def test_pipelined_bus_never_slower_than_barrier(self):
        bus = SynchronousBus(b=6.1e-6, c=0.0)
        for p in (2, 4, 8):
            dec = decomposition_for(32, p, "block")
            barrier = simulate_iteration(bus, dec, FIVE_POINT, T_FLOP, mode="barrier")
            pipe = simulate_iteration(bus, dec, FIVE_POINT, T_FLOP, mode="pipelined")
            assert pipe.cycle_time <= barrier.cycle_time + 1e-15

    def test_async_bus_never_slower_than_sync(self):
        sync = SynchronousBus(b=6.1e-6, c=0.0)
        asyn = AsynchronousBus(b=6.1e-6, c=0.0)
        for p in (2, 4, 8):
            dec = decomposition_for(32, p, "block")
            s = simulate_iteration(sync, dec, FIVE_POINT, T_FLOP)
            a = simulate_iteration(asyn, dec, FIVE_POINT, T_FLOP)
            assert a.cycle_time <= s.cycle_time + 1e-15

    def test_mesh_dispatches_like_hypercube(self):
        mesh = MeshGrid(alpha=1e-6, beta=1e-5, packet_words=16)
        cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
        dec = decomposition_for(32, 4, "block")
        assert simulate_iteration(mesh, dec, FIVE_POINT, T_FLOP).cycle_time == (
            simulate_iteration(cube, dec, FIVE_POINT, T_FLOP).cycle_time
        )

    def test_banyan_read_phase_plus_compute(self):
        net = BanyanNetwork(w=1e-7)
        dec = decomposition_for(32, 4, "block")
        res = simulate_iteration(net, dec, FIVE_POINT, T_FLOP)
        reads, _ = halo_volumes(dec, FIVE_POINT)
        expected = max(reads) * 2 * 1e-7 * 2 + 5 * 256 * T_FLOP  # 4 ports = 2 stages
        assert res.cycle_time == pytest.approx(expected, rel=1e-12)


class TestResultMetadata:
    def test_result_fields(self):
        bus = SynchronousBus(b=1e-6)
        dec = decomposition_for(16, 4, "strip")
        res = simulate_iteration(bus, dec, FIVE_POINT, T_FLOP)
        assert res.n_processors == 4
        assert res.machine_name == "synchronous-bus"
        assert res.max_compute == pytest.approx(5 * 64 * T_FLOP)
        assert res.total_read_words == sum(res.read_words)
