"""Bus network models: the effective-delay theorem and async draining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.network.bus_sim import (
    BlockRequest,
    WordStream,
    async_write_drain,
    sync_bus_phase,
)


class TestSyncPhase:
    def test_last_processor_sees_effective_delay(self):
        """P equal blocks ready at 0: the last finishes at V·(c + b·P) —
        footnote 3's assumption, here a theorem of FIFO service."""
        b, c, words, P = 2.0, 0.5, 10, 4
        done = sync_bus_phase(
            [BlockRequest(p, words, 0.0) for p in range(P)], b, c
        )
        assert max(done.values()) == pytest.approx(words * (c + b * P))

    def test_first_processor_is_fast(self):
        done = sync_bus_phase(
            [BlockRequest(p, 10, 0.0) for p in range(4)], 2.0, 0.5
        )
        assert done[0] == pytest.approx(10 * (2.0 + 0.5))

    def test_zero_word_processor_completes_at_ready(self):
        done = sync_bus_phase([BlockRequest(0, 0, 3.0)], 1.0, 1.0)
        assert done[0] == 3.0

    def test_staggered_ready_times_pipeline(self):
        # Second request arrives after the first completes: no queueing.
        done = sync_bus_phase(
            [BlockRequest(0, 5, 0.0), BlockRequest(1, 5, 100.0)], 1.0, 0.0
        )
        assert done[1] == pytest.approx(105.0)

    def test_duplicate_processor_rejected(self):
        with pytest.raises(SimulationError, match="duplicate"):
            sync_bus_phase(
                [BlockRequest(0, 5, 0.0), BlockRequest(0, 5, 0.0)], 1.0, 0.0
            )

    @given(
        words=st.integers(min_value=1, max_value=50),
        P=st.integers(min_value=1, max_value=12),
        b=st.floats(min_value=0.1, max_value=5.0),
        c=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=50)
    def test_effective_delay_property(self, words, P, b, c):
        done = sync_bus_phase(
            [BlockRequest(p, words, 0.0) for p in range(P)], b, c
        )
        assert max(done.values()) == pytest.approx(words * (c + b * P))


class TestWordStream:
    def test_word_ready_times(self):
        s = WordStream(processor=0, words=3, start=10.0, interval=2.0)
        assert s.word_ready(0) == 12.0
        assert s.word_ready(2) == 16.0

    def test_out_of_range_rejected(self):
        s = WordStream(processor=0, words=3, start=0.0, interval=1.0)
        with pytest.raises(SimulationError):
            s.word_ready(3)


class TestAsyncDrain:
    def test_empty_streams_drain_instantly(self):
        assert async_write_drain([], 1.0) == 0.0
        assert async_write_drain(
            [WordStream(0, 0, 0.0, 1.0)], 1.0
        ) == 0.0

    def test_slow_production_no_backlog(self):
        """Words arrive slower than the bus serves: drain ends with the
        last word's production plus one service."""
        streams = [WordStream(0, 5, 0.0, 10.0)]
        assert async_write_drain(streams, 1.0) == pytest.approx(51.0)

    def test_fast_production_saturates_bus(self):
        """P streams producing instantly: drain = total words x b."""
        streams = [WordStream(p, 10, 0.0, 1e-9) for p in range(4)]
        assert async_write_drain(streams, 2.0) == pytest.approx(80.0, rel=1e-6)

    def test_backlog_matches_paper_model(self):
        """When the bus is the bottleneck the drain time approaches
        b·B_total — the asynchronous bus equation's max() argument."""
        b = 3.0
        point_time = 1.0  # words produced every 1.0, bus needs 3.0 each
        streams = [WordStream(p, 20, 0.0, point_time) for p in range(5)]
        drain = async_write_drain(streams, b)
        assert drain == pytest.approx(b * 100, rel=0.02)
