"""HTTP/1.1 pipelining through ``ServiceClient.compute_many``.

Pipelining is only worth having if it is invisible except in the
timing: the results must be bit-identical to sequential ``compute()``
calls, in request order, against either backend, whatever the
client-side depth or the server-side ``max_pipeline`` cap.  These
tests pin that, plus the failure surface — a rejected request raises
naming its index without poisoning the connection, and a stale pooled
socket replays the whole batch invisibly (``/v1/compute`` is pure).
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.service import AsyncSweepServer, ServiceClient, ServiceError, SweepServer
from repro.service.schema import allocation_payload

BACKENDS = {"thread": SweepServer, "asyncio": AsyncSweepServer}
SIDES = list(range(64, 256, 16))


def _payloads(count: int) -> list[dict]:
    """``count`` distinguishable requests: each has a different curve length."""
    return [
        allocation_payload("paper-bus", "5-point", "square", SIDES[: 2 + index % 10])
        for index in range(count)
    ]


def _assert_same_arrays(ours: dict, theirs: dict) -> None:
    assert sorted(ours) == sorted(theirs)
    for name in ours:
        assert ours[name].tobytes() == theirs[name].tobytes()


@pytest.fixture(params=sorted(BACKENDS))
def server(request):
    with BACKENDS[request.param](port=0, batch_window_s=0.0) as srv:
        yield srv


class TestPipelinedResults:
    def test_depth_one_is_the_sequential_path(self, server):
        client = ServiceClient(server.url)
        payloads = _payloads(3)
        results = client.compute_many(payloads, pipeline=1)
        expected = [client.compute(p) for p in payloads]
        for ours, theirs in zip(results, expected):
            _assert_same_arrays(ours, theirs)

    def test_pipelined_results_are_bit_identical_to_sequential(self, server):
        client = ServiceClient(server.url, pipeline=8)
        payloads = _payloads(12)
        pipelined = client.compute_many(payloads)
        sequential = [client.compute(p) for p in payloads]
        for ours, theirs in zip(pipelined, sequential):
            _assert_same_arrays(ours, theirs)

    def test_responses_come_back_in_request_order(self, server):
        # Each payload has a distinct curve length, so a reordered
        # response stream cannot masquerade as correct.
        client = ServiceClient(server.url)
        payloads = _payloads(10)
        results = client.compute_many(payloads, pipeline=10)
        for payload, arrays in zip(payloads, results):
            assert arrays["speedup"].shape == (len(payload["grid_sides"]),)

    def test_frame_protocol_is_used_on_the_pipelined_path(self, server):
        client = ServiceClient(server.url)
        client.compute_many(_payloads(4), pipeline=4)
        assert client.last_protocol == "frame"


class TestDepthVersusServerCap:
    def test_client_depth_beyond_server_max_pipeline_still_drains(self):
        # A 32-deep client burst against a server that pauses reading
        # at 4 queued responses: backpressure (pause_reading/resume)
        # must stall the writer, not deadlock or drop requests.
        with AsyncSweepServer(port=0, max_pipeline=4, batch_window_s=0.0) as srv:
            client = ServiceClient(srv.url)
            payloads = _payloads(32)
            results = client.compute_many(payloads, pipeline=32)
            assert len(results) == 32
            for payload, arrays in zip(payloads, results):
                assert arrays["speedup"].shape == (len(payload["grid_sides"]),)


class TestPipelineFailures:
    def test_rejected_request_names_its_index(self, server):
        payloads = _payloads(5)
        payloads[2] = {"kind": "allocation_curve", "machine": "no-such-machine"}
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError, match="pipelined request 2 of 5"):
            client.compute_many(payloads, pipeline=5)
        # A 400 is an application answer, not a transport failure: the
        # keep-alive connection survives and the client keeps working.
        assert client.health()["status"] == "ok"
        good = _payloads(3)
        assert len(client.compute_many(good, pipeline=3)) == 3

    def test_stale_pooled_socket_replays_the_whole_batch(self, server):
        client = ServiceClient(server.url, retries=0)
        client.compute_many(_payloads(2), pipeline=2)  # park a pooled socket
        with client._pool._lock:
            (idle,) = client._pool._idle
        assert idle.sock is not None
        idle.sock.shutdown(socket.SHUT_RDWR)  # the server "timed it out"
        payloads = _payloads(4)
        results = client.compute_many(payloads, pipeline=4)  # replays, 0 retries
        sequential = [client.compute(p) for p in payloads]
        for ours, theirs in zip(results, sequential):
            _assert_same_arrays(ours, theirs)

    def test_empty_batch_is_a_no_op(self, server):
        assert ServiceClient(server.url).compute_many([]) == []


class TestWarmHitsStayWarm:
    def test_pipelined_repeats_hit_the_cache(self, server):
        client = ServiceClient(server.url)
        payload = allocation_payload("paper-bus", "5-point", "square", SIDES)
        client.compute(payload)  # seed
        before = client.stats()["counters"]["hits"]
        results = client.compute_many([payload] * 16, pipeline=16)
        after = client.stats()["counters"]["hits"]
        assert after - before == 16
        reference = client.compute(payload)
        for arrays in results:
            _assert_same_arrays(arrays, reference)
