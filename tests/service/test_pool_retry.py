"""Connection pooling and retry against a deliberately flaky server.

The keep-alive pool's failure modes are all timing-shaped — a server
that closed an idle socket, a connection reset mid-restart, a daemon
that drops the first N connection attempts — so these tests build
in-process servers that misbehave *on demand* and pin the client
contract: stale sockets are replayed invisibly, transient errors are
retried with bounded backoff on the idempotent surface, and PUTs are
never retried unless the caller opts in.
"""

from __future__ import annotations

import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.service import RemoteSweepCache, ServiceClient, ServiceError, SweepServer

SIDES = list(range(64, 256, 16))


class _FlakyServer(ThreadingHTTPServer):
    """An HTTP server whose next N connections die before a response.

    ``fail_connections(n)`` arms it: the next ``n`` accepted
    connections are closed immediately (the client sees a reset or an
    empty status line — exactly what a crashing or restarting daemon
    produces).  Requests and connection attempts are counted so tests
    can assert how many times the client actually knocked.
    """

    daemon_threads = True

    def __init__(self, handler) -> None:
        super().__init__(("127.0.0.1", 0), handler)
        self.lock = threading.Lock()
        self.fail_budget = 0  # guarded-by: lock
        self.connections = 0  # guarded-by: lock
        self.requests = 0  # guarded-by: lock

    def fail_connections(self, n: int) -> None:
        with self.lock:
            self.fail_budget = n

    def count_request(self) -> None:
        with self.lock:
            self.requests += 1

    def process_request(self, request, client_address):
        with self.lock:
            self.connections += 1
            drop = self.fail_budget > 0
            if drop:
                self.fail_budget -= 1
        if drop:
            self.shutdown_request(request)
            return
        super().process_request(request, client_address)

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server_address[1]}"


class _OkHandler(BaseHTTPRequestHandler):
    """Answers every route with a tiny JSON body, keep-alive."""

    protocol_version = "HTTP/1.1"
    close_after_response = False  # claim keep-alive, then hang up anyway

    def log_message(self, format, *args):
        pass

    def _respond(self):
        self.server.count_request()
        body = b'{"status": "ok"}'
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        if self.close_after_response:
            # Close without having advertised Connection: close — the
            # client's pooled socket goes stale, as after a keep-alive
            # timeout.
            self.close_connection = True

    do_GET = do_POST = do_PUT = _respond


class _OneShotHandler(_OkHandler):
    close_after_response = True


@pytest.fixture()
def flaky():
    server = _FlakyServer(_OkHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture()
def oneshot():
    server = _FlakyServer(_OneShotHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


class TestStaleSocketReplay:
    def test_stale_keepalive_socket_is_replayed_invisibly(self, oneshot):
        # Every response leaves the pooled socket secretly dead; each
        # subsequent request must notice and replay on a fresh
        # connection without surfacing an error or consuming retries.
        client = ServiceClient(oneshot.url, retries=0)
        for _ in range(4):
            assert client.health()["status"] == "ok"
        with oneshot.lock:
            assert oneshot.requests == 4

    def test_healthy_keepalive_reuses_one_connection(self, flaky):
        client = ServiceClient(flaky.url)
        for _ in range(5):
            client.health()
        with flaky.lock:
            assert flaky.connections == 1
            assert flaky.requests == 5


class TestTransientRetry:
    def test_dropped_connections_are_retried_with_backoff(self, flaky):
        flaky.fail_connections(2)
        client = ServiceClient(flaky.url, retries=3, backoff_s=0.01)
        assert client.health()["status"] == "ok"
        with flaky.lock:
            assert flaky.connections == 3  # 2 drops + 1 success
            assert flaky.requests == 1

    def test_retry_budget_exhausted_raises_service_error(self, flaky):
        flaky.fail_connections(5)
        client = ServiceClient(flaky.url, retries=1, backoff_s=0.01)
        with pytest.raises(ServiceError, match="unreachable"):
            client.health()
        with flaky.lock:
            assert flaky.connections == 2  # the first try + 1 retry

    def test_retries_zero_fails_on_first_transient_error(self, flaky):
        flaky.fail_connections(1)
        client = ServiceClient(flaky.url, retries=0)
        with pytest.raises(ServiceError, match="unreachable"):
            client.health()

    def test_unreachable_server_still_raises_cleanly(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5, retries=0)
        with pytest.raises(ServiceError, match="unreachable"):
            client.health()


class TestPutPolicy:
    KEY = "a" * 64

    def test_puts_are_not_retried_by_default(self, flaky):
        client = ServiceClient(flaky.url, retries=3, backoff_s=0.01)
        flaky.fail_connections(1)
        with pytest.raises(ServiceError, match="unreachable"):
            client.cache_put(self.KEY, {"x": np.zeros(3)})
        with flaky.lock:
            assert flaky.connections == 1  # exactly one attempt, no retry

    def test_opt_in_retries_non_idempotent_puts(self, flaky):
        client = ServiceClient(
            flaky.url, retries=3, backoff_s=0.01, retry_non_idempotent=True
        )
        flaky.fail_connections(1)
        client.cache_put(self.KEY, {"x": np.zeros(3)})
        with flaky.lock:
            assert flaky.requests == 1

    def test_remote_sweep_cache_opts_in(self, flaky):
        # RemoteSweepCache PUTs are content-addressed, hence replayable;
        # the tier enables retry_non_idempotent for its client.
        cache = RemoteSweepCache(flaky.url)
        assert cache.client.retry_non_idempotent is True


class TestBackoffJitter:
    """Retries back off with full jitter: uniform below an exponential cap.

    Deterministic backoff makes N clients that all lost the daemon at
    the same instant retry at the same instants — a reconnect
    stampede.  The schedule must be random per client, bounded by
    ``backoff_s * 2**attempt``, and exactly reproducible under an
    injected seeded RNG (so these tests, and anyone else pinning retry
    behaviour, stay exact).
    """

    def _recorded_sleeps(self, flaky, monkeypatch, rng) -> list[float]:
        from repro.service import client as client_mod

        sleeps: list[float] = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        flaky.fail_connections(8)
        client = ServiceClient(flaky.url, retries=3, backoff_s=0.05, rng=rng)
        with pytest.raises(ServiceError, match="unreachable"):
            client.health()
        return sleeps

    def test_schedule_is_exact_under_a_seeded_rng(self, flaky, monkeypatch):
        seed = 20260808
        sleeps = self._recorded_sleeps(flaky, monkeypatch, random.Random(seed))
        twin = random.Random(seed)
        assert sleeps == [twin.uniform(0.0, 0.05 * 2.0**i) for i in range(3)]

    def test_every_delay_is_bounded_by_the_exponential_cap(
        self, flaky, monkeypatch
    ):
        sleeps = self._recorded_sleeps(flaky, monkeypatch, random.Random(7))
        assert len(sleeps) == 3  # one per consumed retry
        for attempt, delay in enumerate(sleeps):
            assert 0.0 <= delay <= 0.05 * 2.0**attempt

    def test_differently_seeded_clients_do_not_stampede_in_lockstep(
        self, flaky, monkeypatch
    ):
        first = self._recorded_sleeps(flaky, monkeypatch, random.Random(1))
        second = self._recorded_sleeps(flaky, monkeypatch, random.Random(2))
        assert first != second


class TestAgainstTheRealDaemon:
    def test_pool_survives_concurrent_clients_and_stays_exact(self):
        sides = SIDES
        with SweepServer(port=0) as server:
            shared = ServiceClient(server.url, pool_size=2)
            results = []
            lock = threading.Lock()

            def fire():
                curve = shared.allocation_curve(
                    "paper-bus", "5-point", "square", sides, integer=True
                )
                with lock:
                    results.append(curve)

            threads = [threading.Thread(target=fire) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 8
            for curve in results[1:]:
                assert curve.speedup.tobytes() == results[0].speedup.tobytes()

    def test_client_close_drops_pooled_connections(self):
        with SweepServer(port=0) as server:
            client = ServiceClient(server.url)
            client.health()
            client.close()
            # The pool refills transparently afterwards.
            assert client.health()["status"] == "ok"
