"""The sweep service: wire fidelity, coalescing, batching, bounds."""

import threading
from collections import Counter

import numpy as np
import pytest

from repro.batch import optimal_allocation_curve, run_sweep, SweepSpec
from repro.machines.catalog import DEFAULT_MACHINES, FLEX32, PAPER_BUS
from repro.service import (
    AsyncSweepServer,
    RemoteSweepCache,
    ServiceClient,
    ServiceError,
    SweepServer,
)
from repro.service.schema import decode_arrays, encode_arrays
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

SQUARE = PartitionKind.SQUARE
SIDES = list(range(64, 512, 16))

BACKENDS = {"thread": SweepServer, "asyncio": AsyncSweepServer}


# The whole suite runs against BOTH transports: every behaviour below —
# wire fidelity, coalescing, micro-batching, bounds, the shared-store
# tier — is a property of the shared ServiceCore, and the backends must
# be indistinguishable through it.
@pytest.fixture(params=sorted(BACKENDS))
def server(request):
    with BACKENDS[request.param](port=0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.url)


class TestSchema:
    def test_arrays_round_trip_bit_exact(self):
        arrays = {
            "floats": np.array([1.0, -0.0, 1e-300, np.pi]),
            "ints": np.arange(7, dtype=np.int64),
            "strings": np.asarray(["one", "interior", "all"]),
            "matrix": np.arange(6.0).reshape(2, 3),
        }
        decoded = decode_arrays(encode_arrays(arrays))
        assert set(decoded) == set(arrays)
        for name in arrays:
            assert decoded[name].dtype == arrays[name].dtype
            np.testing.assert_array_equal(decoded[name], arrays[name])
        # -0.0 keeps its sign bit through the wire.
        assert np.signbit(decoded["floats"][1])


class TestHealthAndStats:
    def test_health(self, client):
        assert client.health()["status"] == "ok"

    def test_stats_counters_present(self, client):
        stats = client.stats()
        assert stats["counters"]["requests"] == 0
        assert stats["cache"]["misses"] == 0
        assert "dedup_ratio" in stats

    def test_stats_surface_planner_counters(self, client):
        client.allocation_curve("paper-bus", "5-point", "square", SIDES)
        stats = client.stats()
        assert stats["planner"]["nodes_planned"] >= 1
        assert stats["planner"]["executor_runs"] == {"numpy": 1}
        assert "siblings_fused" in stats["planner"]
        assert "subgraphs_deduped" in stats["planner"]


class TestAllocationRequests:
    def test_served_curve_is_bit_identical(self, client):
        curve = client.allocation_curve(
            "paper-bus", "5-point", "square", SIDES, integer=True
        )
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True
        )
        np.testing.assert_array_equal(curve.speedup, direct.speedup)
        np.testing.assert_array_equal(curve.cycle_time, direct.cycle_time)
        np.testing.assert_array_equal(curve.processors, direct.processors)
        np.testing.assert_array_equal(curve.area, direct.area)
        assert curve.regime == direct.regime
        assert client.last_served == "computed"

    def test_repeat_is_a_memory_hit(self, client):
        client.allocation_curve("paper-bus", "5-point", "square", SIDES)
        client.allocation_curve("paper-bus", "5-point", "square", SIDES)
        assert client.last_served == "memory"

    def test_closed_form_presets_share_entries(self, server, client):
        # Warm the daemon's store with the *read_only twin* of paper-bus
        # (doubled constants, same closed form) through the shared-store
        # tier; the daemon must then serve the paper-bus request itself
        # from cache — cross-preset dedup at the service layer.
        from repro.batch.analysis import _allocation_request, _compute_allocation_curve
        from repro.core.parameters import DEFAULT_T_FLOP
        from repro.machines.bus import SynchronousBus

        twin = SynchronousBus(b=2 * PAPER_BUS.b, c=0.0, volume_mode="read_only")
        sides_arr = np.asarray(SIDES, dtype=float)
        remote = RemoteSweepCache(server.url)
        remote.get_or_compute(
            _allocation_request(
                twin, FIVE_POINT, SQUARE, sides_arr, DEFAULT_T_FLOP, None, True
            ),
            lambda: _compute_allocation_curve(
                twin, FIVE_POINT, SQUARE, sides_arr, DEFAULT_T_FLOP, None, True
            ).to_arrays(),
        )
        curve = client.allocation_curve(
            "paper-bus", "5-point", "square", SIDES, integer=True
        )
        assert client.last_served in ("memory", "disk")  # no recompute
        direct = optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, SQUARE, SIDES, integer=True
        )
        np.testing.assert_array_equal(curve.speedup, direct.speedup)
        np.testing.assert_array_equal(curve.cycle_time, direct.cycle_time)
        assert curve.regime == direct.regime

    def test_unknown_machine_is_a_400(self, client):
        with pytest.raises(ServiceError, match="unknown machine"):
            client.allocation_curve("cray-1", "5-point", "square", SIDES)

    def test_invalid_axes_are_rejected_not_served(self, client):
        with pytest.raises(ServiceError, match=">= 1"):
            client.allocation_curve("paper-bus", "5-point", "square", [-5, 10])
        with pytest.raises(ServiceError, match=">= 1"):
            client.allocation_curve("paper-bus", "5-point", "square", [0])
        with pytest.raises(ServiceError, match=">= 1"):
            client.plan("paper-bus", 0)
        # Nothing bogus was cached or computed along the way.
        assert client.stats()["cache"]["misses"] == 0

    def test_unknown_kind_is_a_400(self, client):
        with pytest.raises(ServiceError, match="unknown request kind"):
            client.compute({"kind": "frobnicate"})


class TestCoalescing:
    def test_concurrent_identical_requests_compute_once(self, server):
        outcomes: list[str] = []
        lock = threading.Lock()

        def fire():
            c = ServiceClient(server.url)
            c.allocation_curve(
                "paper-bus", "9-point-box", "strip", list(range(32, 1500, 2)),
                integer=True,
            )
            with lock:
                outcomes.append(c.last_served)

        threads = [threading.Thread(target=fire) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts = Counter(outcomes)
        assert counts["computed"] == 1
        assert sum(counts.values()) == 8
        # Everyone else was deduplicated: coalesced on the in-flight
        # entry or served from the store the one compute filled.
        assert counts["coalesced"] + counts["memory"] + counts["disk"] == 7

    def test_micro_batch_compatible_axes_one_compute(self, server):
        outcomes: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def fire(lo: int):
            barrier.wait()
            c = ServiceClient(server.url)
            c.allocation_curve(
                "flex32", "5-point", "square", list(range(lo, lo + 200))
            )
            with lock:
                outcomes.append(c.last_served)

        threads = [
            threading.Thread(target=fire, args=(100 + 17 * i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts = Counter(outcomes)
        assert counts["computed"] >= 1
        assert counts["batched"] >= 1  # at least one rider merged onto it

    def test_micro_batch_compatible_sweeps_one_compute(self, server):
        # Satellite of the planner rewrite: the micro-batcher is no
        # longer allocation-only — compatible *sweep* requests (same
        # processors/machines/stencil/kind, different grid axes) ride
        # one fused evaluation too.
        outcomes: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(6)

        def fire(lo: int):
            barrier.wait()
            c = ServiceClient(server.url)
            c.sweep(
                list(range(lo, lo + 120)), [1.0, 4.0, 16.0], ["ipsc", "paper-bus"]
            )
            with lock:
                outcomes.append(c.last_served)

        threads = [
            threading.Thread(target=fire, args=(64 + 13 * i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts = Counter(outcomes)
        assert counts["computed"] >= 1
        assert counts["batched"] >= 1  # at least one rider merged onto it

        # Every batched slice is bit-identical to a direct evaluation.
        verifier = ServiceClient(server.url)
        for i in range(6):
            lo = 64 + 13 * i
            sides = list(range(lo, lo + 120))
            surfaces = verifier.sweep(sides, [1.0, 4.0, 16.0], ["ipsc", "paper-bus"])
            assert verifier.last_served in ("memory", "disk")
            direct = run_sweep(
                SweepSpec.across_catalog(
                    sides, [1.0, 4.0, 16.0], machines=["ipsc", "paper-bus"]
                )
            )
            for name in ("ipsc", "paper-bus"):
                np.testing.assert_array_equal(surfaces[name], direct.cycle_time(name))

    def test_batched_slices_equal_direct_computation(self, server):
        barrier = threading.Barrier(4)

        def fire(lo: int):
            barrier.wait()
            ServiceClient(server.url).allocation_curve(
                "flex32", "9-point-box", "square", list(range(lo, lo + 150))
            )

        threads = [threading.Thread(target=fire, args=(64 + 31 * i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        verifier = ServiceClient(server.url)
        for i in range(4):
            lo = 64 + 31 * i
            served = verifier.allocation_curve(
                "flex32", "9-point-box", "square", list(range(lo, lo + 150))
            )
            assert verifier.last_served in ("memory", "disk")
            direct = optimal_allocation_curve(
                FLEX32, NINE_POINT_BOX, SQUARE, list(range(lo, lo + 150))
            )
            np.testing.assert_array_equal(served.speedup, direct.speedup)
            np.testing.assert_array_equal(served.cycle_time, direct.cycle_time)
            assert served.regime == direct.regime


class TestPlanAndSweep:
    def test_plan_arrays(self, client):
        plan = client.plan("paper-bus", 256)
        assert plan["max_useful"].shape[1] == 2
        assert plan["default_sides"].shape == (3,)
        # The Section-6.1 anchor: ~14 processors on 256x256 squares.
        stencils = [str(s) for s in plan["stencils"]]
        row = stencils.index("5-point")
        assert round(plan["max_useful"][row, 1].item(), 1) == 14.0

    def test_plan_grid_mode(self, client):
        plan = client.plan("paper-bus", 256, grid=[2, 4, 8, 16])
        assert plan["grid_strip"].shape == (4,)
        assert plan["grid_square"].shape == (4,)

    def test_plan_rejects_non_bus(self, client):
        with pytest.raises(ServiceError, match="not a bus"):
            client.plan("ipsc", 256)

    def test_sweep_surfaces_match_run_sweep(self, client):
        surfaces = client.sweep(
            [64, 128, 256], [1.0, 4.0, 16.0], ["ipsc", "paper-bus"]
        )
        spec = SweepSpec.across_catalog(
            [64, 128, 256], [1.0, 4.0, 16.0], machines=["ipsc", "paper-bus"]
        )
        direct = run_sweep(spec)
        for name in ("ipsc", "paper-bus"):
            np.testing.assert_array_equal(surfaces[name], direct.cycle_time(name))


class TestSimRequests:
    def test_sim_sweep_is_bit_identical_to_offline(self, client):
        from repro.batch.sim import ReplicaBatchSpec, simulate_replicas

        served = client.sim_sweep(
            "paper-bus", 32, 4, replicas=16, seed=5, jitter=0.1
        )
        spec = ReplicaBatchSpec.monte_carlo(
            PAPER_BUS, FIVE_POINT, SQUARE, 32, 4, 16, seed=5, jitter=0.1
        )
        offline = simulate_replicas(spec).to_arrays()
        assert sorted(served) == sorted(offline)
        for name in offline:
            np.testing.assert_array_equal(served[name], offline[name])
            assert served[name].dtype == offline[name].dtype
        assert client.last_served == "computed"

    def test_sim_sweep_explicit_seeds(self, client):
        from repro.batch.sim import ReplicaBatchSpec, simulate_replicas

        seeds = [3, 99, 2**63, 2**64 - 1]
        served = client.sim_sweep("ipsc", 24, 9, seeds=seeds, jitter=0.25)
        spec = ReplicaBatchSpec.build(
            DEFAULT_MACHINES["ipsc"], FIVE_POINT, SQUARE, 24, 9, seeds,
            jitter=0.25,
        )
        offline = simulate_replicas(spec).to_arrays()
        np.testing.assert_array_equal(served["cycle_times"], offline["cycle_times"])
        np.testing.assert_array_equal(served["seeds"], offline["seeds"])

    def test_sim_validate_matches_offline(self, client):
        from repro.sim.validate import validation_arrays

        served = client.sim_validate("paper-bus", 24, [1, 2, 4, 8])
        offline = validation_arrays(PAPER_BUS, FIVE_POINT, 24, [1, 2, 4, 8], SQUARE)
        assert sorted(served) == sorted(offline)
        for name in offline:
            np.testing.assert_array_equal(served[name], offline[name])

    def test_repeat_sim_is_a_memory_hit(self, client):
        client.sim_sweep("flex32", 20, 4, replicas=8)
        client.sim_sweep("flex32", 20, 4, replicas=8)
        assert client.last_served == "memory"

    def test_sim_counter_and_kinds_surface(self, client):
        assert "sim_sweep" in client.health()["kinds"]
        assert "sim_validate" in client.health()["kinds"]
        client.sim_sweep("paper-bus", 16, 4, replicas=4)
        client.sim_validate("paper-bus", 16, [1, 2])
        assert client.stats()["counters"]["sim"] == 2

    def test_bad_sim_requests_are_400s(self, client):
        with pytest.raises(ServiceError, match="unknown machine"):
            client.sim_sweep("cray-1", 16, 4, replicas=2)
        with pytest.raises(ServiceError, match=">= 1"):
            client.sim_sweep("paper-bus", 0, 4, replicas=2)
        with pytest.raises(ServiceError, match="seeds"):
            client.sim_sweep("paper-bus", 16, 4, seeds=[])
        with pytest.raises(ServiceError, match="jitter"):
            client.sim_sweep("paper-bus", 16, 4, replicas=2, jitter=1.5)
        with pytest.raises(ServiceError, match="mode"):
            client.sim_sweep("paper-bus", 16, 4, replicas=2, mode="warp")
        with pytest.raises(ServiceError, match="processors"):
            client.sim_validate("paper-bus", 16, [])
        # Nothing bogus was cached or computed along the way.
        assert client.stats()["cache"]["misses"] == 0


class TestSharedStoreTier:
    def test_cache_put_then_get_round_trip(self, client):
        key = "f" * 64
        arrays = {"x": np.linspace(0, 1, 17), "names": np.asarray(["a", "b"])}
        client.cache_put(key, arrays)
        back = client.cache_get(key)
        np.testing.assert_array_equal(back["x"], arrays["x"])
        np.testing.assert_array_equal(back["names"], arrays["names"])

    def test_cache_get_missing_is_none(self, client):
        assert client.cache_get("0" * 64) is None

    def test_malformed_keys_are_rejected(self, client):
        with pytest.raises(ServiceError):
            client.cache_put("../../etc/passwd", {"x": np.zeros(1)})

    def test_remote_sweep_cache_shares_across_processes_worth_of_instances(
        self, server
    ):
        first = RemoteSweepCache(server.url)
        value = first.get_or_compute(("req", 1), lambda: {"x": np.arange(4.0)})
        assert first.stats.misses == 1
        second = RemoteSweepCache(server.url)  # a different "process"
        served = second.get_or_compute(
            ("req", 1), lambda: pytest.fail("must be served remotely")
        )
        np.testing.assert_array_equal(served["x"], value["x"])
        # The remote tier counts as the disk level in local stats, so
        # multi-process reports aggregate true hit totals.
        assert second.stats.snapshot()["disk_hits"] == 1
        assert second.stats.snapshot()["misses"] == 0


class TestBoundedServerCache:
    def test_eviction_keeps_store_under_bound(self, tmp_path):
        bound_mb = 0.004  # ~4 KiB: one ~2.4 KiB allocation entry, never two
        with SweepServer(port=0, cache_dir=str(tmp_path), max_cache_mb=bound_mb) as srv:
            c = ServiceClient(srv.url)
            for lo in (64, 128, 256, 512):
                c.allocation_curve(
                    "paper-bus", "5-point", "square", list(range(lo, lo + 8))
                )
            total = sum(p.stat().st_size for p in tmp_path.glob("*.npz"))
            assert total <= int(bound_mb * 2**20)
            assert c.stats()["cache"]["disk_evictions"] > 0

    def test_responses_survive_eviction_pressure(self, tmp_path):
        with SweepServer(
            port=0, cache_dir=str(tmp_path), max_cache_mb=0.002
        ) as srv:
            c = ServiceClient(srv.url)
            curve = c.allocation_curve(
                "paper-bus", "5-point", "square", list(range(64, 72))
            )
            direct = optimal_allocation_curve(
                PAPER_BUS, FIVE_POINT, SQUARE, list(range(64, 72))
            )
            np.testing.assert_array_equal(curve.speedup, direct.speedup)


class TestUnreachableServer:
    def test_connection_error_is_a_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="unreachable"):
            client.health()
