"""The asyncio transport: parser, timeouts, drains, cross-backend parity.

The asyncio backend's contract is that it is *indistinguishable* from
the threaded backend through the HTTP surface — byte-identical bodies,
identical counters — while owning every socket from one event loop.
These tests pin the parser (partial reads, pipelined buffers,
malformed input), the slowloris read timeout on both backends, the
graceful-shutdown drain (a slow request racing shutdown finishes; new
requests 503), connection scalability without threads, and explicit
byte parity across backends for every request kind and protocol.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.batch.cache import SweepCache
from repro.service import AsyncSweepServer, ServiceClient, SweepServer
from repro.service.aserver import _HttpError, _RequestParser
from repro.service.frame import FRAME_CONTENT_TYPE
from repro.service.schema import (
    allocation_payload,
    plan_payload,
    sim_sweep_payload,
    sim_validate_payload,
    sweep_payload,
)

BACKENDS = {"thread": SweepServer, "asyncio": AsyncSweepServer}
SIDES = list(range(64, 256, 16))


def _recv_all(sock: socket.socket, timeout: float = 5.0) -> bytes:
    """Read until the peer closes (or the timeout trips)."""
    sock.settimeout(timeout)
    chunks = []
    while True:
        try:
            chunk = sock.recv(65536)
        except (TimeoutError, OSError):
            break
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


def _http(method: str, path: str, body: bytes = b"", headers: str = "") -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n{headers}"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    ).encode() + body


# --------------------------------------------------------------------------
# The incremental parser
# --------------------------------------------------------------------------


class TestRequestParser:
    REQUEST = (
        b"POST /v1/compute HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n"
        b"Content-Length: 7\r\n\r\n{\"a\":1}"
    )

    def test_whole_request_in_one_feed(self):
        (req,) = _RequestParser().feed(self.REQUEST)
        assert req.method == "POST"
        assert req.path == "/v1/compute"
        assert req.headers["content-type"] == "application/json"
        assert req.body == b'{"a":1}'
        assert req.close is False

    def test_byte_at_a_time_feed(self):
        parser = _RequestParser()
        collected = []
        for index in range(len(self.REQUEST)):
            collected += parser.feed(self.REQUEST[index : index + 1])
            # Mid-request state is visible (the slowloris detector).
            if not collected:
                assert parser.mid_request
        (req,) = collected
        assert req.body == b'{"a":1}'
        assert not parser.mid_request

    def test_three_pipelined_requests_in_one_buffer_plus_a_tail(self):
        tail = b"GET /healthz HTTP/1.1\r\nHo"  # start of a fourth request
        requests = _RequestParser().feed(self.REQUEST * 3 + tail)
        assert len(requests) == 3
        assert all(r.body == b'{"a":1}' for r in requests)

    def test_body_split_across_feeds(self):
        parser = _RequestParser()
        head, rest = self.REQUEST[:-4], self.REQUEST[-4:]
        assert parser.feed(head) == []
        (req,) = parser.feed(rest)
        assert req.body == b'{"a":1}'

    def test_connection_close_and_http10_semantics(self):
        (req,) = _RequestParser().feed(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert req.close is True
        (req,) = _RequestParser().feed(b"GET / HTTP/1.0\r\n\r\n")
        assert req.close is True
        (req,) = _RequestParser().feed(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        )
        assert req.close is False

    @pytest.mark.parametrize(
        "raw, status",
        [
            (b"NONSENSE\r\n\r\n", 400),
            (b"GET /x SPDY/3\r\n\r\n", 505),
            (b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: -3\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            (b"GET / HTTP/1.1\r\nno colon here\r\n\r\n", 400),
        ],
    )
    def test_malformed_heads_raise_with_the_right_status(self, raw, status):
        with pytest.raises(_HttpError) as err:
            _RequestParser().feed(raw)
        assert err.value.status == status

    def test_oversized_head_is_rejected_431(self):
        parser = _RequestParser()
        with pytest.raises(_HttpError) as err:
            parser.feed(b"GET / HTTP/1.1\r\nX-Pad: " + b"a" * 70_000)
        assert err.value.status == 431


# --------------------------------------------------------------------------
# Read timeouts (slowloris) — both backends
# --------------------------------------------------------------------------


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestReadTimeout:
    def test_healthz_advertises_backend_and_timeout(self, backend):
        with BACKENDS[backend](port=0, read_timeout_s=12.5) as server:
            health = ServiceClient(server.url).health()
            assert health["backend"] == backend
            assert health["read_timeout_s"] == 12.5

    def test_half_a_request_head_then_stall_gets_disconnected(self, backend):
        with BACKENDS[backend](port=0, read_timeout_s=0.5) as server:
            with socket.create_connection((server.host, server.port)) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: stall")  # ...and stop
                start = time.monotonic()
                data = _recv_all(sock, timeout=10.0)
                elapsed = time.monotonic() - start
            # The server hung up on its own — well before the 10 s the
            # reader was willing to wait, and not before the timeout.
            assert elapsed < 5.0
            # Whatever was sent first (the asyncio backend sends a 408
            # courtesy response), the connection ended.
            if data:
                assert b"408" in data.split(b"\r\n", 1)[0]

    def test_idle_keepalive_connection_is_reaped(self, backend):
        with BACKENDS[backend](port=0, read_timeout_s=0.5) as server:
            with socket.create_connection((server.host, server.port)) as sock:
                sock.sendall(
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"
                )
                start = time.monotonic()
                data = _recv_all(sock, timeout=10.0)
                elapsed = time.monotonic() - start
            assert b"200" in data.split(b"\r\n", 1)[0]  # the request was served
            assert elapsed < 5.0  # ...and the idle socket reaped after it


# --------------------------------------------------------------------------
# Graceful shutdown
# --------------------------------------------------------------------------


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestGracefulShutdown:
    def test_slow_request_racing_shutdown_still_completes(self, backend, monkeypatch):
        server = BACKENDS[backend](port=0, batch_window_s=0.0).start_background()
        try:
            slow_started = threading.Event()
            real = server.compute_with_key

            def slow(payload):
                slow_started.set()
                time.sleep(0.5)
                return real(payload)

            monkeypatch.setattr(server, "compute_with_key", slow)
            client = ServiceClient(server.url)
            result: dict = {}

            def fire():
                result["curve"] = client.allocation_curve(
                    "paper-bus", "5-point", "square", SIDES
                )

            thread = threading.Thread(target=fire)
            thread.start()
            assert slow_started.wait(5.0)
            server.shutdown()  # races the sleeping compute
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            # The in-flight request was drained, not killed: the full,
            # correct response got out before the server exited.
            assert result["curve"].speedup.shape == (len(SIDES),)
        finally:
            server.shutdown()

    def test_draining_server_rejects_new_requests_with_503(self, backend):
        with BACKENDS[backend](port=0) as server:
            assert server.drain(timeout_s=1.0) is True  # nothing in flight
            with socket.create_connection((server.host, server.port)) as sock:
                sock.sendall(_http("GET", "/healthz"))
                data = _recv_all(sock)
            head, _, body = data.partition(b"\r\n\r\n")
            assert b"503" in head.split(b"\r\n", 1)[0]
            assert json.loads(body)["error"] == "server is draining"

    def test_drain_times_out_when_a_request_outlasts_it(self, backend):
        core = BACKENDS[backend](port=0)
        try:
            assert core.begin_request() is True
            start = time.monotonic()
            assert core.drain(timeout_s=0.2) is False
            assert 0.15 <= time.monotonic() - start < 2.0
            core.end_request()
            assert core.drain(timeout_s=1.0) is True
        finally:
            core.close()

    def test_close_flushes_memory_entries_back_to_disk(self, backend, tmp_path):
        server = BACKENDS[backend](
            port=0, cache_dir=str(tmp_path), batch_window_s=0.0
        ).start_background()
        client = ServiceClient(server.url)
        client.allocation_curve("paper-bus", "5-point", "square", SIDES)
        client.close()
        written = list(tmp_path.glob("*.npz"))
        assert written  # store() wrote through at compute time
        for path in written:
            path.unlink()  # simulate a lost disk tier
        server.shutdown()
        assert list(tmp_path.glob("*.npz"))  # close() flushed them back


class TestSweepCacheFlush:
    def test_flush_rewrites_only_missing_disk_entries(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.store("a" * 64, {"x": np.arange(3.0)})
        cache.store("b" * 64, {"y": np.arange(4.0)})
        assert cache.flush() == 0  # store() already wrote through
        (tmp_path / ("a" * 64 + ".npz")).unlink()
        assert cache.flush() == 1
        arrays, level = cache.lookup_level("a" * 64)
        assert level == "memory"
        np.testing.assert_array_equal(arrays["x"], np.arange(3.0))

    def test_memory_only_cache_flushes_nothing(self):
        cache = SweepCache(None)
        cache.store("c" * 64, {"z": np.zeros(2)})
        assert cache.flush() == 0


# --------------------------------------------------------------------------
# Connection scalability: sockets are not threads
# --------------------------------------------------------------------------


class TestConnectionScalability:
    def test_idle_connections_cost_no_threads(self):
        workers = 4
        before = threading.active_count()
        with AsyncSweepServer(port=0, workers=workers) as server:
            sockets = []
            try:
                # A real request first, so the executor is warmed up.
                client = ServiceClient(server.url)
                client.health()
                client.close()
                sockets = [
                    socket.create_connection((server.host, server.port))
                    for _ in range(200)
                ]
                deadline = time.monotonic() + 10.0
                while (
                    server.connection_count < 200 and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                assert server.connection_count >= 200
                # The whole server — loop + executor — added a bounded
                # handful of threads, not one per connection.
                assert threading.active_count() - before <= workers + 3
            finally:
                for sock in sockets:
                    sock.close()


# --------------------------------------------------------------------------
# Cross-backend byte parity
# --------------------------------------------------------------------------


JSON_ACCEPT = "application/json"
FRAME_ACCEPT = f"{FRAME_CONTENT_TYPE}, application/json"

#: The parity request stream: every compute kind, each asked for twice
#: (cold compute, then the warm fast path) under both protocols, plus
#: an invalid request (the error envelope is part of the surface).
PARITY_STREAM = [
    (allocation_payload("paper-bus", "5-point", "square", SIDES), JSON_ACCEPT),
    (allocation_payload("paper-bus", "5-point", "square", SIDES), JSON_ACCEPT),
    (allocation_payload("paper-bus", "5-point", "square", SIDES), FRAME_ACCEPT),
    (allocation_payload("ipsc", "5-point", "strip", SIDES, integer=True), FRAME_ACCEPT),
    (plan_payload("paper-bus", 256), JSON_ACCEPT),
    (plan_payload("paper-bus", 256, [8, 16, 32]), FRAME_ACCEPT),
    (sweep_payload(SIDES, [4, 16], ["paper-bus", "flex32"]), JSON_ACCEPT),
    (sweep_payload(SIDES, [4, 16], ["paper-bus", "flex32"]), FRAME_ACCEPT),
    (sim_sweep_payload("paper-bus", 32, 4, replicas=8, jitter=0.1), JSON_ACCEPT),
    (sim_sweep_payload("paper-bus", 32, 4, replicas=8, jitter=0.1), FRAME_ACCEPT),
    (sim_validate_payload("ipsc", 24, [1, 2, 4, 8]), JSON_ACCEPT),
    (sim_validate_payload("ipsc", 24, [1, 2, 4, 8]), FRAME_ACCEPT),
    ({"kind": "allocation_curve", "machine": "no-such-machine"}, JSON_ACCEPT),
]


def _serve_parity_stream(backend: str) -> tuple[list[tuple], dict]:
    """The full stream against one backend: raw responses + stats deltas."""
    with BACKENDS[backend](port=0, batch_window_s=0.0) as server:
        client = ServiceClient(server.url)
        responses = []
        for payload, accept in PARITY_STREAM:
            status, ctype, body = client._request(
                "/v1/compute",
                json.dumps(payload).encode(),
                method="POST",
                content_type="application/json",
                accept=accept,
            )
            responses.append((status, ctype, body))
        stats = client.stats()
        client.close()
    counters = {
        "counters": stats["counters"],
        "cache": stats["cache"],
        "entries": stats["entries"],
        "dedup_ratio": stats["dedup_ratio"],
    }
    return responses, counters


class TestCrossBackendParity:
    def test_bodies_and_counters_are_identical_across_backends(self):
        thread_responses, thread_counters = _serve_parity_stream("thread")
        asyncio_responses, asyncio_counters = _serve_parity_stream("asyncio")
        assert len(thread_responses) == len(PARITY_STREAM)
        for index, (ours, theirs) in enumerate(
            zip(thread_responses, asyncio_responses)
        ):
            assert ours[0] == theirs[0], f"status diverged at request {index}"
            assert ours[1] == theirs[1], f"content-type diverged at request {index}"
            assert ours[2] == theirs[2], f"body diverged at request {index}"
        # The same stream moved every counter identically: hits,
        # misses, coalesces, planner work — the backends are the same
        # service, not two similar ones.
        assert thread_counters == asyncio_counters

    def test_cache_tier_round_trips_identically(self):
        key = "d" * 64
        arrays = {"curve": np.linspace(0.0, 1.0, 37), "n": np.arange(5)}
        bodies = {}
        for backend in sorted(BACKENDS):
            with BACKENDS[backend](port=0) as server:
                client = ServiceClient(server.url)
                client.cache_put(key, arrays)
                for accept in ("application/octet-stream", FRAME_CONTENT_TYPE):
                    status, ctype, body = client._request(
                        f"/v1/cache/{key}", accept=accept
                    )
                    assert status == 200
                    bodies.setdefault(accept, []).append((ctype, body))
                client.close()
        for accept, pair in bodies.items():
            assert pair[0] == pair[1], f"cache GET diverged for {accept}"
