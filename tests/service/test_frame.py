"""The binary array frame: round trips, parity with base64-JSON, rejection.

The frame is the negotiated fast path, so its contract is the JSON
path's contract: every array the service can serve crosses bit for
bit.  Property tests drive the codec over the dtype zoo (including
layouts the cache never produces — Fortran order, big-endian, strided
views); the parity tests pin the frame's payload bytes to exactly what
the base64 encoding would have carried; the malformed-input tests pin
clean :class:`FrameError` rejections, never a mis-sliced array.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import SweepServer, ServiceClient
from repro.service.frame import (
    FRAME_CONTENT_TYPE,
    FrameError,
    decode_frame,
    encode_frame,
    frame_bytes,
)
from repro.service.schema import decode_arrays, encode_arrays

#: Every dtype the service actually serves (floats, counts, regime and
#: stencil-name strings, flags) plus spares in both widths.
SERVED_DTYPES = ["<f8", "<f4", "<i8", "<i4", "<u2", "|b1", "<c16", "<U8", "|S6"]


def roundtrip(arrays):
    decoded, meta = decode_frame(frame_bytes(arrays))
    assert list(decoded) == list(arrays)
    return decoded, meta


@st.composite
def served_arrays(draw):
    dtype = np.dtype(draw(st.sampled_from(SERVED_DTYPES)))
    shape = tuple(draw(st.lists(st.integers(0, 5), min_size=0, max_size=3)))
    count = int(np.prod(shape)) if shape else 1
    if dtype.kind == "f":
        elems = st.floats(allow_nan=False, width=32 if dtype.itemsize == 4 else 64)
    elif dtype.kind == "c":
        elems = st.complex_numbers(allow_nan=False)
    elif dtype.kind in "iu":
        info = np.iinfo(dtype)
        elems = st.integers(info.min, info.max)
    elif dtype.kind == "b":
        elems = st.booleans()
    elif dtype.kind == "U":
        elems = st.text(max_size=8)
    else:
        elems = st.binary(max_size=6)
    values = draw(st.lists(elems, min_size=count, max_size=count))
    return np.array(values, dtype=dtype).reshape(shape)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(array=served_arrays())
    def test_property_all_served_dtypes_round_trip(self, array):
        decoded, _ = roundtrip({"x": array})
        assert decoded["x"].dtype == array.dtype
        assert decoded["x"].shape == array.shape
        np.testing.assert_array_equal(decoded["x"], array)
        # Bit-for-bit, not just value-equal.
        assert decoded["x"].tobytes() == array.tobytes()

    def test_multiple_arrays_keep_order_and_bits(self):
        arrays = {
            "speedup": np.array([1.0, -0.0, 1e-300, np.pi]),
            "processors": np.arange(7, dtype=np.int64),
            "regime": np.asarray(["one", "interior", "all"]),
            "surface": np.arange(6.0).reshape(2, 3),
            "empty": np.zeros((0, 4)),
        }
        decoded, _ = roundtrip(arrays)
        for name in arrays:
            assert decoded[name].dtype == arrays[name].dtype
            np.testing.assert_array_equal(decoded[name], arrays[name])
        assert np.signbit(decoded["speedup"][1])  # -0.0 keeps its sign bit

    def test_meta_rides_the_header(self):
        decoded, meta = decode_frame(
            frame_bytes({"x": np.arange(3.0)}, {"status": "ok", "served": "memory"})
        )
        assert meta == {"status": "ok", "served": "memory"}
        np.testing.assert_array_equal(decoded["x"], np.arange(3.0))

    def test_fortran_order_input(self):
        array = np.asfortranarray(np.arange(12.0).reshape(3, 4))
        decoded, _ = roundtrip({"x": array})
        np.testing.assert_array_equal(decoded["x"], array)
        assert decoded["x"].flags["C_CONTIGUOUS"]

    def test_non_contiguous_input(self):
        base = np.arange(40.0)
        array = base[::4]
        decoded, _ = roundtrip({"x": array})
        np.testing.assert_array_equal(decoded["x"], array)

    def test_big_endian_input_values_preserved(self):
        array = np.array([1.5, -2.25, 3e10], dtype=">f8")
        decoded, _ = roundtrip({"x": array})
        # Layout is normalized to little-endian; values are exact.
        assert decoded["x"].dtype == np.dtype("<f8")
        np.testing.assert_array_equal(decoded["x"], array.astype("<f8"))

    def test_zero_length_array(self):
        decoded, _ = roundtrip({"x": np.zeros(0, dtype=np.float64)})
        assert decoded["x"].shape == (0,)

    def test_scalar_zero_dim_array(self):
        decoded, _ = roundtrip({"x": np.float64(3.5)[...]})
        assert decoded["x"].shape == ()
        assert decoded["x"].item() == 3.5

    def test_decoded_arrays_are_zero_copy_views(self):
        body = frame_bytes({"x": np.arange(5.0)})
        decoded, _ = decode_frame(body)
        assert not decoded["x"].flags.writeable  # views over the body


class TestParityWithJson:
    @settings(max_examples=60, deadline=None)
    @given(array=served_arrays())
    def test_property_frame_equals_base64_path(self, array):
        via_json = decode_arrays(encode_arrays({"x": array}))["x"]
        via_frame, _ = decode_frame(frame_bytes({"x": array}))
        if array.dtype.byteorder != ">":
            assert via_frame["x"].dtype == via_json.dtype
            assert via_frame["x"].tobytes() == via_json.tobytes()
        np.testing.assert_array_equal(via_frame["x"], via_json)

    def test_payload_bytes_are_exactly_the_base64_decoded_bytes(self):
        import base64

        array = np.linspace(-1, 1, 257)
        json_bytes = base64.b64decode(encode_arrays({"x": array})["x"]["data"])
        chunks = encode_frame({"x": array})
        assert b"".join(bytes(c) for c in chunks[1:]) == json_bytes


class TestMalformed:
    def test_object_dtype_is_rejected_on_encode(self):
        with pytest.raises(FrameError, match="object"):
            frame_bytes({"x": np.array([object()])})

    def test_bad_magic(self):
        with pytest.raises(FrameError, match="magic"):
            decode_frame(b"NOTFRAME" + b"\x00" * 16)

    def test_truncated_body(self):
        body = frame_bytes({"x": np.arange(9.0)})
        with pytest.raises(FrameError):
            decode_frame(body[: len(body) - 5])

    def test_header_length_beyond_body(self):
        import struct

        with pytest.raises(FrameError, match="header length"):
            decode_frame(b"REPROFR1" + struct.pack("<I", 10_000) + b"{}")

    def test_header_not_json(self):
        import struct

        with pytest.raises(FrameError, match="not JSON"):
            decode_frame(b"REPROFR1" + struct.pack("<I", 4) + b"@@@@")

    def test_header_missing_arrays_list(self):
        import struct

        header = b'{"status":"ok"}'
        with pytest.raises(FrameError, match="'arrays' list"):
            decode_frame(b"REPROFR1" + struct.pack("<I", len(header)) + header)

    def _tampered(self, mutate):
        import json as jsonlib
        import struct

        body = bytes(frame_bytes({"x": np.arange(4.0)}))
        (hlen,) = struct.unpack_from("<I", body, 8)
        header = jsonlib.loads(body[12 : 12 + hlen])
        mutate(header["arrays"][0])
        new_header = jsonlib.dumps(header, separators=(",", ":")).encode()
        return b"REPROFR1" + struct.pack("<I", len(new_header)) + new_header + body[12 + hlen :]

    def test_nbytes_disagrees_with_shape(self):
        with pytest.raises(FrameError, match="declares"):
            decode_frame(self._tampered(lambda e: e.update(nbytes=16)))

    def test_negative_shape_rejected(self):
        with pytest.raises(FrameError, match="shape"):
            decode_frame(self._tampered(lambda e: e.update(shape=[-4])))

    def test_garbage_dtype_rejected(self):
        with pytest.raises(FrameError, match="dtype"):
            decode_frame(self._tampered(lambda e: e.update(dtype=[">weird"])))

    def test_object_dtype_header_rejected_on_decode(self):
        with pytest.raises(FrameError, match="object"):
            decode_frame(self._tampered(lambda e: e.update(dtype="O", nbytes=32)))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FrameError, match="trailing"):
            decode_frame(bytes(frame_bytes({"x": np.arange(4.0)})) + b"xx")

    def test_malformed_put_body_is_a_clean_400(self):
        import urllib.request
        import urllib.error

        with SweepServer(port=0) as server:
            request = urllib.request.Request(
                f"{server.url}/v1/cache/{'a' * 64}",
                data=b"REPROFR1garbage",
                method="PUT",
                headers={"Content-Type": FRAME_CONTENT_TYPE},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400
            assert b"malformed frame" in excinfo.value.read()


class TestEndToEnd:
    @pytest.fixture()
    def server(self):
        with SweepServer(port=0) as srv:
            yield srv

    def test_negotiated_frame_matches_forced_json_bitwise(self, server):
        sides = list(range(64, 512, 16))
        binary = ServiceClient(server.url)
        legacy = ServiceClient(server.url, binary=False)
        a = binary.allocation_curve("paper-bus", "5-point", "square", sides, integer=True)
        assert binary.last_protocol == "frame"
        b = legacy.allocation_curve("paper-bus", "5-point", "square", sides, integer=True)
        assert legacy.last_protocol == "json"
        for field in ("speedup", "cycle_time", "processors", "area"):
            left, right = getattr(a, field), getattr(b, field)
            assert left.tobytes() == right.tobytes()
        assert a.regime == b.regime

    def test_json_only_server_falls_back_transparently(self, server, monkeypatch):
        # An "old" daemon: never answers with a frame, whatever Accept
        # says.  The client must detect the JSON Content-Type and fall
        # back without an error — the negotiation contract.
        from repro.service import server as server_mod

        monkeypatch.setattr(
            server_mod.ServiceCore, "_accepts_frame", lambda self, accept: False
        )
        client = ServiceClient(server.url)
        sides = list(range(64, 256, 16))
        curve = client.allocation_curve("paper-bus", "5-point", "square", sides)
        assert client.last_protocol == "json"
        assert curve.speedup.shape == (len(sides),)

    def test_cache_tier_round_trips_frames(self, server):
        client = ServiceClient(server.url)
        key = "e" * 64
        arrays = {"x": np.linspace(0, 1, 33), "names": np.asarray(["a", "bb"])}
        client.cache_put(key, arrays)
        back = client.cache_get(key)
        np.testing.assert_array_equal(back["x"], arrays["x"])
        np.testing.assert_array_equal(back["names"], arrays["names"])

    def test_healthz_advertises_the_frame_protocol(self, server):
        assert "frame" in ServiceClient(server.url).health()["protocols"]
