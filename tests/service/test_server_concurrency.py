"""/v1/stats under concurrent compute traffic: the stats-read race, live.

Regression for the unguarded ``cache.stats`` read the ``lock-discipline``
rule flagged in ``SweepServer.stats_payload``: polling stats while
computes land must always observe a *consistent* snapshot — aggregate
counters that add up — never a torn one.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import ServiceClient, SweepServer

SIDES = list(range(8, 40))


@pytest.fixture
def server():
    with SweepServer(port=0) as srv:
        yield srv


class TestStatsUnderLoad:
    def test_stats_snapshots_stay_consistent_during_computes(self, server):
        stop = threading.Event()
        errors: list[str] = []

        def compute(worker: int) -> None:
            c = ServiceClient(server.url)
            i = 0
            while not stop.is_set():
                # Distinct requests per round so the cache keeps taking
                # misses (and stats keep moving) throughout the poll.
                c.allocation_curve(
                    "paper-bus", "5-point", "square", SIDES[: 8 + (i + worker) % 24]
                )
                i += 1

        def poll() -> None:
            c = ServiceClient(server.url)
            while not stop.is_set():
                stats = c.stats()
                cache = stats["cache"]
                for name in ("memory_hits", "disk_hits", "misses"):
                    if cache[name] < 0:  # pragma: no cover - assert is the point
                        errors.append(f"negative {name}: {cache[name]}")
                counters = stats["counters"]
                # Every request resolves as exactly one of these; a poll
                # landing mid-flight may see fewer resolutions than
                # requests, never more.
                served = (
                    counters["hits"]
                    + counters["computed"]
                    + counters["coalesced"]
                    + counters["batched"]
                )
                if served > counters["requests"]:
                    errors.append(
                        f"torn counters: served {served} > requests "
                        f"{counters['requests']}"
                    )
                if not 0.0 <= stats["dedup_ratio"] <= 1.0:
                    errors.append(f"dedup ratio out of range: {stats['dedup_ratio']}")

        workers = [
            threading.Thread(target=compute, args=(w,)) for w in range(3)
        ] + [threading.Thread(target=poll) for _ in range(2)]
        for t in workers:
            t.start()
        timer = threading.Timer(1.0, stop.set)
        timer.start()
        for t in workers:
            t.join(timeout=30)
        timer.cancel()
        stop.set()

        assert errors == []

        # Quiescent cross-check: the cache's own counters add up to the
        # lookups the server performed on it.
        final = ServiceClient(server.url).stats()["cache"]
        assert final["memory_hits"] >= 0 and final["misses"] > 0

    def test_stats_payload_uses_locked_snapshot(self, server):
        # The handler must go through SweepCache.stats_snapshot() (one
        # consistent copy under the lock), not read .stats fields live.
        payload = server.stats_payload()
        assert set(payload["cache"]) == set(server.cache.stats_snapshot())

    def test_entries_count_matches_locked_len(self, server):
        client = ServiceClient(server.url)
        client.allocation_curve("paper-bus", "5-point", "square", SIDES)
        stats = client.stats()
        assert stats["entries"] == len(server.cache)
