"""Unit tests for the Stencil dataclass: geometry, validation, variants."""

import pytest

from repro.errors import InvalidParameterError
from repro.stencils.stencil import Stencil, stencil_from_offsets


def make(offsets, **kw):
    return Stencil(name="test", offsets=tuple(offsets), **kw)


class TestConstruction:
    def test_default_flops_is_neighbours_plus_one(self):
        s = make([(0, 1), (0, -1), (1, 0), (-1, 0)])
        assert s.flops_per_point == 5.0

    def test_explicit_flops_kept(self):
        s = make([(0, 1)], flops_per_point=7.5)
        assert s.flops_per_point == 7.5

    def test_empty_offsets_rejected(self):
        with pytest.raises(InvalidParameterError, match="no offsets"):
            make([])

    def test_duplicate_offsets_rejected(self):
        with pytest.raises(InvalidParameterError, match="repeats"):
            make([(0, 1), (0, 1)])

    def test_non_integral_offsets_rejected(self):
        with pytest.raises(InvalidParameterError, match="not integral"):
            make([(0.5, 1)])

    def test_negative_flops_rejected(self):
        with pytest.raises(InvalidParameterError, match="positive"):
            make([(0, 1)], flops_per_point=-1.0)

    def test_weights_must_match_offsets(self):
        with pytest.raises(InvalidParameterError, match="not part of the stencil"):
            make([(0, 1)], weights={(1, 1): 0.5})

    def test_helper_constructor(self):
        s = stencil_from_offsets("h", [(0, 1), (1, 0)], flops_per_point=3)
        assert s.name == "h"
        assert s.flops_per_point == 3.0


class TestGeometry:
    def test_reach_rows_and_cols_independent(self):
        s = make([(2, 0), (-2, 0), (0, 1), (0, -1)])
        assert s.reach_rows == 2
        assert s.reach_cols == 1
        assert s.reach == 2

    def test_diagonal_detection(self):
        assert make([(1, 1)]).has_diagonals
        assert not make([(1, 0), (0, 1)]).has_diagonals

    def test_halo_offsets_excludes_center(self):
        s = make([(0, 0), (0, 1)])
        assert s.halo_offsets() == ((0, 1),)

    def test_n_points(self):
        assert make([(0, 1), (1, 0), (0, 0)]).n_points == 3


class TestVariants:
    def test_with_flops_changes_only_flops(self):
        s = make([(0, 1)], flops_per_point=2.0)
        t = s.with_flops(9.0)
        assert t.flops_per_point == 9.0
        assert t.offsets == s.offsets
        assert s.flops_per_point == 2.0  # original untouched

    def test_scaled_multiplies(self):
        s = make([(0, 1)], flops_per_point=4.0)
        assert s.scaled(1.5).flops_per_point == 6.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            make([(0, 1)]).scaled(0.0)

    def test_scaled_custom_name(self):
        assert make([(0, 1)]).scaled(2.0, name="double").name == "double"


class TestAsciiArt:
    def test_five_point_shape(self):
        s = make([(0, 1), (0, -1), (1, 0), (-1, 0)])
        art = s.ascii_art()
        lines = art.splitlines()
        assert len(lines) == 3
        assert lines[1].split()[1] == "+"  # center marker (not in offsets)

    def test_center_in_offsets_marked(self):
        s = make([(0, 0), (0, 1)])
        assert "o" in s.ascii_art()
