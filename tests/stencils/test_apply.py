"""Vectorized stencil application: correctness against direct loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import InvalidParameterError
from repro.stencils.apply import (
    apply_stencil,
    apply_stencil_into,
    ghost_width,
    pad_with_boundary,
    residual_sum_squares,
)
from repro.stencils.library import ALL_STENCILS, FIVE_POINT, NINE_POINT_STAR
from repro.stencils.stencil import Stencil


def reference_apply(stencil: Stencil, field: np.ndarray) -> np.ndarray:
    """Straightforward per-point loop, the obviously-correct baseline."""
    g = stencil.reach
    m = field.shape[0] - 2 * g
    n = field.shape[1] - 2 * g
    out = np.zeros((m, n))
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for (di, dj), w in stencil.weights.items():
                acc += w * field[g + i + di, g + j + dj]
            out[i, j] = acc
    return out


class TestAgainstReference:
    @pytest.mark.parametrize("stencil", ALL_STENCILS, ids=lambda s: s.name)
    def test_matches_loop_implementation(self, stencil):
        rng = np.random.default_rng(42)
        g = ghost_width(stencil)
        field = rng.standard_normal((6 + 2 * g, 5 + 2 * g))
        np.testing.assert_allclose(
            apply_stencil(stencil, field), reference_apply(stencil, field), rtol=1e-13
        )

    @given(
        interior=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=8),
            ),
            elements=st.floats(min_value=-100, max_value=100),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_five_point_property(self, interior):
        field = np.pad(interior, 1)
        np.testing.assert_allclose(
            apply_stencil(FIVE_POINT, field),
            reference_apply(FIVE_POINT, field),
            rtol=1e-12,
            atol=1e-12,
        )


class TestLinearity:
    def test_apply_is_linear(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        lhs = apply_stencil(FIVE_POINT, 2.0 * a + b)
        rhs = 2.0 * apply_stencil(FIVE_POINT, a) + apply_stencil(FIVE_POINT, b)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-12)

    def test_constant_field_preserved(self):
        # Weight sums are 1, so constants are fixed points of every stencil.
        for stencil in ALL_STENCILS:
            g = ghost_width(stencil)
            field = np.full((5 + 2 * g, 5 + 2 * g), 3.25)
            np.testing.assert_allclose(apply_stencil(stencil, field), 3.25, rtol=1e-14)


class TestValidation:
    def test_geometric_stencil_rejected(self):
        bare = Stencil(name="bare", offsets=((0, 1), (0, -1)))
        with pytest.raises(InvalidParameterError, match="geometric-only"):
            apply_stencil(bare, np.zeros((4, 4)))

    def test_too_small_field_rejected(self):
        with pytest.raises(InvalidParameterError, match="too small"):
            apply_stencil(NINE_POINT_STAR, np.zeros((4, 4)))  # needs ghost 2

    def test_wrong_out_shape_rejected(self):
        with pytest.raises(InvalidParameterError, match="expected"):
            apply_stencil_into(FIVE_POINT, np.zeros((6, 6)), np.zeros((3, 3)))


class TestHelpers:
    def test_pad_with_boundary_values(self):
        interior = np.ones((3, 3))
        padded = pad_with_boundary(interior, FIVE_POINT, value=7.0)
        assert padded.shape == (5, 5)
        assert padded[0, 0] == 7.0
        assert padded[2, 2] == 1.0

    def test_residual_sum_squares(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 2.0)
        assert residual_sum_squares(a, b) == pytest.approx(16.0)

    def test_ghost_width_equals_reach(self):
        assert ghost_width(NINE_POINT_STAR) == 2
