"""The built-in stencils: paper values and numerical consistency."""

import pytest

from repro.stencils.library import (
    ALL_STENCILS,
    FIVE_POINT,
    NINE_POINT_BOX,
    NINE_POINT_STAR,
    THIRTEEN_POINT,
    by_name,
)


class TestPointCounts:
    def test_five_point_reads_four_neighbours(self):
        assert FIVE_POINT.n_points == 4  # center not read by Jacobi

    def test_nine_point_box_reads_eight(self):
        assert NINE_POINT_BOX.n_points == 8

    def test_nine_point_star_reads_eight(self):
        assert NINE_POINT_STAR.n_points == 8

    def test_thirteen_point_reads_twelve(self):
        assert THIRTEEN_POINT.n_points == 12


class TestFlopCounts:
    def test_paper_anchored_ratio(self):
        # E(9pt)/E(5pt) = 2 reproduces the Figure-7 anchor (14 vs 22 procs).
        assert NINE_POINT_BOX.flops_per_point / FIVE_POINT.flops_per_point == 2.0

    def test_five_point_is_five_flops(self):
        assert FIVE_POINT.flops_per_point == 5.0


class TestWeights:
    @pytest.mark.parametrize("stencil", ALL_STENCILS, ids=lambda s: s.name)
    def test_weights_sum_to_one(self, stencil):
        # Constant preservation: a consistent Laplace scheme reproduces
        # constants exactly, which requires unit weight sum.
        assert sum(stencil.weights.values()) == pytest.approx(1.0, abs=1e-15)

    @pytest.mark.parametrize("stencil", ALL_STENCILS, ids=lambda s: s.name)
    def test_weights_cover_all_offsets(self, stencil):
        assert set(stencil.weights) == set(stencil.offsets)

    @pytest.mark.parametrize("stencil", ALL_STENCILS, ids=lambda s: s.name)
    def test_rhs_scale_positive(self, stencil):
        assert stencil.rhs_scale > 0

    @pytest.mark.parametrize("stencil", ALL_STENCILS, ids=lambda s: s.name)
    def test_symmetry_under_rotation(self, stencil):
        # All four stencils are 90-degree symmetric: weights invariant
        # under (di, dj) -> (dj, -di).
        for (di, dj), w in stencil.weights.items():
            assert stencil.weights[(dj, -di)] == pytest.approx(w)


class TestDiagonals:
    def test_box_and_thirteen_have_diagonals(self):
        assert NINE_POINT_BOX.has_diagonals
        assert THIRTEEN_POINT.has_diagonals

    def test_stars_have_none(self):
        assert not FIVE_POINT.has_diagonals
        assert not NINE_POINT_STAR.has_diagonals


class TestLookup:
    def test_by_name_roundtrip(self):
        for s in ALL_STENCILS:
            assert by_name(s.name) is s

    def test_by_name_error_lists_known(self):
        with pytest.raises(KeyError, match="5-point"):
            by_name("nope")
