"""k(P, S) classification: the paper's Section-3 table, from geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stencils.library import (
    FIVE_POINT,
    NINE_POINT_BOX,
    NINE_POINT_STAR,
    THIRTEEN_POINT,
)
from repro.stencils.perimeter import (
    PartitionKind,
    boundary_points,
    interior_volume,
    k_table,
    perimeters_required,
)
from repro.stencils.stencil import Stencil

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


class TestPaperTable:
    """The canonical k values (Section 3 table / Figure 3)."""

    @pytest.mark.parametrize(
        "stencil,kind,expected",
        [
            (FIVE_POINT, STRIP, 1),
            (FIVE_POINT, SQUARE, 1),
            (NINE_POINT_BOX, STRIP, 1),
            (NINE_POINT_BOX, SQUARE, 1),
            (NINE_POINT_STAR, STRIP, 2),
            (NINE_POINT_STAR, SQUARE, 2),
            (THIRTEEN_POINT, STRIP, 2),
            (THIRTEEN_POINT, SQUARE, 2),
        ],
        ids=lambda v: getattr(v, "name", getattr(v, "value", v)),
    )
    def test_k_values(self, stencil, kind, expected):
        assert perimeters_required(kind, stencil) == expected

    def test_k_table_covers_all_pairs(self):
        rows = k_table([FIVE_POINT, NINE_POINT_STAR])
        assert len(rows) == 4
        assert {(r.partition, r.stencil) for r in rows} == {
            (STRIP, "5-point"),
            (SQUARE, "5-point"),
            (STRIP, "9-point-star"),
            (SQUARE, "9-point-star"),
        }


class TestGeometricRules:
    def test_strip_ignores_column_reach(self):
        wide = Stencil(name="wide", offsets=((0, 3), (0, -3), (1, 0), (-1, 0)))
        assert perimeters_required(STRIP, wide) == 1
        assert perimeters_required(SQUARE, wide) == 3

    @given(
        r_row=st.integers(min_value=1, max_value=5),
        r_col=st.integers(min_value=1, max_value=5),
    )
    def test_square_k_at_least_strip_k(self, r_row, r_col):
        s = Stencil(
            name="g",
            offsets=((r_row, 0), (-r_row, 0), (0, r_col), (0, -r_col)),
        )
        assert perimeters_required(SQUARE, s) >= perimeters_required(STRIP, s)


class TestBoundaryPoints:
    def test_strip_formula(self):
        assert boundary_points(STRIP, area=512, n=64, k=1) == 2 * 64
        assert boundary_points(STRIP, area=512, n=64, k=2) == 4 * 64

    def test_square_formula(self):
        assert boundary_points(SQUARE, area=64, n=64, k=1) == pytest.approx(32.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            boundary_points(STRIP, area=0, n=64, k=1)
        with pytest.raises(ValueError):
            boundary_points(SQUARE, area=16, n=64, k=0)

    def test_interior_volume_complement(self):
        total = 4096
        interior = interior_volume(SQUARE, total, 128, 1)
        assert interior == total - 4 * 64

    def test_interior_clamped_at_zero(self):
        # A 2x2 "square" partition is all boundary under k = 1.
        assert interior_volume(SQUARE, 4, 64, 1) == 0.0


class TestStrEnum:
    def test_kind_string_values(self):
        assert str(STRIP) == "strip"
        assert SQUARE.value == "square"
