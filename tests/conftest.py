"""Shared fixtures: canonical workloads and machines used across tests."""

from __future__ import annotations

import pytest

from repro.core.parameters import Workload
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid
from repro.stencils.library import FIVE_POINT


@pytest.fixture
def workload_256() -> Workload:
    """The paper's anchor problem: 256x256, 5-point, 1 us/flop."""
    return Workload(n=256, stencil=FIVE_POINT)


@pytest.fixture
def workload_big() -> Workload:
    """Large enough that the bus optimum is interior for both shapes."""
    return Workload(n=4096, stencil=FIVE_POINT)


@pytest.fixture
def sync_bus() -> SynchronousBus:
    """The Figure-7 calibrated bus (c = 0)."""
    return SynchronousBus(b=6.1e-6, c=0.0)


@pytest.fixture
def async_bus() -> AsynchronousBus:
    return AsynchronousBus(b=6.1e-6, c=0.0)


@pytest.fixture
def hypercube() -> Hypercube:
    return Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)


@pytest.fixture
def mesh() -> MeshGrid:
    return MeshGrid(alpha=1e-6, beta=1e-5, packet_words=16)


@pytest.fixture
def banyan() -> BanyanNetwork:
    return BanyanNetwork(w=2e-7)
