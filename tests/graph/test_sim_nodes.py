"""Sim nodes in the sweep graph: parity, fusion, dedup, cache sharing.

The graph layer's contract extends to the simulation families:
``sim_sweep``/``sim_validate`` planned and executed through either
backend equal the scalar oracle bit for bit, fused sibling slices equal
solo evaluations exactly, and graph stores share cache entries with the
offline :func:`repro.batch.sim.simulate_replicas_cached` path.
"""

import numpy as np
import pytest

from repro.batch.cache import SweepCache
from repro.batch.sim import ReplicaBatchSpec, simulate_replicas_cached
from repro.graph import nodes, plan
from repro.graph.planner import evaluate
from repro.machines.catalog import DEFAULT_MACHINES
from repro.sim.replica import simulate_replica
from repro.sim.validate import validation_arrays
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

MACHINE_ITEMS = sorted(DEFAULT_MACHINES.items())
EXECUTORS = ["numpy", "oracle"]


def _assert_arrays_equal(got: dict, want: dict) -> None:
    assert sorted(got) == sorted(want)
    for name in want:
        assert np.array_equal(np.asarray(got[name]), np.asarray(want[name])), name


class TestSimSweepNodes:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    def test_matches_scalar_replicas(self, executor, name, machine):
        seeds = [3, 11, 12, 40]
        node = nodes.sim_sweep(
            machine, FIVE_POINT, PartitionKind.SQUARE, 20, 4, seeds, jitter=0.1
        )
        (arrays,) = evaluate([node], executor=executor)
        for i, seed in enumerate(seeds):
            scalar = simulate_replica(
                machine, 20, 4, FIVE_POINT, seed,
                kind=PartitionKind.SQUARE, jitter=0.1,
            )
            assert arrays["cycle_times"][i] == scalar.cycle_time, (executor, name)
            assert arrays["seeds"][i] == seed
            assert arrays["grid_sides"][i] == 20
            assert arrays["processors"][i] == 4

    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    def test_backends_agree(self, name, machine):
        node = nodes.sim_sweep(
            machine, NINE_POINT_BOX, PartitionKind.STRIP, 16, 4,
            [0, 5, 9], mode="barrier", jitter=0.2,
        )
        (via_numpy,) = evaluate([node], executor="numpy")
        (via_oracle,) = evaluate([node], executor="oracle")
        _assert_arrays_equal(via_numpy, via_oracle)

    def test_fused_slices_equal_solo(self):
        machine = DEFAULT_MACHINES["paper-bus"]

        def build(seeds):
            return nodes.sim_sweep(
                machine, FIVE_POINT, PartitionKind.SQUARE, 24, 6, seeds,
                jitter=0.05,
            )

        a, b = build([0, 2, 4]), build([1, 2, 8])
        p = plan([a, b])
        assert p.evaluations == 1  # same config: one fused evaluation
        assert p.siblings_fused == 1
        fused_a, fused_b = p.execute()
        (solo_a,) = evaluate([build([0, 2, 4])])
        (solo_b,) = evaluate([build([1, 2, 8])])
        _assert_arrays_equal(dict(fused_a), dict(solo_a))
        _assert_arrays_equal(dict(fused_b), dict(solo_b))

    def test_different_configs_do_not_fuse(self):
        machine = DEFAULT_MACHINES["paper-bus"]
        a = nodes.sim_sweep(
            machine, FIVE_POINT, PartitionKind.SQUARE, 24, 6, [0, 1]
        )
        b = nodes.sim_sweep(
            machine, FIVE_POINT, PartitionKind.SQUARE, 24, 8, [0, 1]
        )
        c = nodes.sim_sweep(
            machine, FIVE_POINT, PartitionKind.SQUARE, 24, 6, [0, 1], jitter=0.1
        )
        p = plan([a, b, c])
        assert p.evaluations == 3
        assert p.siblings_fused == 0

    def test_duplicate_requests_dedup(self):
        machine = DEFAULT_MACHINES["butterfly"]
        a = nodes.sim_sweep(machine, FIVE_POINT, PartitionKind.SQUARE, 16, 4, [7])
        b = nodes.sim_sweep(machine, FIVE_POINT, PartitionKind.SQUARE, 16, 4, [7])
        p = plan([a, b])
        assert p.n_nodes == 1
        assert p.subgraphs_deduped == 1

    def test_cache_shared_with_offline_path(self, tmp_path):
        machine = DEFAULT_MACHINES["flex32"]
        cache = SweepCache(cache_dir=tmp_path)
        spec = ReplicaBatchSpec.build(
            machine, FIVE_POINT, PartitionKind.SQUARE, 20, 4, [0, 1, 2],
            jitter=0.1,
        )
        offline = simulate_replicas_cached(spec, cache=cache)
        node = nodes.sim_sweep(
            machine, FIVE_POINT, PartitionKind.SQUARE, 20, 4, [0, 1, 2],
            jitter=0.1,
        )
        p = plan([node], cache=cache)
        assert p.cache_hits == 1  # warmed by the offline store
        (arrays,) = p.execute()
        np.testing.assert_array_equal(
            np.asarray(arrays["cycle_times"]), offline.cycle_times
        )

    def test_full_range_seeds_stay_exact(self):
        # A list mixing small ints with seeds past 2**63 must not take a
        # float64 detour (which would round 2**64 - 1 up and out of range).
        seeds = [3, 2**63, 2**64 - 1]
        node = nodes.sim_sweep(
            DEFAULT_MACHINES["paper-bus"], FIVE_POINT,
            PartitionKind.SQUARE, 16, 4, seeds,
        )
        assert node.axis.dtype == np.uint64
        assert [int(s) for s in node.axis.tolist()] == seeds
        (arrays,) = evaluate([node])
        np.testing.assert_array_equal(
            arrays["seeds"], np.asarray(seeds, dtype=np.uint64)
        )

    def test_negative_seed_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            nodes.sim_sweep(
                DEFAULT_MACHINES["paper-bus"], FIVE_POINT,
                PartitionKind.SQUARE, 16, 4, [-1],
            )


class TestSimValidateNodes:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    def test_matches_validation_arrays(self, executor, name, machine):
        procs = [1, 2, 4, 8]
        node = nodes.sim_validate(
            machine, FIVE_POINT, PartitionKind.SQUARE, 24, procs
        )
        (arrays,) = evaluate([node], executor=executor)
        want = validation_arrays(
            machine, FIVE_POINT, 24, procs, PartitionKind.SQUARE
        )
        _assert_arrays_equal(dict(arrays), want)

    def test_fused_slices_equal_solo(self):
        machine = DEFAULT_MACHINES["ipsc"]

        def build(procs):
            return nodes.sim_validate(
                machine, FIVE_POINT, PartitionKind.SQUARE, 30, procs
            )

        a, b = build([1, 2, 5]), build([2, 3, 6])
        p = plan([a, b])
        assert p.evaluations == 1
        fused_a, fused_b = p.execute()
        (solo_a,) = evaluate([build([1, 2, 5])])
        (solo_b,) = evaluate([build([2, 3, 6])])
        _assert_arrays_equal(dict(fused_a), dict(solo_a))
        _assert_arrays_equal(dict(fused_b), dict(solo_b))

    def test_closed_form_twins_stay_distinct(self):
        """Two bus presets the cache's closed-form encoding merges must
        build *distinct* sim nodes: simulation charges b and c raw."""
        from repro.batch.cache import fingerprint
        from repro.machines.bus import SynchronousBus

        rw = SynchronousBus(b=1e-5, c=2e-5, volume_mode="read_write")
        ro = SynchronousBus(b=2e-5, c=4e-5, volume_mode="read_only")
        assert fingerprint(rw) == fingerprint(ro)  # premise
        a = nodes.sim_sweep(rw, FIVE_POINT, PartitionKind.SQUARE, 16, 4, [0])
        b = nodes.sim_sweep(ro, FIVE_POINT, PartitionKind.SQUARE, 16, 4, [0])
        assert a.key != b.key
        assert a.compat != b.compat
        va = nodes.sim_validate(rw, FIVE_POINT, PartitionKind.SQUARE, 16, [2, 4])
        vb = nodes.sim_validate(ro, FIVE_POINT, PartitionKind.SQUARE, 16, [2, 4])
        assert va.key != vb.key
