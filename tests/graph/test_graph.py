"""The sweep graph is bit-equal to the scalar oracle on every backend.

Acceptance contract for :mod:`repro.graph`: a curve planned and
executed through the graph equals the scalar :mod:`repro.core` routines
bit for bit on *both* executors — the vectorized ``numpy`` backend and
the element-by-element ``oracle`` reference — across all catalog
presets, both partition kinds, and both stencils.  On top of parity,
the planner's optimizations are pinned: fused sibling slices equal solo
evaluations exactly, shared subgraphs compute once, and cache probes
count hits/misses identically to the eager layer.
"""

import zlib

import numpy as np
import pytest

from repro.batch.cache import SweepCache
from repro.batch.engine import SweepSpec, run_sweep
from repro.core.allocation import optimize_allocation
from repro.core.isoefficiency import isoefficiency_exponent
from repro.core.minimal_size import max_useful_processors as scalar_max_useful
from repro.core.minimal_size import minimal_problem_size as scalar_n2_min
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.graph import (
    Executor,
    NumpyExecutor,
    OracleExecutor,
    executor_names,
    get_executor,
    nodes,
    plan,
)
from repro.graph.planner import evaluate
from repro.machines.bus import BusArchitecture
from repro.machines.catalog import DEFAULT_MACHINES, INTEL_IPSC, PAPER_BUS
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

MACHINE_ITEMS = sorted(DEFAULT_MACHINES.items())
BUS_ITEMS = [(n, m) for n, m in MACHINE_ITEMS if isinstance(m, BusArchitecture)]
STENCILS = [FIVE_POINT, NINE_POINT_BOX]
EXECUTORS = ["numpy", "oracle"]


def _sides(seed_key, lo=4, hi=4000, size=8):
    # crc32, not hash(): str hashing is salted per process, and this
    # suite's failures must be reproducible by rerunning the test id.
    rng = np.random.default_rng(zlib.crc32(repr(seed_key).encode()))
    return sorted(set(rng.integers(lo, hi, size=size).tolist()))


def _assert_arrays_equal(got: dict, want: dict) -> None:
    assert sorted(got) == sorted(want)
    for name in want:
        assert np.array_equal(np.asarray(got[name]), np.asarray(want[name])), name


class TestExecutorParity:
    """Every family, every preset, both kinds/stencils, both backends."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", STENCILS)
    def test_allocation_matches_scalar(self, executor, name, machine, kind, stencil):
        sides = _sides(("g-alloc", name, kind.value, stencil.name))
        node = nodes.allocation_curve(machine, stencil, kind, sides)
        (arrays,) = evaluate([node], executor=executor)
        for i, n in enumerate(sides):
            scalar = optimize_allocation(machine, Workload(n=n, stencil=stencil), kind)
            assert arrays["speedup"][i] == scalar.speedup, (executor, name, n)
            assert arrays["processors"][i] == scalar.processors
            assert arrays["area"][i] == scalar.area
            assert arrays["cycle_time"][i] == scalar.cycle_time
            assert arrays["efficiency"][i] == scalar.efficiency
            assert arrays["regime"][i] == scalar.regime

    @pytest.mark.parametrize("name,machine", MACHINE_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    def test_integer_allocation_backends_agree(self, name, machine, kind):
        sides = _sides(("g-int", name, kind.value), lo=8, hi=2500)
        node = nodes.allocation_curve(machine, FIVE_POINT, kind, sides, integer=True)
        (via_numpy,) = evaluate([node], executor="numpy")
        (via_oracle,) = evaluate([node], executor="oracle")
        _assert_arrays_equal(via_numpy, via_oracle)

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("name,machine", BUS_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", STENCILS)
    def test_max_useful_matches_scalar(self, executor, name, machine, kind, stencil):
        sides = _sides(("g-mup", name, kind.value, stencil.name), lo=16, hi=5000)
        node = nodes.max_useful_processors(machine, stencil, kind, sides)
        (arrays,) = evaluate([node], executor=executor)
        for i, n in enumerate(sides):
            scalar = scalar_max_useful(machine, Workload(n=n, stencil=stencil), kind)
            assert arrays["max_useful"][i] == scalar, (executor, name, n)

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("name,machine", BUS_ITEMS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", STENCILS)
    def test_minimal_problem_size_matches_scalar(
        self, executor, name, machine, kind, stencil
    ):
        procs = [2, 3, 7, 14, 22, 30, 64]
        node = nodes.minimal_problem_size(machine, stencil, kind, procs)
        (arrays,) = evaluate([node], executor=executor)
        for i, p in enumerate(procs):
            scalar = scalar_n2_min(machine, Workload(n=2, stencil=stencil), kind, p)
            assert arrays["n2_min"][i] == scalar, (executor, name, p)

    @pytest.mark.parametrize("machine,kind", [
        (INTEL_IPSC, PartitionKind.SQUARE),
        (PAPER_BUS, PartitionKind.SQUARE),
        (PAPER_BUS, PartitionKind.STRIP),
    ])
    def test_grid_for_efficiency_backends_agree(self, machine, kind):
        node = nodes.grid_for_efficiency(machine, FIVE_POINT, kind, [4, 8, 16, 32], 0.5)
        (via_numpy,) = evaluate([node], executor="numpy")
        (via_oracle,) = evaluate([node], executor="oracle")
        _assert_arrays_equal(via_numpy, via_oracle)

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("kind", list(PartitionKind))
    @pytest.mark.parametrize("stencil", STENCILS)
    def test_sweep_matches_eager_engine(self, executor, kind, stencil):
        spec = SweepSpec(
            grid_sides=(16, 48, 130),
            processors=(1.0, 4.0, 16.0),
            machines=(
                ("ipsc", DEFAULT_MACHINES["ipsc"]),
                ("paper-bus", DEFAULT_MACHINES["paper-bus"]),
            ),
            stencil=stencil,
            kind=kind,
        )
        (surfaces,) = evaluate([nodes.sweep(spec)], executor=executor)
        _assert_arrays_equal(surfaces, dict(run_sweep(spec).cycle_times))

    @pytest.mark.parametrize("name,machine", BUS_ITEMS)
    def test_plan_grid_backends_agree(self, name, machine):
        node = nodes.plan_grid(machine, [2, 5, 8, 16, 32, 64])
        (via_numpy,) = evaluate([node], executor="numpy")
        (via_oracle,) = evaluate([node], executor="oracle")
        _assert_arrays_equal(via_numpy, via_oracle)

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_reductions_match_eager_layer(self, executor):
        from repro.batch import isoefficiency_exponent_grid, speedup_ratio_curve

        cube = DEFAULT_MACHINES["ipsc"]
        net = DEFAULT_MACHINES["butterfly"]
        sides = _sides("g-ratio", lo=32, hi=3000)
        ratio = nodes.speedup_ratio(cube, net, FIVE_POINT, PartitionKind.SQUARE, sides)
        (got,) = evaluate([ratio], executor=executor)
        want = speedup_ratio_curve(cube, net, FIVE_POINT, PartitionKind.SQUARE, sides)
        assert np.array_equal(got, want)

        procs = [4, 8, 16, 32, 64]
        fit = nodes.isoefficiency_fit(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, procs, 0.5
        )
        (got_fit,) = evaluate([fit], executor=executor)
        want_fit = isoefficiency_exponent_grid(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, procs, 0.5
        )
        assert got_fit.exponent == want_fit.exponent
        assert got_fit.problem_sizes == want_fit.problem_sizes
        assert got_fit.processors == want_fit.processors
        scalar = isoefficiency_exponent(
            PAPER_BUS, Workload(n=16, stencil=FIVE_POINT), PartitionKind.SQUARE,
            procs, 0.5,
        )
        assert got_fit.exponent == scalar.exponent


class TestFusion:
    """Fused sibling slices are bit-identical to solo evaluations."""

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_fused_allocation_slices_equal_solo(self, executor):
        axes = ([64, 128, 300, 700], [100, 300, 512], [64, 512, 2048])
        batch = [
            nodes.allocation_curve(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, sides
            )
            for sides in axes
        ]
        p = plan(batch, executor=executor)
        assert p.evaluations == 1
        assert p.siblings_fused == 2
        fused = p.execute()
        for node, sides, arrays in zip(batch, axes, fused):
            (solo,) = evaluate([nodes.allocation_curve(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, sides
            )], executor=executor)
            _assert_arrays_equal(arrays, solo)

    def test_fused_sweep_slices_equal_solo(self):
        def spec(sides):
            return SweepSpec(
                grid_sides=tuple(sides),
                processors=(1.0, 8.0, 64.0),
                machines=(("flex32", DEFAULT_MACHINES["flex32"]),),
            )

        batch = [nodes.sweep(spec([16, 64, 256])), nodes.sweep(spec([32, 64, 512]))]
        p = plan(batch)
        assert p.evaluations == 1
        a, b = p.execute()
        _assert_arrays_equal(a, dict(run_sweep(spec([16, 64, 256])).cycle_times))
        _assert_arrays_equal(b, dict(run_sweep(spec([32, 64, 512])).cycle_times))

    def test_incompatible_requests_do_not_fuse(self):
        a = nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64])
        b = nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.STRIP, [64])
        c = nodes.allocation_curve(INTEL_IPSC, FIVE_POINT, PartitionKind.SQUARE, [64])
        p = plan([a, b, c])
        assert p.evaluations == 3
        assert p.siblings_fused == 0

    def test_mixed_families_fuse_per_family(self):
        batch = [
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64]),
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [128]),
            nodes.max_useful_processors(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64]
            ),
            nodes.max_useful_processors(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [128]
            ),
        ]
        p = plan(batch)
        assert p.evaluations == 2
        assert p.siblings_fused == 2


class TestDedupAndCache:
    def test_shared_subgraph_computes_once(self):
        # The strip/square ratio's square child is the same node as a
        # direct square allocation request — one evaluation serves both.
        sides = [64, 256, 1024]
        ratio = nodes.strip_square_ratio(PAPER_BUS, FIVE_POINT, sides)
        direct = nodes.allocation_curve(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, sides
        )
        p = plan([ratio, direct])
        assert p.n_nodes == 3  # strip leaf, square leaf (shared), ratio
        assert p.subgraphs_deduped == 1
        ratio_arr, alloc = p.execute()
        assert np.array_equal(
            ratio_arr,
            p.results[ratio.inputs[0].key]["speedup"] / alloc["speedup"],
        )

    def test_identical_requests_collapse_to_one_node(self):
        sides = [64, 128]
        twice = [
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, sides),
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, sides),
        ]
        p = plan(twice)
        assert p.n_nodes == 1 and p.subgraphs_deduped == 1
        a, b = p.execute()
        _assert_arrays_equal(a, b)

    def test_cache_probe_hits_and_planner_counters(self):
        cache = SweepCache()
        node = nodes.allocation_curve(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64, 256]
        )
        (cold,) = evaluate([node], cache=cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        warm_plan = plan([node], cache=cache)
        assert warm_plan.cache_hits == 1 and warm_plan.evaluations == 0
        (warm,) = warm_plan.execute()
        _assert_arrays_equal(warm, cold)
        assert cache.stats.hits == 1
        assert cache.stats.nodes_planned == 2
        assert cache.stats.executor_runs == {"numpy": 1}

    def test_graph_results_share_entries_with_eager_layer(self):
        from repro.batch import optimal_allocation_curve

        cache = SweepCache()
        optimal_allocation_curve(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64, 256], cache=cache
        )
        p = plan(
            [nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64, 256])],
            cache=cache,
        )
        assert p.cache_hits == 1  # the eager store serves the graph probe

    def test_lookup_false_skips_probe_but_still_stores(self):
        cache = SweepCache()
        node = nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64])
        evaluate([node], cache=cache)
        p = plan([node], cache=cache, lookup=False)
        assert p.cache_hits == 0 and p.evaluations == 1
        assert cache.stats.hits == 0 and cache.stats.misses == 1


class TestExplain:
    def test_explain_shows_fusion_dedup_and_hits(self):
        cache = SweepCache()
        warmed = nodes.allocation_curve(
            PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [512]
        )
        evaluate([warmed], cache=cache)
        batch = [
            warmed,
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64]),
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [128]),
            nodes.strip_square_ratio(PAPER_BUS, FIVE_POINT, [64]),
        ]
        text = plan(batch, cache=cache).explain()
        assert text.startswith("sweep graph: 4 request(s) ->")
        assert "cached (memory)" in text
        assert "fused -> group" in text
        assert "reduce(" in text
        assert "union axis" in text

    def test_explain_is_deterministic_and_execution_free(self):
        batch = [
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64]),
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [128]),
        ]
        p = plan(batch)
        assert p.explain() == plan(batch).explain()
        assert not p.executed and not p.results


class TestValidationAndRegistry:
    def test_builders_reject_bad_axes_like_the_eager_layer(self):
        with pytest.raises(InvalidParameterError):
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [])
        with pytest.raises(InvalidParameterError):
            nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [0])
        with pytest.raises(InvalidParameterError):
            nodes.allocation_curve(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64], max_processors=0.5
            )
        with pytest.raises(InvalidParameterError):
            nodes.grid_for_efficiency(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [4], 1.5
            )
        with pytest.raises(InvalidParameterError):
            nodes.grid_for_efficiency(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [1], 0.5
            )
        with pytest.raises(InvalidParameterError):
            nodes.isoefficiency_fit(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [4], 0.5
            )
        with pytest.raises(InvalidParameterError):
            nodes.plan_grid(PAPER_BUS, [])
        with pytest.raises(InvalidParameterError):
            nodes.minimal_problem_size(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [0]
            )

    def test_unknown_executor_names_the_known_ones(self):
        with pytest.raises(InvalidParameterError, match="numpy"):
            get_executor("cuda")
        assert "numpy" in executor_names() and "oracle" in executor_names()

    def test_instances_pass_through_and_custom_backends_register(self):
        assert isinstance(get_executor(NumpyExecutor()), NumpyExecutor)
        assert isinstance(get_executor("oracle"), OracleExecutor)

        class Tracing(OracleExecutor):
            name = "tracing"
            calls = 0

            def evaluate(self, op, args, axis):
                type(self).calls += 1
                return super().evaluate(op, args, axis)

        from repro.graph import register_executor

        register_executor("tracing", Tracing)
        try:
            node = nodes.allocation_curve(
                PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, [64]
            )
            evaluate([node], executor="tracing")
            assert Tracing.calls == 1
        finally:
            from repro.graph import executors as _executors

            _executors._REGISTRY.pop("tracing", None)

    def test_unknown_ops_are_rejected_by_both_backends(self):
        for backend in (NumpyExecutor(), OracleExecutor()):
            with pytest.raises(InvalidParameterError):
                backend.evaluate("nonsense", {}, np.array([1.0]))


class TestExecutorSubclassContract:
    def test_base_evaluate_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Executor().evaluate("sweep", {}, np.array([1.0]))
