"""repro — reproduction of Nicol & Willard (1987),
"Problem Size, Parallel Architecture, and Optimal Speedup".

The package models one iteration of a parallel elliptic-PDE solve
(``t_cycle = E(S)·A·T_fp + t_a``), optimizes the processor allocation
per architecture, and studies optimal speedup as problem and machine
grow together.  Substrates (an actual Jacobi solver and a
discrete-event machine simulator) ground and validate the model.

Quickstart::

    from repro import Workload, FIVE_POINT, PAPER_BUS, PartitionKind
    from repro import optimize_allocation

    w = Workload(n=256, stencil=FIVE_POINT)
    alloc = optimize_allocation(PAPER_BUS, w, PartitionKind.SQUARE,
                                max_processors=16)
    print(alloc.processors, alloc.speedup)

Subpackages
-----------
``repro.stencils``
    Stencil geometry, E(S), and the k(P,S) perimeter classification.
``repro.partitioning``
    Strips, working rectangles, block decompositions, halo graphs.
``repro.machines``
    Architecture models: hypercube, mesh, sync/async bus, banyan.
``repro.core``
    Cycle times, allocation optimization, speedup and scaling laws.
``repro.batch``
    Batched sweep engine: dense (N, P, machine) grids, vectorized.
``repro.solver``
    A real Jacobi/SOR Poisson solver with partitioned execution.
``repro.sim``
    Discrete-event simulator validating the analytic formulas.
``repro.experiments``
    Regenerates every figure and table of the paper.
"""

from repro.core import (
    Allocation,
    OptimalSpeedupResult,
    Workload,
    fit_scaling_exponent,
    fixed_machine_speedup,
    leverage_report,
    minimal_problem_size,
    optimal_speedup,
    optimize_allocation,
    speedup_at_processors,
    table1_optimal_speedup,
)
from repro.errors import (
    ConvergenceError,
    DecompositionError,
    InvalidParameterError,
    ReproError,
    SimulationError,
)
from repro.machines import (
    AsynchronousBus,
    BanyanNetwork,
    Hypercube,
    MeshGrid,
    PAPER_BUS,
    PAPER_BUS_ASYNC,
    SynchronousBus,
)
from repro.stencils import (
    FIVE_POINT,
    NINE_POINT_BOX,
    NINE_POINT_STAR,
    PartitionKind,
    Stencil,
    THIRTEEN_POINT,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "AsynchronousBus",
    "BanyanNetwork",
    "ConvergenceError",
    "DecompositionError",
    "FIVE_POINT",
    "Hypercube",
    "InvalidParameterError",
    "MeshGrid",
    "NINE_POINT_BOX",
    "NINE_POINT_STAR",
    "OptimalSpeedupResult",
    "PAPER_BUS",
    "PAPER_BUS_ASYNC",
    "PartitionKind",
    "ReproError",
    "SimulationError",
    "Stencil",
    "SynchronousBus",
    "THIRTEEN_POINT",
    "Workload",
    "__version__",
    "fit_scaling_exponent",
    "fixed_machine_speedup",
    "leverage_report",
    "minimal_problem_size",
    "optimal_speedup",
    "optimize_allocation",
    "speedup_at_processors",
    "table1_optimal_speedup",
]
