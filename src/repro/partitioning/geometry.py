"""Continuous partition-geometry formulas used by the analytic model.

These are the paper's idealized counts: a strip of area ``A`` on an
``n × n`` grid communicates ``2·n·k`` points per direction pair, a
square of area ``A`` communicates ``4·sqrt(A)·k``.  The discrete
counterparts (exact counts on real decompositions) live in
:mod:`repro.partitioning.decomposition`; tests verify the continuous
formulas agree with the exact ones to within corner effects.
"""

from __future__ import annotations

import math

from repro.errors import InvalidParameterError
from repro.stencils.perimeter import PartitionKind

__all__ = [
    "partition_side",
    "read_volume",
    "write_volume",
    "transfer_volume",
    "processors_for_area",
    "area_for_processors",
]


def partition_side(area: float) -> float:
    """Side length ``s`` of an idealized square partition of ``area`` points."""
    if area <= 0:
        raise InvalidParameterError("area must be positive")
    return math.sqrt(area)


def read_volume(kind: PartitionKind, area: float, n: int, k: int) -> float:
    """Boundary points a partition *reads* per iteration.

    Strips read ``k`` full rows from each of two neighbours (``2·n·k``);
    squares read ``k`` perimeters of ``4·sqrt(A)`` points.
    """
    if area <= 0 or n <= 0 or k <= 0:
        raise InvalidParameterError("area, n, k must be positive")
    if kind is PartitionKind.STRIP:
        return 2.0 * n * k
    return 4.0 * math.sqrt(area) * k


def write_volume(kind: PartitionKind, area: float, n: int, k: int) -> float:
    """Boundary points a partition *writes* per iteration.

    The paper assumes write volume equals read volume (footnote 4: exact
    for star stencils, a slight undercount of corner points for
    stencils with diagonals).
    """
    return read_volume(kind, area, n, k)


def transfer_volume(kind: PartitionKind, area: float, n: int, k: int) -> float:
    """Total words moved per partition per iteration (reads + writes)."""
    return read_volume(kind, area, n, k) + write_volume(kind, area, n, k)


def processors_for_area(n: int, area: float) -> float:
    """``P = n² / A`` — the paper's continuous processor count."""
    if area <= 0:
        raise InvalidParameterError("area must be positive")
    return n * n / area


def area_for_processors(n: int, processors: float) -> float:
    """``A = n² / P`` — points per partition at a given machine size."""
    if processors <= 0:
        raise InvalidParameterError("processors must be positive")
    return n * n / processors
