"""Legal and working rectangles — the Figure 5/6 machinery.

The paper approximates square partitions with "nearly square"
rectangles that tile the grid cleanly:

1. the domain is first cut into strips of ``h`` contiguous rows
   (any ``h`` from the remainder rule is allowed, so ``h ∈ [1, n]``);
2. a border is drawn every ``m``-th column, with ``m`` required to
   divide ``n`` evenly.

A ``h × m`` rectangle produced this way is *legal*.  For each
achievable area ``A = h·m`` the legal rectangle minimizing perimeter is
kept iff its perimeter is within 5% of ``4·sqrt(A)`` (a square's
perimeter); survivors are *working rectangles*.  Figure 6 plots, for
every target area, the relative area and perimeter error of the closest
working rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import DecompositionError, NoWorkingRectangleError

__all__ = [
    "LegalRectangle",
    "divisors",
    "legal_rectangles",
    "working_rectangles",
    "closest_working_rectangle",
    "approximation_errors",
    "ApproximationError",
    "DEFAULT_PERIMETER_TOLERANCE",
]

#: The paper's 5% squareness filter.
DEFAULT_PERIMETER_TOLERANCE = 0.05


@dataclass(frozen=True, order=True)
class LegalRectangle:
    """A ``height × width`` tile with width dividing the grid size."""

    height: int
    width: int

    @property
    def area(self) -> int:
        return self.height * self.width

    @property
    def perimeter(self) -> int:
        return 2 * (self.height + self.width)

    def perimeter_excess(self) -> float:
        """Relative excess over the ideal square perimeter ``4·sqrt(A)``.

        Zero for exact squares, positive otherwise (a rectangle never
        beats the square of equal area).
        """
        ideal = 4.0 * self.area**0.5
        return (self.perimeter - ideal) / ideal


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in increasing order."""
    if n <= 0:
        raise DecompositionError(f"n must be positive, got {n}")
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


@lru_cache(maxsize=64)
def legal_rectangles(n: int) -> tuple[LegalRectangle, ...]:
    """Every legal rectangle for an ``n × n`` grid.

    Heights range over ``[1, n]`` (strip rule), widths over divisors of
    ``n``.  The result is cached: Figure 6 sweeps thousands of target
    areas against the same grid.
    """
    widths = divisors(n)
    rects = [
        LegalRectangle(height=h, width=m) for h in range(1, n + 1) for m in widths
    ]
    return tuple(rects)


@lru_cache(maxsize=64)
def working_rectangles(
    n: int, tolerance: float = DEFAULT_PERIMETER_TOLERANCE
) -> tuple[LegalRectangle, ...]:
    """The paper's working set: per area, the squarest legal rectangle,
    kept only if within ``tolerance`` of the ideal square perimeter.

    Sorted by area; each area appears at most once.
    """
    if not 0 < tolerance < 1:
        raise DecompositionError("tolerance must be in (0, 1)")
    best_by_area: dict[int, LegalRectangle] = {}
    for rect in legal_rectangles(n):
        cur = best_by_area.get(rect.area)
        if cur is None or rect.perimeter < cur.perimeter:
            best_by_area[rect.area] = rect
    survivors = [
        rect
        for rect in best_by_area.values()
        if rect.perimeter_excess() <= tolerance
    ]
    survivors.sort(key=lambda r: r.area)
    return tuple(survivors)


def closest_working_rectangle(
    n: int, target_area: float, tolerance: float = DEFAULT_PERIMETER_TOLERANCE
) -> LegalRectangle:
    """Working rectangle whose area is closest to ``target_area``.

    Ties prefer the smaller area (fewer points per processor = more
    parallelism).  Raises :class:`NoWorkingRectangleError` when the grid
    admits no working rectangle at all (cannot happen for n ≥ 2 since
    exact squares with width dividing n always survive).
    """
    candidates = working_rectangles(n, tolerance)
    if not candidates:
        raise NoWorkingRectangleError(
            f"grid {n}x{n} has no working rectangle under tolerance {tolerance}"
        )
    return min(candidates, key=lambda r: (abs(r.area - target_area), r.area))


@dataclass(frozen=True)
class ApproximationError:
    """Relative errors of the closest working rectangle (Figure 6)."""

    target_area: int
    rectangle: LegalRectangle
    area_error: float
    perimeter_error: float


def approximation_errors(
    n: int,
    areas,
    tolerance: float = DEFAULT_PERIMETER_TOLERANCE,
) -> list[ApproximationError]:
    """Figure 6 series: for each target area the relative magnitude error
    in area (6a) and perimeter (6b) of the chosen working rectangle.

    The perimeter error compares against the ideal square perimeter for
    the *target* area, matching the paper's "relative approximation
    error in perimeter".
    """
    out: list[ApproximationError] = []
    for area in areas:
        area = int(area)
        rect = closest_working_rectangle(n, area, tolerance)
        ideal_perimeter = 4.0 * area**0.5
        out.append(
            ApproximationError(
                target_area=area,
                rectangle=rect,
                area_error=abs(rect.area - area) / area,
                perimeter_error=abs(rect.perimeter - ideal_perimeter) / ideal_perimeter,
            )
        )
    return out
