"""Rectangular partitions of the discretized domain.

A partition is a half-open box of grid points ``rows [r0, r1) ×
cols [c0, c1)`` on an ``n × n`` grid, assigned to one processor.  The
performance model only needs its area and perimeter; the solver and
simulator substrates also use the exact index box.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecompositionError

__all__ = ["Partition"]


@dataclass(frozen=True, order=True)
class Partition:
    """One processor's box of grid points (half-open index ranges)."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    def __post_init__(self) -> None:
        if self.row_start < 0 or self.col_start < 0:
            raise DecompositionError(f"negative partition origin: {self}")
        if self.row_stop <= self.row_start or self.col_stop <= self.col_start:
            raise DecompositionError(f"empty partition: {self}")

    # ------------------------------------------------------------- geometry

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def n_cols(self) -> int:
        return self.col_stop - self.col_start

    @property
    def area(self) -> int:
        """Number of grid points owned."""
        return self.n_rows * self.n_cols

    @property
    def perimeter(self) -> int:
        """Geometric perimeter ``2·(rows + cols)`` used by Figure 6.

        This is the paper's perimeter measure for comparing a rectangle
        against the ideal square (``4·sqrt(A)``).
        """
        return 2 * (self.n_rows + self.n_cols)

    @property
    def aspect_ratio(self) -> float:
        """max(rows, cols) / min(rows, cols); 1.0 for exact squares."""
        lo = min(self.n_rows, self.n_cols)
        hi = max(self.n_rows, self.n_cols)
        return hi / lo

    def is_square(self) -> bool:
        return self.n_rows == self.n_cols

    # ----------------------------------------------------------- relations

    def overlaps(self, other: "Partition") -> bool:
        return not (
            self.row_stop <= other.row_start
            or other.row_stop <= self.row_start
            or self.col_stop <= other.col_start
            or other.col_stop <= self.col_start
        )

    def touches(self, other: "Partition") -> bool:
        """True when the boxes share an edge segment (4-adjacency).

        Corner-only contact does not count; diagonal neighbours are
        derived separately where a stencil requires them.
        """
        share_rows = (
            self.row_start < other.row_stop and other.row_start < self.row_stop
        )
        share_cols = (
            self.col_start < other.col_stop and other.col_start < self.col_stop
        )
        vert = share_cols and (
            self.row_stop == other.row_start or other.row_stop == self.row_start
        )
        horiz = share_rows and (
            self.col_stop == other.col_start or other.col_stop == self.col_start
        )
        return vert or horiz

    def corner_adjacent(self, other: "Partition") -> bool:
        """True when the boxes meet only at a corner point."""
        meets_v = self.row_stop == other.row_start or other.row_stop == self.row_start
        meets_h = self.col_stop == other.col_start or other.col_stop == self.col_start
        corner_v = self.col_stop == other.col_start or other.col_stop == self.col_start
        return meets_v and corner_v and not self.touches(other) and meets_h

    def contains_point(self, i: int, j: int) -> bool:
        return (
            self.row_start <= i < self.row_stop
            and self.col_start <= j < self.col_stop
        )

    def boundary_point_count(self, depth: int = 1) -> int:
        """Exact count of points within ``depth`` of the partition edge.

        This is the discrete counterpart of the paper's ``k`` perimeters
        (from the inside); used by the simulator to schedule boundary
        updates first on asynchronous buses.
        """
        if depth <= 0:
            raise DecompositionError("depth must be positive")
        inner_rows = max(0, self.n_rows - 2 * depth)
        inner_cols = max(0, self.n_cols - 2 * depth)
        return self.area - inner_rows * inner_cols

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Partition(rows {self.row_start}:{self.row_stop}, "
            f"cols {self.col_start}:{self.col_stop}, area {self.area})"
        )
