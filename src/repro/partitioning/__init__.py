"""Domain decomposition: strips, working rectangles, block covers."""

from repro.partitioning.decomposition import (
    Decomposition,
    HaloEdge,
    block_grid_shape,
    decompose_blocks,
    decomposition_for,
)
from repro.partitioning.geometry import (
    area_for_processors,
    partition_side,
    processors_for_area,
    read_volume,
    transfer_volume,
    write_volume,
)
from repro.partitioning.partition import Partition
from repro.partitioning.rectangles import (
    DEFAULT_PERIMETER_TOLERANCE,
    ApproximationError,
    LegalRectangle,
    approximation_errors,
    closest_working_rectangle,
    divisors,
    legal_rectangles,
    working_rectangles,
)
from repro.partitioning.strips import decompose_strips, strip_heights

__all__ = [
    "ApproximationError",
    "DEFAULT_PERIMETER_TOLERANCE",
    "Decomposition",
    "HaloEdge",
    "LegalRectangle",
    "Partition",
    "approximation_errors",
    "area_for_processors",
    "block_grid_shape",
    "closest_working_rectangle",
    "decompose_blocks",
    "decompose_strips",
    "decomposition_for",
    "divisors",
    "legal_rectangles",
    "partition_side",
    "processors_for_area",
    "read_volume",
    "strip_heights",
    "transfer_volume",
    "working_rectangles",
    "write_volume",
]
