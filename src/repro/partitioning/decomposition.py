"""Full-grid decompositions: partition covers plus neighbour structure.

A :class:`Decomposition` is what the solver and simulator substrates
consume: the list of partitions (one per processor), the stencil-induced
neighbour graph, and per-edge halo volumes.  The analytic model in
:mod:`repro.core` never needs this level of detail — it works from areas
and perimeters — which is exactly the paper's abstraction boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecompositionError
from repro.partitioning.partition import Partition
from repro.partitioning.strips import decompose_strips, strip_heights
from repro.stencils.stencil import Stencil

__all__ = [
    "Decomposition",
    "HaloEdge",
    "block_grid_shape",
    "decompose_blocks",
    "decomposition_for",
]


@dataclass(frozen=True)
class HaloEdge:
    """Directed halo dependency: ``dst`` reads ``volume`` points owned by ``src``."""

    src: int
    dst: int
    volume: int


@dataclass(frozen=True)
class Decomposition:
    """A disjoint cover of the ``n × n`` grid by rectangular partitions."""

    n: int
    partitions: tuple[Partition, ...]
    kind: str  # "strip" | "block"

    def __post_init__(self) -> None:
        total = sum(p.area for p in self.partitions)
        if total != self.n * self.n:
            raise DecompositionError(
                f"partitions cover {total} points, grid has {self.n * self.n}"
            )

    @property
    def n_processors(self) -> int:
        return len(self.partitions)

    def max_area(self) -> int:
        """Grid points on the most loaded processor (sets t_comp)."""
        return max(p.area for p in self.partitions)

    def load_imbalance(self) -> float:
        """max area / mean area; 1.0 means perfectly balanced."""
        mean = self.n * self.n / self.n_processors
        return self.max_area() / mean

    # ----------------------------------------------------------- neighbours

    def halo_edges(self, stencil: Stencil) -> list[HaloEdge]:
        """All directed halo dependencies induced by ``stencil``.

        ``dst`` needs, for each of its points within reach of the shared
        boundary, the points of ``src`` that the stencil offsets land on.
        Volumes are exact point counts (including corner points for
        stencils with diagonal offsets), computed by intersecting the
        shifted destination box with the source box for each offset and
        de-duplicating points needed via multiple offsets.
        """
        edges: list[HaloEdge] = []
        offsets = stencil.halo_offsets()
        for di_dst, dst in enumerate(self.partitions):
            for di_src, src in enumerate(self.partitions):
                if di_src == di_dst:
                    continue
                needed: set[tuple[int, int]] = set()
                for (oi, oj) in offsets:
                    # Destination points (i, j) read (i+oi, j+oj); collect
                    # source-owned points hit by this offset.
                    r0 = max(dst.row_start + oi, src.row_start)
                    r1 = min(dst.row_stop + oi, src.row_stop)
                    c0 = max(dst.col_start + oj, src.col_start)
                    c1 = min(dst.col_stop + oj, src.col_stop)
                    if r0 < r1 and c0 < c1:
                        for i in range(r0, r1):
                            # Row-interval insertion: columns form one run.
                            needed.update((i, j) for j in range(c0, c1))
                if needed:
                    edges.append(HaloEdge(src=di_src, dst=di_dst, volume=len(needed)))
        return edges

    def neighbour_map(self, stencil: Stencil) -> dict[int, list[int]]:
        """Adjacency list of the halo graph (dst -> sorted srcs)."""
        nbrs: dict[int, set[int]] = {i: set() for i in range(self.n_processors)}
        for e in self.halo_edges(stencil):
            nbrs[e.dst].add(e.src)
        return {i: sorted(s) for i, s in nbrs.items()}

    def communication_volume(self, stencil: Stencil, processor: int) -> int:
        """Points processor ``processor`` must *read* per iteration."""
        return sum(e.volume for e in self.halo_edges(stencil) if e.dst == processor)

    def total_communication_volume(self, stencil: Stencil) -> int:
        """Grid-wide read volume per iteration (the bus's offered load)."""
        return sum(e.volume for e in self.halo_edges(stencil))


def block_grid_shape(processors: int, n: int) -> tuple[int, int]:
    """Factor ``processors`` into the most square ``p_rows × p_cols`` grid.

    Chooses the divisor pair minimizing ``|p_rows - p_cols|`` subject to
    both dimensions fitting the grid (at most ``n`` cuts each way).
    """
    if processors <= 0:
        raise DecompositionError("processors must be positive")
    best: tuple[int, int] | None = None
    d = 1
    while d * d <= processors:
        if processors % d == 0:
            pr, pc = d, processors // d
            if pr <= n and pc <= n:
                best = (pr, pc)  # d grows, so the last fit is squarest
        d += 1
    if best is None:
        raise DecompositionError(
            f"cannot arrange {processors} processors on a {n}x{n} grid"
        )
    return best


def decompose_blocks(n: int, processors: int) -> list[Partition]:
    """Near-square block decomposition (Figure 5).

    Rows and columns are each cut with the strip remainder rule, giving
    blocks within one row/column of each other in each dimension.
    """
    p_rows, p_cols = block_grid_shape(processors, n)
    heights = strip_heights(n, p_rows)
    widths = strip_heights(n, p_cols)
    parts: list[Partition] = []
    r = 0
    for h in heights:
        c = 0
        for w in widths:
            parts.append(Partition(r, r + h, c, c + w))
            c += w
        r += h
    return parts


def decomposition_for(n: int, processors: int, kind: str) -> Decomposition:
    """Build a named decomposition: ``"strip"`` or ``"block"``."""
    if kind == "strip":
        parts = decompose_strips(n, processors)
    elif kind == "block":
        parts = decompose_blocks(n, processors)
    else:
        raise DecompositionError(f"unknown decomposition kind {kind!r}")
    return Decomposition(n=n, partitions=tuple(parts), kind=kind)
