"""Strip decomposition with the paper's remainder rule (Section 3).

"It is easy to decompose the domain into strips for P processors: if
``n = k·P + r`` with ``0 ≤ r < P`` then ``r`` processors receive
``⌊n/P⌋ + 1`` contiguous rows, and the remaining processors each
receive ``⌊n/P⌋`` contiguous rows."  The number of communicating
boundaries is the same as if all partitions had equal work (Figure 4).
"""

from __future__ import annotations

from repro.errors import DecompositionError
from repro.partitioning.partition import Partition

__all__ = ["strip_heights", "decompose_strips"]


def strip_heights(n: int, processors: int) -> list[int]:
    """Row counts per strip under the remainder rule.

    The first ``r = n mod P`` strips get one extra row; heights are
    therefore within one row of each other and sum exactly to ``n``.
    """
    if n <= 0:
        raise DecompositionError(f"grid size must be positive, got {n}")
    if processors <= 0:
        raise DecompositionError(f"processor count must be positive, got {processors}")
    if processors > n:
        raise DecompositionError(
            f"cannot cut {n} rows into {processors} non-empty strips"
        )
    base, extra = divmod(n, processors)
    return [base + 1] * extra + [base] * (processors - extra)


def decompose_strips(n: int, processors: int) -> list[Partition]:
    """Cut the ``n × n`` grid into ``processors`` horizontal strips.

    Strips are ordered top to bottom; strip ``i`` neighbours strips
    ``i ± 1`` only, so the neighbour structure is a path regardless of
    the remainder.
    """
    heights = strip_heights(n, processors)
    partitions: list[Partition] = []
    row = 0
    for h in heights:
        partitions.append(Partition(row, row + h, 0, n))
        row += h
    assert row == n, "strip heights must tile the grid exactly"
    return partitions
