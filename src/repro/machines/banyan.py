"""Banyan-type switching networks (Section 7) — IBM RP3, BBN Butterfly.

Under the paper's assumptions (one global-memory module per processor,
2×2 switches, boundary values placed so concurrent reads never collide
at a switch, asynchronous contention-free writes) a global-memory read
costs two trips across ``log2(N)`` switch stages:

``r_w = 2 · w · log2(N)``

with ``w`` the switch traversal time.  The cycle is a synchronous read
phase followed by computation (writes overlap):

* strips:  ``t = 2·k·n · r_w + E·A·T  = 4·k·n·w·log2(N) + E·A·T``
* squares: ``t = 4·k·s · r_w + E·s²·T = 8·k·s·w·log2(N) + E·s²·T``

For realistic parameters this is minimized by the extremal allocations
(one processor or all of them), like the hypercube — the log factor
grows too slowly to create a useful interior optimum.  Optimal speedup
scales as ``n²/log(n)`` (squares, fixed points per processor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import (
    Architecture,
    perimeter_words_grid,
    validate_area,
    validate_area_grid,
)
from repro.stencils.perimeter import PartitionKind

__all__ = ["BanyanNetwork"]


@dataclass(frozen=True)
class BanyanNetwork(Architecture):
    """Multistage 2×2 switching network with contention-free reads.

    Parameters
    ----------
    w:
        Per-stage switch traversal time (seconds).
    """

    w: float

    name = "banyan"
    monotone_in_processors = True
    scalable = True

    def __post_init__(self) -> None:
        if self.w <= 0:
            raise InvalidParameterError("switch time w must be positive")

    def stages(self, processors: Any) -> Any:
        """Switch stages crossed one way: ``log2(N)``, 0 for one processor.

        ``N`` is treated continuously, matching the paper's analysis;
        the simulator uses the discrete ``ceil(log2(N))`` stage count.
        """
        return np.maximum(np.log2(np.asarray(processors, dtype=float)), 0.0)

    def read_word_time(self, processors: Any) -> Any:
        """``2·w·log2(N)`` — two network traversals per word."""
        return 2.0 * self.w * self.stages(processors)

    def read_volume(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        k = workload.k(kind)
        if kind is PartitionKind.STRIP:
            return 2.0 * k * workload.n + 0.0 * np.asarray(area, dtype=float)
        return 4.0 * k * np.sqrt(np.asarray(area, dtype=float))

    def communication_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        validate_area(workload, area)
        processors = workload.grid_points / np.asarray(area, dtype=float)
        return self.read_volume(workload, kind, area) * self.read_word_time(processors)

    # ------------------------------------------------------------- grid API

    def communication_time_grid(self, stencil, t_flop, kind, n, area) -> Any:
        """Broadcast ``t_a`` over (grid side, area) arrays: the read
        volume at ``2·w·log2(n²/A)`` per word."""
        if self._overrides_any(
            BanyanNetwork, "communication_time", "read_volume", "read_word_time", "stages"
        ):
            return Architecture.communication_time_grid(
                self, stencil, t_flop, kind, n, area
            )
        n_arr = np.asarray(n, dtype=float)
        validate_area_grid(n_arr, np.asarray(area, dtype=float))
        volume = perimeter_words_grid(stencil, kind, n, area, 2.0, 4.0)
        processors = n_arr * n_arr / np.asarray(area, dtype=float)
        return volume * self.read_word_time(processors)
