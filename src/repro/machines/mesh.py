"""Grid (mesh) architectures (Section 5) — Illiac IV, NASA's FEM.

Nearest-neighbour topology: strips and blocks embed with logical
neighbours physically adjacent, so the hypercube's contention-free
message model applies verbatim.  The observations of Section 4 carry
over: cycle time is monotone in the processor count and the optimal
allocation is extremal.

The one modelled difference is the optional *global bus with
convergence hardware*: such machines check convergence at (near) zero
communication cost, whereas hypercubes must disseminate a flag through
the network (Section 4's discussion; costs modelled in
:mod:`repro.solver.convergence`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machines.hypercube import Hypercube

__all__ = ["MeshGrid"]


@dataclass(frozen=True)
class MeshGrid(Hypercube):
    """Nearest-neighbour grid machine.

    Inherits the hypercube's per-message cost model — both are
    contention-free nearest-neighbour networks for this algorithm; they
    differ only in which partition counts embed (a mesh wants the block
    grid to match its physical shape, handled by the decomposition
    layer) and in convergence-check support.
    """

    #: When True, the machine has dedicated hardware (global bus +
    #: comparator) that makes convergence checks communication-free.
    convergence_hardware: bool = True

    name = "mesh"
    monotone_in_processors = True
    scalable = True
