"""Hypercube machines (Section 4) — e.g. the Intel iPSC.

Adjacent partitions map to adjacent processors (grey-code embedding of
strips, 2-D embedding of blocks), so a message never contends with
traffic between other partition pairs.  One message of ``V`` words
costs

``t_n = ceil(V / packet_words) · alpha + beta``

with ``alpha`` the per-packet transmission cost and ``beta`` the fixed
startup.  Single-port, half-duplex communication (footnote 2) means the
per-neighbour send and receive events serialize: a square partition
performs 8 message events per cycle (4 neighbours × send+receive), a
strip 4 (2 neighbours × send+receive), each carrying one ``k``-perimeter
side's worth of words.

``t_cycle`` is strictly decreasing in the processor count over
``[2, n²]``, so the optimal allocation is extremal (all processors, or
one when communication overwhelms even two).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import (
    Architecture,
    perimeter_words_grid,
    validate_area,
    validate_area_grid,
)
from repro.stencils.perimeter import PartitionKind

__all__ = ["Hypercube"]


@dataclass(frozen=True)
class Hypercube(Architecture):
    """Message-passing hypercube with contention-free neighbour links.

    Parameters
    ----------
    alpha:
        Per-packet transmission cost (seconds).
    beta:
        Per-message startup cost (seconds).
    packet_words:
        Words per packet; volumes are rounded up to whole packets.
    """

    alpha: float
    beta: float
    packet_words: int = 1

    name = "hypercube"
    monotone_in_processors = True
    scalable = True

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise InvalidParameterError("alpha and beta must be non-negative")
        if self.alpha == 0 and self.beta == 0:
            raise InvalidParameterError(
                "a free network makes every speedup infinite; give alpha or beta > 0"
            )
        if self.packet_words < 1:
            raise InvalidParameterError("packet_words must be >= 1")

    # ------------------------------------------------------------- volumes

    def message_events(self, kind: PartitionKind) -> int:
        """Serialized message events per cycle (send+receive per neighbour)."""
        return 4 if kind is PartitionKind.STRIP else 8

    def words_per_event(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """Words moved by one message event: one neighbour's ``k`` perimeters.

        Strips exchange ``k·n`` words per direction; squares ``k·s``
        words per side.
        """
        k = workload.k(kind)
        if kind is PartitionKind.STRIP:
            return k * workload.n + 0.0 * np.asarray(area, dtype=float)
        return k * np.sqrt(np.asarray(area, dtype=float))

    def message_time(self, volume_words: Any) -> Any:
        """``t_n`` for one message of the given volume (equation, Sec. 4)."""
        packets = np.ceil(np.asarray(volume_words, dtype=float) / self.packet_words)
        return packets * self.alpha + self.beta

    # ------------------------------------------------------------ interface

    def communication_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        validate_area(workload, area)
        events = self.message_events(kind)
        per_event = self.message_time(self.words_per_event(workload, kind, area))
        return events * per_event

    # ------------------------------------------------------------- grid API

    def communication_time_grid(self, stencil, t_flop, kind, n, area) -> Any:
        """Broadcast ``t_a`` over (grid side, area) arrays — same formula,
        with ``k·n`` (strips) or ``k·√A`` (squares) words per event."""
        if self._overrides_any(
            Hypercube, "communication_time", "words_per_event", "message_time"
        ):
            return Architecture.communication_time_grid(
                self, stencil, t_flop, kind, n, area
            )
        validate_area_grid(np.asarray(n, dtype=float), np.asarray(area, dtype=float))
        words = perimeter_words_grid(stencil, kind, n, area, 1.0, 1.0)
        events = self.message_events(kind)
        return events * self.message_time(words)
