"""Shared-memory bus architectures (Section 6) — e.g. the FLEX/32.

Transferring one word to/from global memory costs ``c + b`` ignoring
contention: ``c`` is fixed requester-side overhead (address calculation,
bus acquisition), ``b`` the bus cycle time.  With ``P`` processors
simultaneously requesting service the bus serializes, and the effective
per-word delay seen by each processor is ``c + b·P`` (Section 6.1,
footnote 3).

Two service disciplines are modelled:

* :class:`SynchronousBus` — a requester waits for every transfer;
  ``t_a = volume · (c + b·P)``.
* :class:`AsynchronousBus` — writes overlap computation: an iteration is
  a synchronous read phase (half the volume) followed by
  ``max(t_comp, bus backlog)`` (equation (7)).

Both admit *interior* optima: communication cost per processor
*decreases* with partition area, so ``t_cycle(A)`` is a convex sum of an
increasing and a decreasing term.  Closed-form optima are provided as
methods and cross-checked numerically in the tests.

``volume_mode`` selects the boundary-volume accounting: the derived
equations count reads + writes (``"read_write"``, default); the paper's
in-text N=16 example counts reads only (``"read_only"``).  See
EXPERIMENTS.md § E-TEXT1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import (
    Architecture,
    perimeter_words_grid,
    validate_area,
    validate_area_grid,
)
from repro.stencils.perimeter import PartitionKind

__all__ = ["BusArchitecture", "SynchronousBus", "AsynchronousBus", "VOLUME_MODES"]

VOLUME_MODES = ("read_write", "read_only")


@dataclass(frozen=True)
class BusArchitecture(Architecture):
    """Common state and volume accounting for bus machines.

    Parameters
    ----------
    b:
        Bus cycle time per word (seconds).
    c:
        Fixed per-word overhead (seconds); FLEX/32 measurements put
        ``c/b ≈ 1000``, the paper's motivating extreme.
    volume_mode:
        ``"read_write"`` (default) or ``"read_only"`` — see module docs.
    """

    b: float
    c: float = 0.0
    volume_mode: str = "read_write"

    name = "bus"
    monotone_in_processors = False
    scalable = False

    def __post_init__(self) -> None:
        if self.b <= 0:
            raise InvalidParameterError("bus cycle time b must be positive")
        if self.c < 0:
            raise InvalidParameterError("overhead c must be non-negative")
        if self.volume_mode not in VOLUME_MODES:
            raise InvalidParameterError(
                f"volume_mode must be one of {VOLUME_MODES}, got {self.volume_mode!r}"
            )

    # ------------------------------------------------------------- volumes

    def _direction_factor(self) -> int:
        """2 when reads and writes both hit the bus, 1 for reads only."""
        return 2 if self.volume_mode == "read_write" else 1

    def read_volume(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """Words a partition reads per iteration: ``2·k·n`` or ``4·k·s``."""
        k = workload.k(kind)
        if kind is PartitionKind.STRIP:
            return 2.0 * k * workload.n + 0.0 * np.asarray(area, dtype=float)
        return 4.0 * k * np.sqrt(np.asarray(area, dtype=float))

    def write_volume(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """Words written back; equal to the read volume (footnote 4)."""
        return self.read_volume(workload, kind, area)

    def bus_volume(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """Per-partition word volume that the service discipline charges."""
        factor = self._direction_factor()
        return factor * self.read_volume(workload, kind, area)

    def effective_word_delay(self, workload: Workload, area: Any) -> Any:
        """``c + b·P`` with ``P = n²/A`` simultaneous requesters."""
        processors = workload.grid_points / np.asarray(area, dtype=float)
        return self.c + self.b * processors

    # ------------------------------------------------------------- grid API

    def _read_volume_grid(self, stencil, kind: PartitionKind, n: Any, area: Any) -> Any:
        """Read volume broadcast over (grid side, area) arrays."""
        return perimeter_words_grid(stencil, kind, n, area, 2.0, 4.0)

    def _word_delay_grid(self, n: Any, area: Any) -> Any:
        """``c + b·P`` with ``P = n²/A``, broadcast."""
        n_arr = np.asarray(n, dtype=float)
        processors = n_arr * n_arr / np.asarray(area, dtype=float)
        return self.c + self.b * processors

    # ---------------------------------------------------- shared closed form

    def _strip_comm_coefficient(self, workload: Workload) -> float:
        """``v·k·b·n³`` in ``t_a = v·k·b·n³/A + v·k·c·n`` (v = 4 or 2)."""
        v = 2.0 * self._direction_factor()
        return v * workload.k(PartitionKind.STRIP) * self.b * workload.n**3


@dataclass(frozen=True)
class SynchronousBus(BusArchitecture):
    """Bus where every transfer stalls its requester (Section 6.1)."""

    name = "synchronous-bus"

    def communication_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        validate_area(workload, area)
        return self.bus_volume(workload, kind, area) * self.effective_word_delay(
            workload, area
        )

    # ------------------------------------------------------------- grid API

    def communication_time_grid(self, stencil, t_flop, kind, n, area) -> Any:
        if self._overrides_any(
            SynchronousBus,
            "communication_time",
            "read_volume",
            "bus_volume",
            "effective_word_delay",
        ):
            # A subclass swapped a scalar hook this transcription copies;
            # only the grouped scalar fallback stays bit-identical.
            return Architecture.communication_time_grid(
                self, stencil, t_flop, kind, n, area
            )
        validate_area_grid(np.asarray(n, dtype=float), np.asarray(area, dtype=float))
        volume = self._direction_factor() * self._read_volume_grid(
            stencil, kind, n, area
        )
        return volume * self._word_delay_grid(n, area)

    # ----------------------------------------------------- closed-form optima

    def optimal_strip_area(self, workload: Workload) -> float:
        """Equation (3): ``Â = sqrt(v·k·b·n³ / (E·T_fp))``.

        Note the overhead ``c`` does not influence the optimal area —
        the ``c`` term of ``t_a`` is independent of ``A`` for strips.
        """
        coeff = self._strip_comm_coefficient(workload)
        return math.sqrt(coeff / (workload.flops_per_point * workload.t_flop))

    def optimal_square_side(self, workload: Workload) -> float:
        """Positive root of ``E·T·s³ + (v/2)·k·c·s² − (v/2)·k·b·n² = 0``.

        With ``c = 0`` this is the paper's ``ŝ = ((v/2)·k·b·n²/(E·T))^(1/3)``
        (``v/2 = 4`` in read+write accounting).
        """
        k = workload.k(PartitionKind.SQUARE)
        et = workload.flops_per_point * workload.t_flop
        half_v = 2.0 * self._direction_factor()  # 4 (rw) or 2 (ro)
        if self.c == 0.0:
            return (half_v * k * self.b * workload.n**2 / et) ** (1.0 / 3.0)
        roots = np.roots(
            [et, half_v * k * self.c, 0.0, -half_v * k * self.b * workload.n**2]
        )
        real = roots[np.isreal(roots)].real
        positive = real[real > 0]
        if positive.size != 1:  # pragma: no cover - cubic has one sign change
            raise InvalidParameterError("expected exactly one positive root")
        return float(positive[0])

    def optimal_area(self, workload: Workload, kind: PartitionKind) -> float:
        """Unconstrained continuous optimal partition area."""
        if kind is PartitionKind.STRIP:
            return self.optimal_strip_area(workload)
        return self.optimal_square_side(workload) ** 2


@dataclass(frozen=True)
class AsynchronousBus(BusArchitecture):
    """Bus with asynchronous writes overlapping computation (Section 6.2).

    The cycle is ``t = t_read + max(t_comp, b · B_total)`` where
    ``t_read`` is half the synchronous ``t_a`` (the read phase is still
    synchronous) and ``B_total`` is the grid-wide write backlog offered
    to the bus during the compute phase (equation (7)).  Boundary points
    are updated first, so whenever a backlog exists the bus has been
    busy for the whole compute phase — hence the ``max``.
    """

    name = "asynchronous-bus"

    def read_time(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """Synchronous read phase: read volume at the contended word rate."""
        return self.read_volume(workload, kind, area) * self.effective_word_delay(
            workload, area
        )

    def write_backlog_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        """``b · B_total``: bus time to drain all processors' writes."""
        area_arr = np.asarray(area, dtype=float)
        processors = workload.grid_points / area_arr
        total_words = self.write_volume(workload, kind, area) * processors
        return self.b * total_words

    def communication_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        """Non-overlapped communication: read phase plus any write backlog
        sticking out beyond the compute phase."""
        validate_area(workload, area)
        comp = (
            workload.flops_per_point * np.asarray(area, dtype=float) * workload.t_flop
        )
        backlog = self.write_backlog_time(workload, kind, area)
        overhang = np.maximum(backlog - comp, 0.0)
        return self.read_time(workload, kind, area) + overhang

    def cycle_time(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """Equation (7): ``t_read + max(t_comp, b·B_total)``."""
        validate_area(workload, area)
        area_arr = np.asarray(area, dtype=float)
        comp = workload.flops_per_point * area_arr * workload.t_flop
        total = self.read_time(workload, kind, area) + np.maximum(
            comp, self.write_backlog_time(workload, kind, area)
        )
        if np.ndim(area) == 0:
            return float(total)
        return total

    # ------------------------------------------------------------- grid API

    def _write_backlog_grid(self, stencil, kind: PartitionKind, n: Any, area: Any) -> Any:
        n_arr = np.asarray(n, dtype=float)
        a_arr = np.asarray(area, dtype=float)
        processors = n_arr * n_arr / a_arr
        total_words = self._read_volume_grid(stencil, kind, n, area) * processors
        return self.b * total_words

    _GRID_SCALAR_HOOKS = (
        "communication_time",
        "cycle_time",
        "read_time",
        "write_backlog_time",
        "read_volume",
        "write_volume",
        "effective_word_delay",
    )

    def communication_time_grid(self, stencil, t_flop, kind, n, area) -> Any:
        if self._overrides_any(AsynchronousBus, *self._GRID_SCALAR_HOOKS):
            return Architecture.communication_time_grid(
                self, stencil, t_flop, kind, n, area
            )
        validate_area_grid(np.asarray(n, dtype=float), np.asarray(area, dtype=float))
        comp = stencil.flops_per_point * np.asarray(area, dtype=float) * t_flop
        backlog = self._write_backlog_grid(stencil, kind, n, area)
        overhang = np.maximum(backlog - comp, 0.0)
        read = self._read_volume_grid(stencil, kind, n, area) * self._word_delay_grid(
            n, area
        )
        return read + overhang

    def cycle_time_area_grid(self, stencil, t_flop, kind, n, area) -> np.ndarray:
        """Equation (7) over broadcast (n, area) arrays — the overlap is a
        ``max``, not a sum, so the base composition does not apply."""
        if self._overrides_any(AsynchronousBus, *self._GRID_SCALAR_HOOKS):
            # Base detects the overridden cycle_time and groups through
            # the subclass's own scalar implementation.
            return Architecture.cycle_time_area_grid(
                self, stencil, t_flop, kind, n, area
            )
        n_arr = np.asarray(n, dtype=float)
        a_arr = np.asarray(area, dtype=float)
        validate_area_grid(n_arr, a_arr)
        comp = stencil.flops_per_point * a_arr * t_flop
        read = self._read_volume_grid(stencil, kind, n, area) * self._word_delay_grid(
            n, area
        )
        return read + np.maximum(comp, self._write_backlog_grid(stencil, kind, n, area))

    # ----------------------------------------------------- closed-form optima

    def optimal_strip_area(self, workload: Workload) -> float:
        """Minimum where compute equals write backlog:
        ``Â = sqrt(2·k·b·n³ / (E·T))`` — a factor √2 below the
        synchronous optimum (Section 6.2).

        Unlike the synchronous case this does not depend on
        ``volume_mode``: reads and writes enter the asynchronous cycle
        separately, so there is no accounting ambiguity.
        """
        k = workload.k(PartitionKind.STRIP)
        coeff = 2.0 * k * self.b * workload.n**3
        return math.sqrt(coeff / (workload.flops_per_point * workload.t_flop))

    def optimal_square_side(self, workload: Workload) -> float:
        """``ŝ = (4·k·b·n²/(E·T))^(1/3)`` — identical to the synchronous
        c=0 side (Section 6.2: "This area is identical to that
        calculated for the synchronous bus case")."""
        k = workload.k(PartitionKind.SQUARE)
        et = workload.flops_per_point * workload.t_flop
        return (4.0 * k * self.b * workload.n**2 / et) ** (1.0 / 3.0)

    def optimal_area(self, workload: Workload, kind: PartitionKind) -> float:
        if kind is PartitionKind.STRIP:
            return self.optimal_strip_area(workload)
        return self.optimal_square_side(workload) ** 2
