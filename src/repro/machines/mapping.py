"""Ablation: what the hypercube's adjacency-preserving embedding buys.

Section 4 stresses that mapping logically adjacent partitions onto
physically adjacent processors means "there is no contention for
communication resources between non-logically adjacent partitions" and
message cost is distance-independent.  This module models the
counterfactual — a *random* partition-to-processor mapping — so the
embedding's value can be measured:

* a random pair of nodes in a ``d``-cube is ``d/2`` hops apart on
  average, so store-and-forward messages pay ``d/2`` full message
  times (``d = log2 N``);
* every message now crosses ~``d/2`` links, multiplying total link
  traffic by the same factor; with each node contributing the same
  number of messages, the expected slowdown from contention is modelled
  as that dilation factor again on the α-term.

The result: the constant-cycle scaled-speedup property dies — cycle
time grows like ``log N``, demoting the hypercube to banyan-like
``Θ(n²/log n)`` optimal speedup.  The E-ABL-MAPPING bench quantifies
the gap against the embedded mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.parameters import Workload
from repro.machines.base import validate_area
from repro.machines.hypercube import Hypercube
from repro.stencils.perimeter import PartitionKind

__all__ = ["RandomMappingHypercube"]


@dataclass(frozen=True)
class RandomMappingHypercube(Hypercube):
    """Hypercube whose partitions land on random nodes (no embedding).

    ``dilation(N) = max(1, log2(N)/2)`` multiplies the transmission
    term of every message (store-and-forward across that many hops, and
    an equal expected contention inflation); the startup ``beta`` is
    paid once per hop as well, which is what makes small messages so
    expensive without the embedding.
    """

    name = "hypercube-random-mapping"

    def dilation(self, processors: Any) -> Any:
        d = np.log2(np.maximum(np.asarray(processors, dtype=float), 1.0))
        return np.maximum(d / 2.0, 1.0)

    def communication_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        validate_area(workload, area)
        processors = workload.grid_points / np.asarray(area, dtype=float)
        events = self.message_events(kind)
        per_event = self.message_time(self.words_per_event(workload, kind, area))
        return events * per_event * self.dilation(processors)
