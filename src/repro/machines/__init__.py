"""Parallel-architecture models: hypercube, mesh, buses, banyan."""

from repro.machines.banyan import BanyanNetwork
from repro.machines.base import Architecture
from repro.machines.bus import (
    VOLUME_MODES,
    AsynchronousBus,
    BusArchitecture,
    SynchronousBus,
)
from repro.machines.bus_extensions import FullyAsynchronousBus
from repro.machines.mapping import RandomMappingHypercube
from repro.machines.catalog import (
    BBN_BUTTERFLY,
    DEFAULT_MACHINES,
    FEM_MESH,
    FLEX32,
    FLEX32_ASYNC,
    IBM_RP3,
    INTEL_IPSC,
    PAPER_BUS,
    PAPER_BUS_ASYNC,
    by_name,
)
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid

__all__ = [
    "Architecture",
    "AsynchronousBus",
    "BBN_BUTTERFLY",
    "BanyanNetwork",
    "BusArchitecture",
    "DEFAULT_MACHINES",
    "FEM_MESH",
    "FLEX32",
    "FLEX32_ASYNC",
    "FullyAsynchronousBus",
    "Hypercube",
    "IBM_RP3",
    "INTEL_IPSC",
    "MeshGrid",
    "PAPER_BUS",
    "RandomMappingHypercube",
    "PAPER_BUS_ASYNC",
    "SynchronousBus",
    "VOLUME_MODES",
    "by_name",
]
