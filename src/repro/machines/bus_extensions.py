"""Bus model extensions sketched (but not derived) in the paper.

Section 6.2 closes with: "Constant factor improvement remains even if
we relax the requirement that global memory reads are synchronous (in
this case we assume that half the grid points are updated in parallel
with the initial read requests, the other half in parallel with the
boundary writes; this gives an additional 126% improvement in
speedup)."

:class:`FullyAsynchronousBus` materializes that sketch: the iteration
splits into two half-compute phases, the first overlapping the boundary
reads, the second overlapping the boundary writes:

``t = max(E·A·T/2, b·B_read) + max(E·A·T/2, b·B_write)``

where ``B_read = B_write`` are the grid-wide boundary volumes (the
per-word overhead ``c`` is requester-side and overlaps compute here).
At the optimum both maxima cross, giving ``t* = E·Â·T`` with
``Â = sqrt(4·k·b·n³/E·T)`` for strips (√2 larger than the asynchronous
bus's) and ``ŝ³ = 8·k·b·n²/(E·T)`` for squares.  The optimal-speedup
gain over the asynchronous bus is another constant — ×√2 for strips and
×2^(1/3) ≈ ×1.26 for squares (the scanned paper's "126%" is almost
certainly "a 26%"); the exponents never improve, which is Section 6.2's
whole point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.parameters import Workload
from repro.machines.base import validate_area
from repro.machines.bus import BusArchitecture
from repro.stencils.perimeter import PartitionKind

__all__ = ["FullyAsynchronousBus"]


@dataclass(frozen=True)
class FullyAsynchronousBus(BusArchitecture):
    """Bus with reads *and* writes overlapping computation (Sec. 6.2 end).

    Feasible when half the partition's points can be updated before any
    imported boundary value is needed — interior points first, then
    boundary points once reads land; writes drain during the second
    half.  Thin partitions (fewer interior than boundary points) break
    the assumption, so this is an upper-bound model like the paper's.
    """

    name = "fully-async-bus"

    def read_backlog_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        """``b · B_read``: bus time to deliver every partition's reads."""
        area_arr = np.asarray(area, dtype=float)
        processors = workload.grid_points / area_arr
        return self.b * self.read_volume(workload, kind, area) * processors

    def communication_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        validate_area(workload, area)
        comp_half = (
            workload.flops_per_point * np.asarray(area, dtype=float) * workload.t_flop
        ) / 2.0
        read_overhang = np.maximum(
            self.read_backlog_time(workload, kind, area) - comp_half, 0.0
        )
        write_overhang = np.maximum(
            self.b
            * self.write_volume(workload, kind, area)
            * (workload.grid_points / np.asarray(area, dtype=float))
            - comp_half,
            0.0,
        )
        return read_overhang + write_overhang

    def cycle_time(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """``max(t_comp/2, b·B_read) + max(t_comp/2, b·B_write)``."""
        validate_area(workload, area)
        area_arr = np.asarray(area, dtype=float)
        comp_half = workload.flops_per_point * area_arr * workload.t_flop / 2.0
        total = np.maximum(
            comp_half, self.read_backlog_time(workload, kind, area)
        ) + np.maximum(
            comp_half,
            self.b
            * self.write_volume(workload, kind, area)
            * (workload.grid_points / area_arr),
        )
        if np.ndim(area) == 0:
            return float(total)
        return total

    # ----------------------------------------------------- closed-form optima

    def optimal_strip_area(self, workload: Workload) -> float:
        """Both maxima cross at the same area as the asynchronous bus."""
        import math

        k = workload.k(PartitionKind.STRIP)
        coeff = 2.0 * 2.0 * k * self.b * workload.n**3  # B = 2kn·P per phase... see below
        # Each phase balances E·A·T/2 against b·2kn·n²/A, i.e.
        # A² = 2·(2·k·b·n³)/(E·T) — √2 larger than the async bus area.
        return math.sqrt(coeff / (workload.flops_per_point * workload.t_flop))

    def optimal_square_side(self, workload: Workload) -> float:
        """E·s²·T/2 = 4·k·b·n²/s  ⇒  s³ = 8·k·b·n²/(E·T)."""
        k = workload.k(PartitionKind.SQUARE)
        et = workload.flops_per_point * workload.t_flop
        return (8.0 * k * self.b * workload.n**2 / et) ** (1.0 / 3.0)

    def optimal_area(self, workload: Workload, kind: PartitionKind) -> float:
        if kind is PartitionKind.STRIP:
            return self.optimal_strip_area(workload)
        return self.optimal_square_side(workload) ** 2
