"""Architecture interface: everything the model needs from a machine.

Each architecture supplies one iteration's cycle time

``t_cycle(A) = t_comp(A) + t_a(A)``      (equation (1))

as a function of partition area ``A`` (points per processor), partition
shape, and the workload.  Implementations must accept float areas — the
paper's analysis is continuous, with integrality restored afterwards by
:mod:`repro.core.allocation` — and must be NumPy-friendly so curves can
be evaluated over arrays of areas in one call.

The key structural property the paper exploits is whether ``t_cycle``
is *monotone decreasing in the processor count* (hypercube, mesh,
banyan: optimal allocation is extremal) or can have an *interior
minimum* (buses: contention grows with processors).  Machines declare
this via :attr:`Architecture.monotone_in_processors`.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.stencils.perimeter import PartitionKind, perimeters_required
from repro.stencils.stencil import Stencil

__all__ = ["Architecture", "validate_area", "validate_area_grid", "perimeter_words_grid"]


def validate_area_grid(n: np.ndarray, area: np.ndarray) -> None:
    """Grid analogue of :func:`validate_area`: positive, at most ``n²``."""
    if np.any(area <= 0):
        raise InvalidParameterError("partition area must be positive")
    if np.any(area > n * n):
        raise InvalidParameterError("partition area exceeds grid size")


def perimeter_words_grid(
    stencil: Stencil,
    kind: PartitionKind,
    n: Any,
    area: Any,
    strip_coeff: float,
    square_coeff: float,
) -> np.ndarray:
    """Section-3 boundary word volumes broadcast over (grid side, area).

    The one pattern every grid model shares: ``strip_coeff·k·n`` words
    for strips, ``square_coeff·k·√A`` for squares.  Machines differ only
    in the coefficients (bus/banyan reads: 2 and 4; hypercube
    per-message events: 1 and 1), so they all call this instead of
    keeping hand-copied transcriptions in sync.
    """
    k = perimeters_required(kind, stencil)
    n_arr = np.asarray(n, dtype=float)
    a_arr = np.asarray(area, dtype=float)
    if kind is PartitionKind.STRIP:
        return strip_coeff * k * n_arr + 0.0 * a_arr
    return square_coeff * k * np.sqrt(a_arr)


def validate_area(workload: Workload, area: Any) -> None:
    """Reject non-positive or over-full partition areas.

    Accepts scalars or arrays; an area may not exceed the whole grid
    (that would mean fewer than one processor).
    """
    arr = np.asarray(area, dtype=float)
    if np.any(arr <= 0):
        raise InvalidParameterError("partition area must be positive")
    if np.any(arr > workload.grid_points):
        raise InvalidParameterError(
            f"partition area {np.max(arr)} exceeds grid size {workload.grid_points}"
        )


class Architecture(abc.ABC):
    """A parallel machine's communication model.

    Two evaluation surfaces are exposed:

    * the scalar/area API (``cycle_time``, ``communication_time``) bound
      to a single :class:`Workload` — one grid size at a time;
    * the *grid* API (``cycle_time_grid`` and friends), which broadcasts
      over arrays of grid sides **and** partition areas simultaneously,
      so a whole (N, P) sweep costs one vectorized call.  The batch
      sweep engine (:mod:`repro.batch`) is built on this surface.
    """

    #: Human-readable architecture family name.
    name: str = "abstract"

    #: True when t_cycle is monotone in the processor count, making the
    #: optimal allocation extremal (Sections 4, 5, 7); False for buses.
    monotone_in_processors: bool = True

    #: True when the machine size is in principle unbounded (hypercube,
    #: banyan built to order); False when vendors cap it (buses, tens of
    #: processors).  Informational — callers pass explicit caps.
    scalable: bool = True

    # ------------------------------------------------------------ interface

    @abc.abstractmethod
    def communication_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        """``t_a``: data access/transfer + synchronization time per cycle.

        For overlap-capable machines this is the *non-overlapped* part,
        i.e. whatever extends the cycle beyond pure computation; the
        asynchronous bus overrides :meth:`cycle_time` instead because
        its overlap is a ``max``, not a sum.
        """

    def cycle_time(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """``t_cycle = t_comp + t_a`` (equation (1))."""
        validate_area(workload, area)
        comp = workload.flops_per_point * np.asarray(area, dtype=float) * workload.t_flop
        total = comp + self.communication_time(workload, kind, area)
        if np.ndim(area) == 0:
            return float(total)
        return total

    # ------------------------------------------------------------- grid API

    def _overrides_any(self, owner: type, *method_names: str) -> bool:
        """True when this instance's class overrides any named method.

        The closed-form grid transcriptions are only valid for the
        scalar formulas they were copied from; a subclass that swaps a
        scalar hook must be routed to the grouped scalar fallback or
        the engine's bit-equality contract breaks silently.
        """
        return any(
            getattr(type(self), name) is not getattr(owner, name)
            for name in method_names
        )

    def _grouped_scalar_grid(
        self,
        method_name: str,
        stencil: Stencil,
        t_flop: float,
        kind: PartitionKind,
        n: Any,
        area: Any,
    ) -> np.ndarray:
        """Evaluate a scalar-API method over broadcast (n, area) arrays.

        Groups cells by grid side, builds one :class:`Workload` per
        side, and calls the named scalar method with that side's area
        slice — bit-exact with per-point evaluation by construction,
        since it *is* the scalar code.  Both grid fallbacks share this.
        """
        from repro.core.parameters import Workload

        n_b, a_b = np.broadcast_arrays(
            np.asarray(n, dtype=float), np.asarray(area, dtype=float)
        )
        out = np.empty(n_b.shape, dtype=float)
        for side in np.unique(n_b):
            mask = n_b == side
            workload = Workload(n=int(side), stencil=stencil, t_flop=t_flop)
            out[mask] = np.asarray(
                getattr(self, method_name)(workload, kind, a_b[mask]), dtype=float
            )
        return out

    def communication_time_grid(
        self,
        stencil: Stencil,
        t_flop: float,
        kind: PartitionKind,
        n: Any,
        area: Any,
    ) -> np.ndarray:
        """``t_a`` broadcast over arrays of grid sides ``n`` and areas.

        The base implementation defers to the scalar
        :meth:`communication_time` grouped by grid side, so any
        architecture works unmodified; the catalog machines override it
        with closed-form broadcasting (no Python-level loop at all).
        """
        return self._grouped_scalar_grid(
            "communication_time", stencil, t_flop, kind, n, area
        )

    def cycle_time_area_grid(
        self,
        stencil: Stencil,
        t_flop: float,
        kind: PartitionKind,
        n: Any,
        area: Any,
    ) -> np.ndarray:
        """``t_cycle = t_comp + t_a`` over broadcast (n, area) arrays.

        The direct grid analogue of :meth:`cycle_time`: no one-processor
        special case (callers comparing against the serial run handle
        that, exactly as the scalar optimizer does).

        A subclass that redefines :meth:`cycle_time` itself (an overlap
        ``max`` instead of the ``comp + comm`` sum) must either override
        this too or get the grouped scalar fallback below — composing
        ``comp + communication_time_grid`` for such a machine would be
        only algebraically, not bitwise, equal to its cycle time.
        """
        n_arr = np.asarray(n, dtype=float)
        a_arr = np.asarray(area, dtype=float)
        validate_area_grid(n_arr, a_arr)
        if type(self).cycle_time is not Architecture.cycle_time:
            return self._grouped_scalar_grid(
                "cycle_time", stencil, t_flop, kind, n_arr, a_arr
            )
        comp = stencil.flops_per_point * a_arr * t_flop
        return comp + self.communication_time_grid(stencil, t_flop, kind, n_arr, a_arr)

    def cycle_time_grid(
        self,
        stencil: Stencil,
        t_flop: float,
        kind: PartitionKind,
        n: Any,
        processors: Any,
    ) -> np.ndarray:
        """``t_cycle`` over a broadcast (grid side, processor count) grid.

        ``P = 1`` maps to the serial time (no communication, Section 4),
        mirroring :func:`repro.core.cycle_time.cycle_time_vs_processors`.
        """
        n_arr, p_arr = np.broadcast_arrays(
            np.asarray(n, dtype=float), np.asarray(processors, dtype=float)
        )
        if np.any(p_arr < 1):
            raise InvalidParameterError("processor counts must be >= 1")
        n2 = n_arr * n_arr
        out = self.cycle_time_area_grid(stencil, t_flop, kind, n_arr, n2 / p_arr)
        serial = stencil.flops_per_point * n2 * t_flop
        return np.where(p_arr == 1.0, serial, out)

    # ----------------------------------------------------------- conveniences

    def cycle_time_all_processors(
        self, workload: Workload, kind: PartitionKind, processors: float
    ) -> float:
        """Cycle time when the grid is spread over ``processors`` machines."""
        if processors <= 0:
            raise InvalidParameterError("processors must be positive")
        if processors == 1:
            # One processor suffers no communication (Section 4).
            return workload.serial_time()
        return float(
            self.cycle_time(workload, kind, workload.grid_points / processors)
        )

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"
