"""Architecture interface: everything the model needs from a machine.

Each architecture supplies one iteration's cycle time

``t_cycle(A) = t_comp(A) + t_a(A)``      (equation (1))

as a function of partition area ``A`` (points per processor), partition
shape, and the workload.  Implementations must accept float areas — the
paper's analysis is continuous, with integrality restored afterwards by
:mod:`repro.core.allocation` — and must be NumPy-friendly so curves can
be evaluated over arrays of areas in one call.

The key structural property the paper exploits is whether ``t_cycle``
is *monotone decreasing in the processor count* (hypercube, mesh,
banyan: optimal allocation is extremal) or can have an *interior
minimum* (buses: contention grows with processors).  Machines declare
this via :attr:`Architecture.monotone_in_processors`.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.stencils.perimeter import PartitionKind

__all__ = ["Architecture", "validate_area"]


def validate_area(workload: Workload, area: Any) -> None:
    """Reject non-positive or over-full partition areas.

    Accepts scalars or arrays; an area may not exceed the whole grid
    (that would mean fewer than one processor).
    """
    arr = np.asarray(area, dtype=float)
    if np.any(arr <= 0):
        raise InvalidParameterError("partition area must be positive")
    if np.any(arr > workload.grid_points):
        raise InvalidParameterError(
            f"partition area {np.max(arr)} exceeds grid size {workload.grid_points}"
        )


class Architecture(abc.ABC):
    """A parallel machine's communication model."""

    #: Human-readable architecture family name.
    name: str = "abstract"

    #: True when t_cycle is monotone in the processor count, making the
    #: optimal allocation extremal (Sections 4, 5, 7); False for buses.
    monotone_in_processors: bool = True

    #: True when the machine size is in principle unbounded (hypercube,
    #: banyan built to order); False when vendors cap it (buses, tens of
    #: processors).  Informational — callers pass explicit caps.
    scalable: bool = True

    # ------------------------------------------------------------ interface

    @abc.abstractmethod
    def communication_time(
        self, workload: Workload, kind: PartitionKind, area: Any
    ) -> Any:
        """``t_a``: data access/transfer + synchronization time per cycle.

        For overlap-capable machines this is the *non-overlapped* part,
        i.e. whatever extends the cycle beyond pure computation; the
        asynchronous bus overrides :meth:`cycle_time` instead because
        its overlap is a ``max``, not a sum.
        """

    def cycle_time(self, workload: Workload, kind: PartitionKind, area: Any) -> Any:
        """``t_cycle = t_comp + t_a`` (equation (1))."""
        validate_area(workload, area)
        comp = workload.flops_per_point * np.asarray(area, dtype=float) * workload.t_flop
        total = comp + self.communication_time(workload, kind, area)
        if np.ndim(area) == 0:
            return float(total)
        return total

    # ----------------------------------------------------------- conveniences

    def cycle_time_all_processors(
        self, workload: Workload, kind: PartitionKind, processors: float
    ) -> float:
        """Cycle time when the grid is spread over ``processors`` machines."""
        if processors <= 0:
            raise InvalidParameterError("processors must be positive")
        if processors == 1:
            # One processor suffers no communication (Section 4).
            return workload.serial_time()
        return float(
            self.cycle_time(workload, kind, workload.grid_points / processors)
        )

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"
