"""Named machine presets with paper-era parameter magnitudes.

Absolute constants for 1985-vintage machines are only loosely recorded
in the paper, so these presets are *calibrated*, not measured:

* ``PAPER_BUS`` reproduces the Figure-7 anchor stated in Section 6.1 —
  "a 256×256 grid with square partitions and a 5-point stencil should
  be solved on 1 to 14 processors; the same grid with a 9-point stencil
  should use 1 to 22 processors."  With ``E(5pt)=5``, ``E(9pt)=10``,
  ``T_fp = 1 µs`` this pins ``E·T_fp/b ≈ 0.82`` for the 5-point
  stencil, i.e. ``b = 6.1 µs``.
* ``FLEX32`` uses the Section-6.1 measurement ``c/b ≈ 1000``.
* Hypercube/banyan presets use magnitudes typical of the cited machines
  (iPSC: ~ms message startup; Butterfly: sub-µs switch stages).

Every preset can be rebuilt with different constants via
``dataclasses.replace``; no result in this repo depends on the absolute
scale, only on the ratios the paper calls out.
"""

from __future__ import annotations

from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid
from repro.units import MICROSECOND, MILLISECOND

__all__ = [
    "INTEL_IPSC",
    "FEM_MESH",
    "PAPER_BUS",
    "PAPER_BUS_ASYNC",
    "FLEX32",
    "FLEX32_ASYNC",
    "BBN_BUTTERFLY",
    "IBM_RP3",
    "DEFAULT_MACHINES",
    "by_name",
]

#: Intel iPSC-like hypercube: ~1 ms per-message startup, 1 KB packets at
#: ~0.8 ms per packet (≈1.25 MB/s link), 128 8-byte words per packet.
INTEL_IPSC = Hypercube(alpha=0.8 * MILLISECOND, beta=1.0 * MILLISECOND, packet_words=128)

#: NASA Finite Element Machine-style mesh: slower serial links, but
#: dedicated convergence-check hardware on a global bus.
FEM_MESH = MeshGrid(
    alpha=1.0 * MILLISECOND,
    beta=0.5 * MILLISECOND,
    packet_words=64,
    convergence_hardware=True,
)

#: The bus whose constants anchor Figures 7 and 8 (see module docs).
PAPER_BUS = SynchronousBus(b=6.1 * MICROSECOND, c=0.0)

#: Same bus with asynchronous writes (Section 6.2).
PAPER_BUS_ASYNC = AsynchronousBus(b=6.1 * MICROSECOND, c=0.0)

#: FLEX/32-like bus: c/b = 1000 (Section 6.1's measured extreme).
FLEX32 = SynchronousBus(b=0.5 * MICROSECOND, c=500.0 * MICROSECOND)

FLEX32_ASYNC = AsynchronousBus(b=0.5 * MICROSECOND, c=500.0 * MICROSECOND)

#: BBN Butterfly-like banyan: ~0.2 µs per 2×2 switch stage.
BBN_BUTTERFLY = BanyanNetwork(w=0.2 * MICROSECOND)

#: IBM RP3-like banyan: a faster switch.
IBM_RP3 = BanyanNetwork(w=0.1 * MICROSECOND)

DEFAULT_MACHINES = {
    "ipsc": INTEL_IPSC,
    "fem": FEM_MESH,
    "paper-bus": PAPER_BUS,
    "paper-bus-async": PAPER_BUS_ASYNC,
    "flex32": FLEX32,
    "flex32-async": FLEX32_ASYNC,
    "butterfly": BBN_BUTTERFLY,
    "rp3": IBM_RP3,
}


def by_name(name: str):
    """Look up a preset machine; raises ``KeyError`` listing known names."""
    try:
        return DEFAULT_MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(DEFAULT_MACHINES))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}") from None
