"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``machines``
    List the preset machines and their constants.
``optimize``
    Optimal allocation for a problem on a preset machine.
``plan``
    Capacity planning: max useful processors and minimal grid sizes.
``simulate``
    Batched replica simulation: Monte Carlo cycle-time bands for one
    (machine, grid, P) configuration, many seeds at once.
``experiments``
    Run registered experiments (same as ``repro.experiments.runner``).
``serve``
    Long-running sweep server: plan/optimize/sweep over HTTP with a
    shared, size-bounded, deduplicated result cache.

``optimize`` and ``plan`` also run in whole-curve mode: ``--grid
LO:HI[:STEP]`` (or an explicit comma list) sweeps the axis through the
vectorized analysis layer and ``--cache-dir`` serves repeats from the
content-addressed sweep cache (``--max-cache-mb`` bounds it);
``optimize`` additionally accepts ``--jobs`` to shard large axes over a
process pool.  With ``--server URL`` both commands route through a
running ``repro serve`` daemon instead of computing locally — the
output is byte-identical either way.  Both commands also take
``--explain`` (print the optimized sweep graph — nodes, fusion groups,
cache hits — without executing anything) and ``--executor`` (pick the
graph backend: the default vectorized ``numpy`` executor or the scalar
``oracle`` reference; the rendered bytes are identical on both).

Examples::

    python -m repro machines
    python -m repro optimize --machine paper-bus --n 256 --stencil 5-point \
        --partition square --max-processors 16
    python -m repro optimize --machine paper-bus --grid 64:4096:64 \
        --cache-dir results/cache
    python -m repro plan --machine paper-bus --n 256
    python -m repro plan --machine paper-bus --grid 2:2000
    python -m repro simulate --machine paper-bus --n 64 --processors 16 \
        --replicas 1000 --jitter 0.05
    python -m repro experiments E-FIG7
    python -m repro serve --port 8733 --cache-dir results/cache --max-cache-mb 64
    python -m repro optimize --machine paper-bus --grid 64:4096:64 \
        --server http://127.0.0.1:8733
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.allocation import optimize_allocation
from repro.core.minimal_size import max_useful_processors, minimal_grid_side
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.bus import BusArchitecture
from repro.machines.catalog import DEFAULT_MACHINES, by_name
from repro.report.tables import format_kv_block, format_table
from repro.stencils.library import ALL_STENCILS
from repro.stencils.library import by_name as stencil_by_name
from repro.stencils.perimeter import PartitionKind

__all__ = ["main", "build_parser", "parse_axis"]


def parse_axis(spec: str) -> list[int]:
    """Parse a ``--grid`` axis: ``LO:HI``, ``LO:HI:STEP``, or ``a,b,c``.

    Ranges are inclusive of ``HI`` when the step lands on it, matching
    what a capacity plan over "64 to 4096 by 64" means.
    """
    try:
        if ":" in spec:
            parts = [int(p) for p in spec.split(":")]
            if len(parts) == 2:
                lo, hi, step = parts[0], parts[1], 1
            elif len(parts) == 3:
                lo, hi, step = parts
            else:
                raise ValueError("expected LO:HI or LO:HI:STEP")
            if step < 1 or lo > hi:
                raise ValueError("need LO <= HI and STEP >= 1")
            return list(range(lo, hi + 1, step))
        values = [int(p) for p in spec.split(",") if p.strip()]
        if not values:
            raise ValueError("empty axis")
        return values
    except ValueError as exc:
        raise InvalidParameterError(f"bad --grid axis {spec!r}: {exc}") from None


def _open_cache(cache_dir: Path | None, max_cache_mb: float | None = None):
    if cache_dir is None:
        return None
    from repro.batch.cache import SweepCache, max_cache_bytes

    return SweepCache(cache_dir, max_bytes=max_cache_bytes(max_cache_mb))


def _reject_server_plus_cache(
    args: argparse.Namespace, locally_meaningful: tuple[str, ...] = ()
) -> None:
    """Fail fast on flags that do nothing once a daemon owns the work.

    ``experiments --server`` passes ``locally_meaningful`` for the flags
    that still act in this process — ``--jobs`` sizes the worker pool
    and ``--max-cache-mb`` bounds each worker's memory tier — while for
    ``optimize``/``plan`` the daemon owns store, bound, and sharding.
    """
    if not getattr(args, "server", None):
        if getattr(args, "executor", "numpy") != "numpy":
            # Resolve eagerly so a typo fails before any work, naming
            # the registered backends.
            from repro.graph.executors import get_executor

            get_executor(args.executor)
        return
    if getattr(args, "cache_dir", None):
        raise InvalidParameterError(
            "--server and --cache-dir are mutually exclusive: a running "
            "daemon owns the shared store (start it with `repro serve "
            "--cache-dir ...`)"
        )
    if (
        getattr(args, "max_cache_mb", None) is not None
        and "max_cache_mb" not in locally_meaningful
    ):
        raise InvalidParameterError(
            "--max-cache-mb has no effect with --server here: bound the "
            "daemon's store instead (`repro serve --max-cache-mb ...`)"
        )
    if getattr(args, "jobs", 1) != 1 and "jobs" not in locally_meaningful:
        raise InvalidParameterError(
            "--jobs has no effect with --server here: the daemon shards "
            "large axes itself (`repro serve --jobs ...`)"
        )
    if getattr(args, "explain", False):
        raise InvalidParameterError(
            "--explain is local: it plans the sweep graph without "
            "executing, so there is nothing to route through a daemon"
        )
    if getattr(args, "executor", "numpy") != "numpy":
        raise InvalidParameterError(
            "--executor has no effect with --server: the daemon picks "
            "its own executor"
        )


def _cmd_machines(_args: argparse.Namespace) -> int:
    rows = []
    for name, machine in sorted(DEFAULT_MACHINES.items()):
        params = {
            f.name: getattr(machine, f.name)
            for f in machine.__dataclass_fields__.values()  # type: ignore[attr-defined]
        }
        rows.append(
            (name, type(machine).__name__, ", ".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}" for k, v in params.items()))
        )
    print(format_table(["preset", "model", "parameters"], rows))
    return 0


# --------------------------------------------------------------------------
# optimize
# --------------------------------------------------------------------------


def _render_optimize_point(
    args: argparse.Namespace,
    kind: PartitionKind,
    regime: str,
    processors: float,
    area: float,
    cycle_time: float,
    speedup: float,
    efficiency: float,
) -> None:
    """One allocation as a kv block — the shape both the offline scalar
    path and the daemon-served path feed, so their bytes can't drift."""
    print(
        format_kv_block(
            {
                "machine": args.machine,
                "grid": f"{args.n} x {args.n}",
                "stencil": args.stencil,
                "partition": kind.value,
                "regime": regime,
                "processors": round(processors, 2),
                "points per processor": round(area, 1),
                "cycle time (s)": cycle_time,
                "speedup": round(speedup, 3),
                "efficiency": round(efficiency, 3),
            },
            title="Optimal allocation",
        )
    )


def _cmd_optimize(args: argparse.Namespace) -> int:
    _reject_server_plus_cache(args)
    machine = by_name(args.machine)
    kind = PartitionKind(args.partition)
    if args.explain:
        return _optimize_explain(args, machine, kind)
    if args.grid is not None:
        return _optimize_grid(args, machine, kind)
    if args.server:
        # A one-point curve: element 0 equals the scalar optimizer bit
        # for bit (the analysis layer's pinned contract), so the block
        # below renders the same bytes the offline branch prints.
        from repro.service import ServiceClient

        curve = ServiceClient(args.server).allocation_curve(
            args.machine,
            args.stencil,
            kind.value,
            [args.n],
            t_flop=args.t_flop,
            max_processors=args.max_processors,
            integer=True,
        )
        _render_optimize_point(
            args,
            kind,
            curve.regime[0],
            curve.processors[0].item(),
            curve.area[0].item(),
            curve.cycle_time[0].item(),
            curve.speedup[0].item(),
            curve.efficiency[0].item(),
        )
        return 0
    if args.executor != "numpy":
        # One-point graph evaluation on the chosen backend; element 0
        # equals the scalar optimizer bit for bit, so the same bytes
        # render either way.
        from repro.graph import nodes as graph_nodes
        from repro.graph.planner import evaluate as graph_evaluate

        node = graph_nodes.allocation_curve(
            machine,
            stencil_by_name(args.stencil),
            kind,
            [args.n],
            t_flop=args.t_flop,
            max_processors=args.max_processors,
            integer=True,
        )
        arrays = graph_evaluate([node], executor=args.executor)[0]
        _render_optimize_point(
            args,
            kind,
            arrays["regime"][0],
            arrays["processors"][0].item(),
            arrays["area"][0].item(),
            arrays["cycle_time"][0].item(),
            arrays["speedup"][0].item(),
            arrays["efficiency"][0].item(),
        )
        return 0
    workload = Workload(n=args.n, stencil=stencil_by_name(args.stencil), t_flop=args.t_flop)
    alloc = optimize_allocation(
        machine, workload, kind, max_processors=args.max_processors, integer=True
    )
    _render_optimize_point(
        args,
        kind,
        alloc.regime,
        alloc.processors,
        alloc.area,
        alloc.cycle_time,
        alloc.speedup,
        alloc.efficiency,
    )
    return 0


def _render_allocation_curve(
    args: argparse.Namespace, kind: PartitionKind, curve, n_sides: int
) -> None:
    rows = [
        (
            int(curve.grid_sides[i]),
            curve.regime[i],
            round(curve.processors[i].item(), 2),
            round(curve.area[i].item(), 1),
            curve.cycle_time[i].item(),
            round(curve.speedup[i].item(), 3),
            round(curve.efficiency[i].item(), 3),
        )
        for i in range(len(curve))
    ]
    print(
        format_table(
            [
                "n",
                "regime",
                "processors",
                "points per processor",
                "cycle time (s)",
                "speedup",
                "efficiency",
            ],
            rows,
            title=(
                f"Optimal allocation curve: {args.machine}, {args.stencil}, "
                f"{kind.value} partitions, {n_sides} grid sides"
            ),
        )
    )


def _optimize_explain(args: argparse.Namespace, machine, kind: PartitionKind) -> int:
    """``optimize --explain``: print the planned graph, execute nothing."""
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import plan as plan_graph

    sides = [args.n] if args.grid is None else parse_axis(args.grid)
    node = graph_nodes.allocation_curve(
        machine,
        stencil_by_name(args.stencil),
        kind,
        sides,
        t_flop=args.t_flop,
        max_processors=args.max_processors,
        integer=True,
    )
    cache = _open_cache(args.cache_dir, args.max_cache_mb)
    print(plan_graph([node], cache=cache, executor=args.executor).explain())
    return 0


def _optimize_grid(args: argparse.Namespace, machine, kind: PartitionKind) -> int:
    """Whole-curve ``optimize``: one table over the swept grid sides."""
    sides = parse_axis(args.grid)
    if args.server:
        from repro.service import ServiceClient

        curve = ServiceClient(args.server).allocation_curve(
            args.machine,
            args.stencil,
            kind.value,
            sides,
            t_flop=args.t_flop,
            max_processors=args.max_processors,
            integer=True,
        )
        _render_allocation_curve(args, kind, curve, len(sides))
        return 0
    cache = _open_cache(args.cache_dir, args.max_cache_mb)
    if args.executor != "numpy":
        if args.jobs != 1:
            raise InvalidParameterError(
                "--jobs shards the numpy executor only; drop it with "
                f"--executor {args.executor}"
            )
        from repro.batch.analysis import AllocationCurve
        from repro.graph import nodes as graph_nodes
        from repro.graph.planner import evaluate as graph_evaluate

        node = graph_nodes.allocation_curve(
            machine,
            stencil_by_name(args.stencil),
            kind,
            sides,
            t_flop=args.t_flop,
            max_processors=args.max_processors,
            integer=True,
        )
        arrays = graph_evaluate([node], cache=cache, executor=args.executor)[0]
        curve = AllocationCurve.from_arrays(arrays, kind)
    else:
        from repro.batch import sharded_allocation_curve

        curve = sharded_allocation_curve(
            machine,
            stencil_by_name(args.stencil),
            kind,
            sides,
            t_flop=args.t_flop,
            max_processors=args.max_processors,
            integer=True,
            jobs=args.jobs,
            cache=cache,
        )
    _render_allocation_curve(args, kind, curve, len(sides))
    if cache is not None:
        print()
        print(f"sweep cache: {cache.stats.describe()}")
    return 0


# --------------------------------------------------------------------------
# plan
# --------------------------------------------------------------------------


def _render_plan_thresholds(args: argparse.Namespace, rows: list[tuple]) -> None:
    print(
        format_table(
            ["stencil", "partition", "max useful processors"],
            rows,
            title=f"Capacity plan: {args.machine}, {args.n} x {args.n}",
        )
    )


def _render_plan_defaults(rows: list[tuple]) -> None:
    print()
    print(
        format_table(
            ["N processors", "min grid side (squares, 5-point)"],
            rows,
        )
    )


def _render_plan_grid(args: argparse.Namespace, rows: list[tuple], n_points: int) -> None:
    print()
    print(
        format_table(
            ["N processors", "min grid side (strips)", "min grid side (squares)"],
            rows,
            title=f"Capacity curve: {args.machine}, {n_points} machine sizes",
        )
    )


def _cmd_plan(args: argparse.Namespace) -> int:
    _reject_server_plus_cache(args)
    machine = by_name(args.machine)
    if not isinstance(machine, BusArchitecture):
        print(
            f"{args.machine} is not a bus: allocation is extremal — use all "
            "processors (or one, if the network is slower than computing "
            "locally).  Capacity planning thresholds apply to buses."
        )
        return 0
    if args.server:
        return _plan_via_server(args)
    if args.explain:
        return _plan_explain(args, machine)
    rows = []
    for stencil in ALL_STENCILS:
        w = Workload(n=args.n, stencil=stencil)
        for kind in (PartitionKind.STRIP, PartitionKind.SQUARE):
            rows.append(
                (
                    stencil.name,
                    kind.value,
                    round(max_useful_processors(machine, w, kind), 1),
                )
            )
    _render_plan_thresholds(args, rows)
    if args.grid is not None:
        return _plan_grid(args, machine)
    rows = []
    for n_procs in (8, 16, 32):
        side = minimal_grid_side(machine, 1, 5.0, 1e-6, n_procs, PartitionKind.SQUARE)
        rows.append((n_procs, round(side)))
    _render_plan_defaults(rows)
    return 0


def _plan_via_server(args: argparse.Namespace) -> int:
    """The whole ``plan`` output from one daemon request, same bytes."""
    from repro.service import ServiceClient

    grid = None if args.grid is None else parse_axis(args.grid)
    plan = ServiceClient(args.server).plan(args.machine, args.n, grid)
    kinds = (PartitionKind.STRIP, PartitionKind.SQUARE)
    rows = [
        (
            str(plan["stencils"][i]),
            kind.value,
            round(plan["max_useful"][i, j].item(), 1),
        )
        for i in range(plan["stencils"].size)
        for j, kind in enumerate(kinds)
    ]
    _render_plan_thresholds(args, rows)
    if grid is None:
        _render_plan_defaults(
            [
                (int(p), round(side.item()))
                for p, side in zip(plan["default_processors"], plan["default_sides"])
            ]
        )
        return 0
    _render_plan_grid(
        args,
        [
            (
                int(plan["grid_processors"][i]),
                round(plan["grid_strip"][i].item()),
                round(plan["grid_square"][i].item()),
            )
            for i in range(plan["grid_processors"].size)
        ],
        len(grid),
    )
    return 0


def _plan_explain(args: argparse.Namespace, machine) -> int:
    """``plan --explain``: the graph a capacity plan builds, unexecuted.

    Mirrors the daemon's ``plan`` bundle: one max-useful threshold node
    per (stencil, partition) pair plus the minimal-grid-side node over
    the machine-size axis (``--grid`` or the default sizes).
    """
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import plan as plan_graph

    forest = [
        graph_nodes.max_useful_processors(machine, stencil, kind, [args.n])
        for stencil in ALL_STENCILS
        for kind in (PartitionKind.STRIP, PartitionKind.SQUARE)
    ]
    axis = [8, 16, 32] if args.grid is None else parse_axis(args.grid)
    forest.append(graph_nodes.plan_grid(machine, axis))
    cache = _open_cache(args.cache_dir, args.max_cache_mb)
    print(plan_graph(forest, cache=cache, executor=args.executor).explain())
    return 0


def _plan_grid(args: argparse.Namespace, machine) -> int:
    """Whole-curve capacity plan: minimal grid sides over the N axis."""
    from repro.graph import nodes as graph_nodes
    from repro.graph.planner import evaluate as graph_evaluate

    processors = parse_axis(args.grid)
    cache = _open_cache(args.cache_dir, args.max_cache_mb)
    curves = graph_evaluate(
        [graph_nodes.plan_grid(machine, processors)],
        cache=cache,
        executor=args.executor,
    )[0]
    rows = [
        (
            n_procs,
            round(curves[PartitionKind.STRIP.value][i].item()),
            round(curves[PartitionKind.SQUARE.value][i].item()),
        )
        for i, n_procs in enumerate(processors)
    ]
    _render_plan_grid(args, rows, len(processors))
    if cache is not None:
        print()
        print(f"sweep cache: {cache.stats.describe()}")
    return 0


# --------------------------------------------------------------------------
# simulate
# --------------------------------------------------------------------------


def _render_simulation(args: argparse.Namespace, kind: PartitionKind, arrays) -> None:
    """One replica ensemble as a kv block (plus a per-seed table when
    small) — the shape both the offline graph path and the daemon-served
    path feed, so their bytes can't drift."""
    import numpy as np

    cycles = np.asarray(arrays["cycle_times"], dtype=np.float64)
    print(
        format_kv_block(
            {
                "machine": args.machine,
                "grid": f"{args.n} x {args.n}",
                "processors": args.processors,
                "stencil": args.stencil,
                "partition": kind.value,
                "mode": args.mode,
                "jitter": args.jitter,
                "replicas": int(cycles.size),
                "mean cycle time (s)": cycles.mean().item(),
                "std cycle time (s)": cycles.std().item(),
                "min cycle time (s)": cycles.min().item(),
                "q05 cycle time (s)": np.quantile(cycles, 0.05).item(),
                "q95 cycle time (s)": np.quantile(cycles, 0.95).item(),
                "max cycle time (s)": cycles.max().item(),
            },
            title="Replica simulation",
        )
    )
    if cycles.size <= 16:
        seeds = np.asarray(arrays["seeds"]).tolist()
        print()
        print(
            format_table(
                ["seed", "cycle time (s)"],
                [(int(s), c.item()) for s, c in zip(seeds, cycles)],
            )
        )


def _cmd_simulate(args: argparse.Namespace) -> int:
    _reject_server_plus_cache(args)
    kind = PartitionKind(args.partition)
    if args.replicas < 1:
        raise InvalidParameterError(f"--replicas must be >= 1, got {args.replicas}")
    seeds = list(range(args.seed, args.seed + args.replicas))

    def build_node():
        from repro.graph import nodes as graph_nodes

        return graph_nodes.sim_sweep(
            by_name(args.machine),
            stencil_by_name(args.stencil),
            kind,
            args.n,
            args.processors,
            seeds,
            t_flop=args.t_flop,
            mode=args.mode,
            jitter=args.jitter,
        )

    if args.explain:
        from repro.graph.planner import plan as plan_graph

        cache = _open_cache(args.cache_dir, args.max_cache_mb)
        print(plan_graph([build_node()], cache=cache, executor=args.executor).explain())
        return 0
    if args.server:
        from repro.service import ServiceClient

        arrays = ServiceClient(args.server).sim_sweep(
            args.machine,
            args.n,
            args.processors,
            args.stencil,
            kind.value,
            replicas=args.replicas,
            seed=args.seed,
            t_flop=args.t_flop,
            mode=args.mode,
            jitter=args.jitter,
        )
    else:
        from repro.graph.planner import evaluate as graph_evaluate

        cache = _open_cache(args.cache_dir, args.max_cache_mb)
        arrays = graph_evaluate(
            [build_node()], cache=cache, executor=args.executor
        )[0]
    _render_simulation(args, kind, arrays)
    return 0


# --------------------------------------------------------------------------
# experiments / serve
# --------------------------------------------------------------------------


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_and_report

    if args.list:
        from repro.experiments import all_experiments

        for exp_id in sorted(all_experiments()):
            print(exp_id)
        return 0
    _reject_server_plus_cache(args, locally_meaningful=("jobs", "max_cache_mb"))
    return run_and_report(
        args.output,
        args.ids or None,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        server=args.server,
        max_cache_mb=args.max_cache_mb,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import AsyncSweepServer, SweepServer

    common = dict(
        host=args.host,
        port=args.port,
        cache_dir=None if args.cache_dir is None else str(args.cache_dir),
        max_cache_mb=args.max_cache_mb,
        jobs=args.jobs,
        batch_window_s=args.batch_window,
        read_timeout_s=args.read_timeout,
        drain_timeout_s=args.drain_timeout,
    )
    if args.backend == "asyncio":
        # The asyncio backend installs its own SIGTERM/SIGINT handlers
        # on the loop; serve_forever returns after drain + flush.
        server: AsyncSweepServer | SweepServer = AsyncSweepServer(
            workers=args.workers, **common
        )
    else:
        server = SweepServer(**common)

        # SIGTERM drains the same way ^C does: serve_forever unwinds
        # through the KeyboardInterrupt path into close() below.
        def _sigterm(signum: int, frame: object) -> None:
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _sigterm)
    bound = "unbounded" if args.max_cache_mb is None else f"{args.max_cache_mb:g} MiB/tier"
    store = "memory only" if args.cache_dir is None else str(args.cache_dir)
    print(
        f"repro sweep server ({args.backend}) listening on {server.url}", flush=True
    )
    print(f"store: {store} ({bound}); GET /v1/stats for counters", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining in-flight requests)")
    finally:
        server.close()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analyze import lint_tree, render_text, write_json

    report = lint_tree()
    if args.format == "json":
        output = args.output if args.output is not None else Path("results/LINT.json")
        write_json(report, output)
        print(f"wrote {output} ({'clean' if report.ok else 'FINDINGS'})")
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list machine presets").set_defaults(
        func=_cmd_machines
    )

    opt = sub.add_parser("optimize", help="optimal allocation for a problem")
    opt.add_argument("--machine", default="paper-bus", choices=sorted(DEFAULT_MACHINES))
    opt.add_argument("--n", type=int, default=256)
    opt.add_argument("--stencil", default="5-point")
    opt.add_argument("--partition", default="square", choices=["strip", "square"])
    opt.add_argument("--max-processors", type=int, default=None)
    opt.add_argument("--t-flop", type=float, default=1e-6)
    opt.add_argument(
        "--grid",
        default=None,
        help="sweep grid sides (LO:HI[:STEP] or a,b,c) — whole-curve output",
    )
    opt.add_argument(
        "--cache-dir", type=Path, default=None, help="sweep-cache directory"
    )
    opt.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        help="LRU bound per cache tier (MiB); default unbounded",
    )
    opt.add_argument(
        "--jobs", type=int, default=1, help="shard large --grid axes over N workers"
    )
    opt.add_argument(
        "--server",
        default=None,
        help="route through a running `repro serve` daemon (URL)",
    )
    opt.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized sweep graph (nodes, fusion groups, "
        "cache hits) without executing",
    )
    opt.add_argument(
        "--executor",
        default="numpy",
        help="graph executor: numpy (vectorized, default) or oracle "
        "(scalar repro.core reference)",
    )
    opt.set_defaults(func=_cmd_optimize)

    plan = sub.add_parser("plan", help="capacity planning thresholds")
    plan.add_argument("--machine", default="paper-bus", choices=sorted(DEFAULT_MACHINES))
    plan.add_argument("--n", type=int, default=256)
    plan.add_argument(
        "--grid",
        default=None,
        help="sweep machine sizes N (LO:HI[:STEP] or a,b,c) — whole-curve output",
    )
    plan.add_argument(
        "--cache-dir", type=Path, default=None, help="sweep-cache directory"
    )
    plan.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        help="LRU bound per cache tier (MiB); default unbounded",
    )
    plan.add_argument(
        "--server",
        default=None,
        help="route through a running `repro serve` daemon (URL)",
    )
    plan.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized sweep graph (nodes, fusion groups, "
        "cache hits) without executing",
    )
    plan.add_argument(
        "--executor",
        default="numpy",
        help="graph executor: numpy (vectorized, default) or oracle "
        "(scalar repro.core reference)",
    )
    plan.set_defaults(func=_cmd_plan)

    simc = sub.add_parser(
        "simulate", help="batched replica simulation (Monte Carlo bands)"
    )
    simc.add_argument("--machine", default="paper-bus", choices=sorted(DEFAULT_MACHINES))
    simc.add_argument("--n", type=int, default=64)
    simc.add_argument(
        "--processors", type=int, default=16, help="processor count P"
    )
    simc.add_argument("--stencil", default="5-point")
    simc.add_argument("--partition", default="square", choices=["strip", "square"])
    simc.add_argument(
        "--mode",
        default="barrier",
        choices=["barrier", "pipelined"],
        help="bus scheduling discipline",
    )
    simc.add_argument(
        "--replicas", type=int, default=1, help="ensemble size (consecutive seeds)"
    )
    simc.add_argument("--seed", type=int, default=0, help="first replica seed")
    simc.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        help="per-phase multiplicative noise amplitude in [0, 1); 0 is "
        "the deterministic event-level trace",
    )
    simc.add_argument("--t-flop", type=float, default=1e-6)
    simc.add_argument(
        "--cache-dir", type=Path, default=None, help="sweep-cache directory"
    )
    simc.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        help="LRU bound per cache tier (MiB); default unbounded",
    )
    simc.add_argument(
        "--server",
        default=None,
        help="route through a running `repro serve` daemon (URL)",
    )
    simc.add_argument(
        "--explain",
        action="store_true",
        help="print the optimized sweep graph (nodes, fusion groups, "
        "cache hits) without executing",
    )
    simc.add_argument(
        "--executor",
        default="numpy",
        help="graph executor: numpy (vectorized, default) or oracle "
        "(scalar event-level reference)",
    )
    simc.set_defaults(func=_cmd_simulate)

    exp = sub.add_parser("experiments", help="run paper experiments")
    exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    exp.add_argument("--list", action="store_true")
    exp.add_argument("--output", type=Path, default=None, help="CSV directory")
    exp.add_argument(
        "--jobs", type=int, default=1, help="experiments to run concurrently"
    )
    exp.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="enable the disk-backed sweep cache under this directory",
    )
    exp.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        help="LRU bound per cache tier (MiB); default unbounded",
    )
    exp.add_argument(
        "--server",
        default=None,
        help="route sweeps through a running `repro serve` daemon (URL)",
    )
    exp.set_defaults(func=_cmd_experiments)

    serve = sub.add_parser(
        "serve", help="long-running sweep server (JSON over HTTP)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8733, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--cache-dir", type=Path, default=None, help="shared .npz store directory"
    )
    serve.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        help="LRU bound per cache tier (MiB); default unbounded",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, help="worker processes for large batched axes"
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        help="seconds a cold request waits to micro-batch compatible traffic",
    )
    serve.add_argument(
        "--backend",
        choices=("thread", "asyncio"),
        default="thread",
        help="transport: one thread per connection (thread) or one event "
        "loop + a bounded compute pool (asyncio)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=8,
        help="compute threads for --backend asyncio (shared by all connections)",
    )
    serve.add_argument(
        "--read-timeout",
        type=float,
        default=60.0,
        help="seconds before an idle or half-open connection is closed",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds a graceful shutdown waits for in-flight requests",
    )
    serve.set_defaults(func=_cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="static invariant checks over the repro source tree",
        description=(
            "Run the repo's own AST analyzer: fingerprint purity, lock "
            "discipline, vectorization guard, and parity coverage. "
            "Exits 0 only when no unsuppressed finding remains."
        ),
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    lint.add_argument(
        "--output",
        type=Path,
        default=None,
        help="JSON output path (default results/LINT.json; json format only)",
    )
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
