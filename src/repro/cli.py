"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``machines``
    List the preset machines and their constants.
``optimize``
    Optimal allocation for a problem on a preset machine.
``plan``
    Capacity planning: max useful processors and minimal grid sizes.
``experiments``
    Run registered experiments (same as ``repro.experiments.runner``).

``optimize`` and ``plan`` also run in whole-curve mode: ``--grid
LO:HI[:STEP]`` (or an explicit comma list) sweeps the axis through the
vectorized analysis layer and ``--cache-dir`` serves repeats from the
content-addressed sweep cache; ``optimize`` additionally accepts
``--jobs`` to shard large axes over a process pool.

Examples::

    python -m repro machines
    python -m repro optimize --machine paper-bus --n 256 --stencil 5-point \
        --partition square --max-processors 16
    python -m repro optimize --machine paper-bus --grid 64:4096:64 \
        --cache-dir results/cache
    python -m repro plan --machine paper-bus --n 256
    python -m repro plan --machine paper-bus --grid 2:2000
    python -m repro experiments E-FIG7
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.allocation import optimize_allocation
from repro.core.minimal_size import max_useful_processors, minimal_grid_side
from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.bus import BusArchitecture
from repro.machines.catalog import DEFAULT_MACHINES, by_name
from repro.report.tables import format_kv_block, format_table
from repro.stencils.library import ALL_STENCILS
from repro.stencils.library import by_name as stencil_by_name
from repro.stencils.perimeter import PartitionKind

__all__ = ["main", "build_parser", "parse_axis"]


def parse_axis(spec: str) -> list[int]:
    """Parse a ``--grid`` axis: ``LO:HI``, ``LO:HI:STEP``, or ``a,b,c``.

    Ranges are inclusive of ``HI`` when the step lands on it, matching
    what a capacity plan over "64 to 4096 by 64" means.
    """
    try:
        if ":" in spec:
            parts = [int(p) for p in spec.split(":")]
            if len(parts) == 2:
                lo, hi, step = parts[0], parts[1], 1
            elif len(parts) == 3:
                lo, hi, step = parts
            else:
                raise ValueError("expected LO:HI or LO:HI:STEP")
            if step < 1 or lo > hi:
                raise ValueError("need LO <= HI and STEP >= 1")
            return list(range(lo, hi + 1, step))
        values = [int(p) for p in spec.split(",") if p.strip()]
        if not values:
            raise ValueError("empty axis")
        return values
    except ValueError as exc:
        raise InvalidParameterError(f"bad --grid axis {spec!r}: {exc}") from None


def _open_cache(cache_dir: Path | None):
    if cache_dir is None:
        return None
    from repro.batch import SweepCache

    return SweepCache(cache_dir)


def _cmd_machines(_args: argparse.Namespace) -> int:
    rows = []
    for name, machine in sorted(DEFAULT_MACHINES.items()):
        params = {
            f.name: getattr(machine, f.name)
            for f in machine.__dataclass_fields__.values()  # type: ignore[attr-defined]
        }
        rows.append(
            (name, type(machine).__name__, ", ".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}" for k, v in params.items()))
        )
    print(format_table(["preset", "model", "parameters"], rows))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    machine = by_name(args.machine)
    kind = PartitionKind(args.partition)
    if args.grid is not None:
        return _optimize_grid(args, machine, kind)
    workload = Workload(n=args.n, stencil=stencil_by_name(args.stencil), t_flop=args.t_flop)
    alloc = optimize_allocation(
        machine, workload, kind, max_processors=args.max_processors, integer=True
    )
    print(
        format_kv_block(
            {
                "machine": args.machine,
                "grid": f"{args.n} x {args.n}",
                "stencil": args.stencil,
                "partition": kind.value,
                "regime": alloc.regime,
                "processors": round(alloc.processors, 2),
                "points per processor": round(alloc.area, 1),
                "cycle time (s)": alloc.cycle_time,
                "speedup": round(alloc.speedup, 3),
                "efficiency": round(alloc.efficiency, 3),
            },
            title="Optimal allocation",
        )
    )
    return 0


def _optimize_grid(args: argparse.Namespace, machine, kind: PartitionKind) -> int:
    """Whole-curve ``optimize``: one table over the swept grid sides."""
    from repro.batch import sharded_allocation_curve

    sides = parse_axis(args.grid)
    cache = _open_cache(args.cache_dir)
    curve = sharded_allocation_curve(
        machine,
        stencil_by_name(args.stencil),
        kind,
        sides,
        t_flop=args.t_flop,
        max_processors=args.max_processors,
        integer=True,
        jobs=args.jobs,
        cache=cache,
    )
    rows = [
        (
            int(curve.grid_sides[i]),
            curve.regime[i],
            round(curve.processors[i].item(), 2),
            round(curve.area[i].item(), 1),
            curve.cycle_time[i].item(),
            round(curve.speedup[i].item(), 3),
            round(curve.efficiency[i].item(), 3),
        )
        for i in range(len(curve))
    ]
    print(
        format_table(
            [
                "n",
                "regime",
                "processors",
                "points per processor",
                "cycle time (s)",
                "speedup",
                "efficiency",
            ],
            rows,
            title=(
                f"Optimal allocation curve: {args.machine}, {args.stencil}, "
                f"{kind.value} partitions, {len(sides)} grid sides"
            ),
        )
    )
    if cache is not None:
        print()
        print(f"sweep cache: {cache.stats.describe()}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    machine = by_name(args.machine)
    if not isinstance(machine, BusArchitecture):
        print(
            f"{args.machine} is not a bus: allocation is extremal — use all "
            "processors (or one, if the network is slower than computing "
            "locally).  Capacity planning thresholds apply to buses."
        )
        return 0
    rows = []
    for stencil in ALL_STENCILS:
        w = Workload(n=args.n, stencil=stencil)
        for kind in (PartitionKind.STRIP, PartitionKind.SQUARE):
            rows.append(
                (
                    stencil.name,
                    kind.value,
                    round(max_useful_processors(machine, w, kind), 1),
                )
            )
    print(
        format_table(
            ["stencil", "partition", "max useful processors"],
            rows,
            title=f"Capacity plan: {args.machine}, {args.n} x {args.n}",
        )
    )
    if args.grid is not None:
        return _plan_grid(args, machine)
    rows = []
    for n_procs in (8, 16, 32):
        side = minimal_grid_side(machine, 1, 5.0, 1e-6, n_procs, PartitionKind.SQUARE)
        rows.append((n_procs, round(side)))
    print()
    print(
        format_table(
            ["N processors", "min grid side (squares, 5-point)"],
            rows,
        )
    )
    return 0


def _plan_grid(args: argparse.Namespace, machine) -> int:
    """Whole-curve capacity plan: minimal grid sides over the N axis."""
    import numpy as np

    from repro.batch import minimal_grid_side_curve

    processors = parse_axis(args.grid)
    cache = _open_cache(args.cache_dir)

    def compute() -> dict:
        return {
            kind.value: minimal_grid_side_curve(
                machine, 1, 5.0, 1e-6, processors, kind
            )
            for kind in (PartitionKind.STRIP, PartitionKind.SQUARE)
        }

    if cache is None:
        curves = compute()
    else:
        request = ("plan_grid", machine, np.asarray(processors, dtype=float))
        curves = cache.get_or_compute(request, compute)
    rows = [
        (
            n_procs,
            round(curves[PartitionKind.STRIP.value][i].item()),
            round(curves[PartitionKind.SQUARE.value][i].item()),
        )
        for i, n_procs in enumerate(processors)
    ]
    print()
    print(
        format_table(
            ["N processors", "min grid side (strips)", "min grid side (squares)"],
            rows,
            title=f"Capacity curve: {args.machine}, {len(processors)} machine sizes",
        )
    )
    if cache is not None:
        print()
        print(f"sweep cache: {cache.stats.describe()}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_and_report

    if args.list:
        from repro.experiments import all_experiments

        for exp_id in sorted(all_experiments()):
            print(exp_id)
        return 0
    return run_and_report(
        args.output, args.ids or None, jobs=args.jobs, cache_dir=args.cache_dir
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list machine presets").set_defaults(
        func=_cmd_machines
    )

    opt = sub.add_parser("optimize", help="optimal allocation for a problem")
    opt.add_argument("--machine", default="paper-bus", choices=sorted(DEFAULT_MACHINES))
    opt.add_argument("--n", type=int, default=256)
    opt.add_argument("--stencil", default="5-point")
    opt.add_argument("--partition", default="square", choices=["strip", "square"])
    opt.add_argument("--max-processors", type=int, default=None)
    opt.add_argument("--t-flop", type=float, default=1e-6)
    opt.add_argument(
        "--grid",
        default=None,
        help="sweep grid sides (LO:HI[:STEP] or a,b,c) — whole-curve output",
    )
    opt.add_argument(
        "--cache-dir", type=Path, default=None, help="sweep-cache directory"
    )
    opt.add_argument(
        "--jobs", type=int, default=1, help="shard large --grid axes over N workers"
    )
    opt.set_defaults(func=_cmd_optimize)

    plan = sub.add_parser("plan", help="capacity planning thresholds")
    plan.add_argument("--machine", default="paper-bus", choices=sorted(DEFAULT_MACHINES))
    plan.add_argument("--n", type=int, default=256)
    plan.add_argument(
        "--grid",
        default=None,
        help="sweep machine sizes N (LO:HI[:STEP] or a,b,c) — whole-curve output",
    )
    plan.add_argument(
        "--cache-dir", type=Path, default=None, help="sweep-cache directory"
    )
    plan.set_defaults(func=_cmd_plan)

    exp = sub.add_parser("experiments", help="run paper experiments")
    exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    exp.add_argument("--list", action="store_true")
    exp.add_argument("--output", type=Path, default=None, help="CSV directory")
    exp.add_argument(
        "--jobs", type=int, default=1, help="experiments to run concurrently"
    )
    exp.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="enable the disk-backed sweep cache under this directory",
    )
    exp.set_defaults(func=_cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
