"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``machines``
    List the preset machines and their constants.
``optimize``
    Optimal allocation for a problem on a preset machine.
``plan``
    Capacity planning: max useful processors and minimal grid sizes.
``experiments``
    Run registered experiments (same as ``repro.experiments.runner``).

Examples::

    python -m repro machines
    python -m repro optimize --machine paper-bus --n 256 --stencil 5-point \
        --partition square --max-processors 16
    python -m repro plan --machine paper-bus --n 256
    python -m repro experiments E-FIG7
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.allocation import optimize_allocation
from repro.core.minimal_size import max_useful_processors, minimal_grid_side
from repro.core.parameters import Workload
from repro.machines.bus import BusArchitecture
from repro.machines.catalog import DEFAULT_MACHINES, by_name
from repro.report.tables import format_kv_block, format_table
from repro.stencils.library import ALL_STENCILS
from repro.stencils.library import by_name as stencil_by_name
from repro.stencils.perimeter import PartitionKind

__all__ = ["main", "build_parser"]


def _cmd_machines(_args: argparse.Namespace) -> int:
    rows = []
    for name, machine in sorted(DEFAULT_MACHINES.items()):
        params = {
            f.name: getattr(machine, f.name)
            for f in machine.__dataclass_fields__.values()  # type: ignore[attr-defined]
        }
        rows.append(
            (name, type(machine).__name__, ", ".join(f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}" for k, v in params.items()))
        )
    print(format_table(["preset", "model", "parameters"], rows))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    machine = by_name(args.machine)
    workload = Workload(n=args.n, stencil=stencil_by_name(args.stencil), t_flop=args.t_flop)
    kind = PartitionKind(args.partition)
    alloc = optimize_allocation(
        machine, workload, kind, max_processors=args.max_processors, integer=True
    )
    print(
        format_kv_block(
            {
                "machine": args.machine,
                "grid": f"{args.n} x {args.n}",
                "stencil": args.stencil,
                "partition": kind.value,
                "regime": alloc.regime,
                "processors": round(alloc.processors, 2),
                "points per processor": round(alloc.area, 1),
                "cycle time (s)": alloc.cycle_time,
                "speedup": round(alloc.speedup, 3),
                "efficiency": round(alloc.efficiency, 3),
            },
            title="Optimal allocation",
        )
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    machine = by_name(args.machine)
    if not isinstance(machine, BusArchitecture):
        print(
            f"{args.machine} is not a bus: allocation is extremal — use all "
            "processors (or one, if the network is slower than computing "
            "locally).  Capacity planning thresholds apply to buses."
        )
        return 0
    rows = []
    for stencil in ALL_STENCILS:
        w = Workload(n=args.n, stencil=stencil)
        for kind in (PartitionKind.STRIP, PartitionKind.SQUARE):
            rows.append(
                (
                    stencil.name,
                    kind.value,
                    round(max_useful_processors(machine, w, kind), 1),
                )
            )
    print(
        format_table(
            ["stencil", "partition", "max useful processors"],
            rows,
            title=f"Capacity plan: {args.machine}, {args.n} x {args.n}",
        )
    )
    rows = []
    for n_procs in (8, 16, 32):
        side = minimal_grid_side(machine, 1, 5.0, 1e-6, n_procs, PartitionKind.SQUARE)
        rows.append((n_procs, round(side)))
    print()
    print(
        format_table(
            ["N processors", "min grid side (squares, 5-point)"],
            rows,
        )
    )
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_and_report

    if args.list:
        from repro.experiments import all_experiments

        for exp_id in sorted(all_experiments()):
            print(exp_id)
        return 0
    return run_and_report(args.output, args.ids or None, jobs=args.jobs)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list machine presets").set_defaults(
        func=_cmd_machines
    )

    opt = sub.add_parser("optimize", help="optimal allocation for a problem")
    opt.add_argument("--machine", default="paper-bus", choices=sorted(DEFAULT_MACHINES))
    opt.add_argument("--n", type=int, default=256)
    opt.add_argument("--stencil", default="5-point")
    opt.add_argument("--partition", default="square", choices=["strip", "square"])
    opt.add_argument("--max-processors", type=int, default=None)
    opt.add_argument("--t-flop", type=float, default=1e-6)
    opt.set_defaults(func=_cmd_optimize)

    plan = sub.add_parser("plan", help="capacity planning thresholds")
    plan.add_argument("--machine", default="paper-bus", choices=sorted(DEFAULT_MACHINES))
    plan.add_argument("--n", type=int, default=256)
    plan.set_defaults(func=_cmd_plan)

    exp = sub.add_parser("experiments", help="run paper experiments")
    exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    exp.add_argument("--list", action="store_true")
    exp.add_argument("--output", type=Path, default=None, help="CSV directory")
    exp.add_argument(
        "--jobs", type=int, default=1, help="experiments to run concurrently"
    )
    exp.set_defaults(func=_cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
