"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. are still
raised directly for API misuse that static checks should catch).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "DecompositionError",
    "NoWorkingRectangleError",
    "ConvergenceError",
    "SimulationError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """A model or machine parameter is out of its physical domain.

    Examples: negative flop time, zero grid size, a stencil without a
    center point, a processor count that is not positive.
    """


class DecompositionError(ReproError, ValueError):
    """A requested domain decomposition is infeasible.

    Examples: more partitions than grid points, a rectangle width that
    does not divide the grid size (legal rectangles require it).
    """


class NoWorkingRectangleError(DecompositionError):
    """No working rectangle exists close enough to a requested area.

    Raised by the Figure-6 machinery when the 5%-perimeter filter leaves
    no candidate for a requested partition area.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solve failed to converge within its iteration budget."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state.

    This always indicates a bug in a simulation script or network model,
    never a legitimate workload outcome, so it is a ``RuntimeError``.
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness could not produce its artifact."""
