"""Small helpers for time quantities and human-readable formatting.

The model works in abstract seconds; machine presets in
:mod:`repro.machines.catalog` use 1980s-era magnitudes (microseconds per
flop and per bus word) so that reproduced numbers are comparable to the
paper's.  Nothing in the model depends on the absolute scale: every
result of interest (speedup, processor count, crossover, exponent) is a
ratio of times.
"""

from __future__ import annotations


__all__ = [
    "MICROSECOND",
    "MILLISECOND",
    "NANOSECOND",
    "format_time",
    "format_count",
    "log2_int",
    "is_power_of_two",
    "next_power_of_two",
]

NANOSECOND: float = 1e-9
MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3

_SCALES: tuple[tuple[float, str], ...] = (
    (1.0, "s"),
    (1e-3, "ms"),
    (1e-6, "us"),
    (1e-9, "ns"),
)


def format_time(seconds: float, digits: int = 3) -> str:
    """Render a duration with an auto-selected SI suffix.

    >>> format_time(3.2e-5)
    '32.0us'
    """
    if seconds < 0:
        return "-" + format_time(-seconds, digits)
    if seconds == 0:
        return "0s"
    for scale, suffix in _SCALES:
        if seconds >= scale:
            return f"{seconds / scale:.{digits}g}{suffix}"
    return f"{seconds / 1e-9:.{digits}g}ns"


def format_count(value: float) -> str:
    """Render a large count with thousands separators (``12_345 -> '12,345'``)."""
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.2f}"


def log2_int(value: int) -> int:
    """Exact base-2 logarithm of a power of two.

    Raises :class:`ValueError` when ``value`` is not a positive power of
    two; use :func:`math.log2` for the real-valued logarithm.
    """
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive integral power of two."""
    return value > 0 and value & (value - 1) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (``value`` must be positive)."""
    if value <= 0:
        raise ValueError("value must be positive")
    return 1 << (value - 1).bit_length()


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for non-negative ``numerator``."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def geometric_span(lo: float, hi: float, count: int) -> list[float]:
    """``count`` geometrically spaced values covering ``[lo, hi]`` inclusive."""
    if lo <= 0 or hi <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    if count < 2:
        return [lo]
    ratio = (hi / lo) ** (1.0 / (count - 1))
    return [lo * ratio**i for i in range(count)]
