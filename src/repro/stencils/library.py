"""The paper's stencil zoo (Figures 1 and 3) as ready-made objects.

Weights are for the model Poisson problem ``-Δu = f`` discretized on a
uniform grid with spacing ``h``; the Jacobi update divides through by
the center coefficient, so weights here sum to 1 for the Laplace part.
``rhs_scale`` carries the ``h²`` factor *per unit h²* — the solver
multiplies by the actual ``h²`` at run time.

Flop counts ``E(S)`` follow the neighbour+normalize rule of
:mod:`repro.stencils.stencil`: ``E(5-point) = 5`` and
``E(9-point) = 10``, the ratio (≈2×) that reproduces the paper's
Figure 7 anchor (14 vs 22 processors for a 256×256 grid).
"""

from __future__ import annotations

from repro.stencils.stencil import Offset, Stencil

__all__ = [
    "FIVE_POINT",
    "NINE_POINT_BOX",
    "NINE_POINT_STAR",
    "THIRTEEN_POINT",
    "ALL_STENCILS",
    "by_name",
]


def _star(radius: int) -> tuple[Offset, ...]:
    """Axis-aligned arms of the given radius (no diagonals, no center)."""
    offs: list[Offset] = []
    for r in range(1, radius + 1):
        offs.extend([(-r, 0), (r, 0), (0, -r), (0, r)])
    return tuple(offs)


def _diagonals(radius: int) -> tuple[Offset, ...]:
    offs: list[Offset] = []
    for r in range(1, radius + 1):
        offs.extend([(-r, -r), (-r, r), (r, -r), (r, r)])
    return tuple(offs)


#: Classic 5-point Laplace stencil (Figure 1 left): N, S, E, W neighbours.
FIVE_POINT = Stencil(
    name="5-point",
    offsets=_star(1),
    weights={o: 0.25 for o in _star(1)},
    flops_per_point=5.0,
    rhs_scale=0.25,
)

#: 9-point box stencil (Figure 1 right): ring of 8 around the center.
#: Weight pattern is the standard high-order Laplace 9-point scheme:
#: 4/20 on edges, 1/20 on corners.
NINE_POINT_BOX = Stencil(
    name="9-point-box",
    offsets=_star(1) + _diagonals(1),
    weights={
        **{o: 4.0 / 20.0 for o in _star(1)},
        **{o: 1.0 / 20.0 for o in _diagonals(1)},
    },
    flops_per_point=10.0,
    rhs_scale=6.0 / 20.0,
)

#: 9-point star stencil (Figure 3 left, "9-arm"): arms of length 2,
#: no diagonals.  Requires two perimeters of boundary data (k = 2).
#: Weights follow the fourth-order 1-D (−1, 16, −30, 16, −1)/12 scheme
#: applied in each dimension and normalized by the center 60/12.
NINE_POINT_STAR = Stencil(
    name="9-point-star",
    offsets=_star(2),
    weights={
        **{o: 16.0 / 60.0 for o in _star(1)},
        **{o: -1.0 / 60.0 for o in (( -2, 0), (2, 0), (0, -2), (0, 2))},
    },
    flops_per_point=10.0,
    rhs_scale=12.0 / 60.0,
)

#: 13-point stencil (Figure 3 right): arms of length 2 plus the four
#: unit diagonals.  Needs two perimeters (k = 2) and, because of the
#: diagonals, corner communication.
THIRTEEN_POINT = Stencil(
    name="13-point",
    offsets=_star(2) + _diagonals(1),
    weights={
        **{o: 16.0 / 64.0 for o in _star(1)},
        **{o: -1.0 / 64.0 for o in ((-2, 0), (2, 0), (0, -2), (0, 2))},
        **{o: 1.0 / 64.0 for o in _diagonals(1)},
    },
    flops_per_point=14.0,
    rhs_scale=12.0 / 64.0,
)

ALL_STENCILS: tuple[Stencil, ...] = (
    FIVE_POINT,
    NINE_POINT_BOX,
    NINE_POINT_STAR,
    THIRTEEN_POINT,
)

_BY_NAME = {s.name: s for s in ALL_STENCILS}


def by_name(name: str) -> Stencil:
    """Look up a built-in stencil by its ``name`` field.

    Raises :class:`KeyError` with the list of known names on a miss.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown stencil {name!r}; known stencils: {known}") from None
