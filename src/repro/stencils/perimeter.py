"""The k(Partition, Stencil) classification of Section 3.

A partition must import every exterior grid point its stencil reads.
The paper counts this import volume in "perimeters": rings of points
around the partition.  ``k(P, S)`` is the number of rings needed, which
depends only on how far the stencil reaches *across the partition's
boundaries*:

* **strips** span entire grid rows, so only the row reach matters:
  ``k(strip, S) = max |di|``;
* **squares** (and near-square rectangles) have boundaries in both
  dimensions: ``k(square, S) = max(max |di|, max |dj|)`` — the
  Chebyshev radius.

Rather than hard-coding the paper's table we compute ``k`` from the
stencil geometry, so user-defined stencils classify correctly, and the
table itself becomes a regression test (`tests/stencils/test_perimeter`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.stencils.stencil import Stencil

__all__ = [
    "PartitionKind",
    "perimeters_required",
    "boundary_points",
    "interior_volume",
    "KTableRow",
    "k_table",
]


class PartitionKind(enum.Enum):
    """The two partition geometries the paper analyzes."""

    STRIP = "strip"
    SQUARE = "square"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def perimeters_required(kind: PartitionKind, stencil: Stencil) -> int:
    """``k(P, S)``: perimeters communicated per iteration.

    >>> from repro.stencils.library import FIVE_POINT, NINE_POINT_STAR
    >>> perimeters_required(PartitionKind.STRIP, FIVE_POINT)
    1
    >>> perimeters_required(PartitionKind.SQUARE, NINE_POINT_STAR)
    2
    """
    if kind is PartitionKind.STRIP:
        return stencil.reach_rows
    return stencil.reach


def boundary_points(kind: PartitionKind, area: int, n: int, k: int = 1) -> float:
    """Number of points in ``k`` perimeters of a partition of ``area`` points.

    Follows the paper's continuous accounting: a strip of area ``A`` on an
    ``n × n`` grid exposes ``2·n`` points per perimeter (one row above and
    one below); a square of area ``A`` exposes ``4·sqrt(A)`` per perimeter.
    Corner effects are ignored exactly as in the paper (footnote 4).
    """
    if area <= 0 or n <= 0 or k <= 0:
        raise ValueError("area, n, and k must be positive")
    if kind is PartitionKind.STRIP:
        return 2.0 * n * k
    return 4.0 * float(area) ** 0.5 * k


def interior_volume(kind: PartitionKind, area: int, n: int, k: int) -> float:
    """Points of a partition *not* needed by any neighbour.

    Complementary to :func:`boundary_points`; used by the asynchronous-bus
    model to order boundary updates before interior updates.  Clamped at
    zero for partitions thinner than their stencil reach.
    """
    return max(0.0, float(area) - boundary_points(kind, area, n, k))


@dataclass(frozen=True)
class KTableRow:
    """One row of the Section-3 classification table."""

    partition: PartitionKind
    stencil: str
    k: int


def k_table(stencils, kinds=(PartitionKind.STRIP, PartitionKind.SQUARE)):
    """Build the full k(P, S) table for the given stencils.

    Returns a list of :class:`KTableRow`, ordered stencil-major to match
    the paper's presentation.
    """
    rows: list[KTableRow] = []
    for stencil in stencils:
        for kind in kinds:
            rows.append(
                KTableRow(
                    partition=kind,
                    stencil=stencil.name,
                    k=perimeters_required(kind, stencil),
                )
            )
    return rows
