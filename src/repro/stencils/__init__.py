"""Stencil geometry, the k(P,S) classification, and vectorized kernels."""

from repro.stencils.apply import (
    apply_stencil,
    apply_stencil_into,
    ghost_width,
    pad_with_boundary,
    residual_sum_squares,
)
from repro.stencils.library import (
    ALL_STENCILS,
    FIVE_POINT,
    NINE_POINT_BOX,
    NINE_POINT_STAR,
    THIRTEEN_POINT,
    by_name,
)
from repro.stencils.perimeter import (
    KTableRow,
    PartitionKind,
    boundary_points,
    interior_volume,
    k_table,
    perimeters_required,
)
from repro.stencils.stencil import Offset, Stencil, stencil_from_offsets

__all__ = [
    "ALL_STENCILS",
    "FIVE_POINT",
    "KTableRow",
    "NINE_POINT_BOX",
    "NINE_POINT_STAR",
    "Offset",
    "PartitionKind",
    "Stencil",
    "THIRTEEN_POINT",
    "apply_stencil",
    "apply_stencil_into",
    "boundary_points",
    "by_name",
    "ghost_width",
    "interior_volume",
    "k_table",
    "pad_with_boundary",
    "perimeters_required",
    "residual_sum_squares",
    "stencil_from_offsets",
]
