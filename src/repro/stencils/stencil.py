"""Discretization stencils as first-class geometric objects.

A stencil is the set of relative grid offsets read when updating one
grid point (Figure 1 of the paper), together with the floating-point
work ``E(S)`` one update costs.  The paper treats ``E(S)`` as a given
constant; here it defaults to the natural operation count of a Jacobi
update with that stencil (one multiply-add per neighbour coefficient
plus the normalization), and can be overridden for other algorithms.

Offsets use matrix convention: ``(di, dj)`` where ``di`` moves between
rows (the strip-partition direction) and ``dj`` within a row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import InvalidParameterError

__all__ = ["Stencil", "Offset"]

Offset = tuple[int, int]


def _default_flops(n_neighbors: int) -> float:
    # One add per neighbour term, plus one multiply for the 1/denominator
    # normalization: the classic count for a point-Jacobi update.  The
    # 5-point Laplace stencil costs 5 flops/point under this rule, the
    # 9-point box stencil 10 (its two weight classes add one multiply),
    # matching the constants used to anchor Figure 7.
    return float(n_neighbors + 1)


@dataclass(frozen=True)
class Stencil:
    """An update stencil: offsets touched, their weights, and flop cost.

    Parameters
    ----------
    name:
        Human-readable identifier (``"5-point"`` etc.).
    offsets:
        All relative offsets *read* by one update, excluding the center
        unless the scheme genuinely reads the old center value (Jacobi
        for the Laplace equation does not; the center offset may still
        be included for schemes that need it).
    weights:
        Optional mapping from offset to coefficient for an actual PDE
        update ``u'[i,j] = sum(w * u[i+di, j+dj]) + rhs_scale * f[i,j]``.
        When omitted the stencil is purely geometric (enough for the
        performance model, not for the solver substrate).
    flops_per_point:
        ``E(S)``, floating point operations per grid-point update.
        Defaults to ``len(offsets) + 1``.
    rhs_scale:
        Coefficient applied to the right-hand side ``f`` in a Jacobi
        update (``-h²/4`` for the 5-point Poisson stencil, already
        folded with the normalization).
    """

    name: str
    offsets: tuple[Offset, ...]
    weights: Mapping[Offset, float] | None = None
    flops_per_point: float = field(default=0.0)
    rhs_scale: float = 0.0

    def __post_init__(self) -> None:
        if not self.offsets:
            raise InvalidParameterError(f"stencil {self.name!r} has no offsets")
        if len(set(self.offsets)) != len(self.offsets):
            raise InvalidParameterError(f"stencil {self.name!r} repeats an offset")
        for di, dj in self.offsets:
            if not (isinstance(di, int) and isinstance(dj, int)):
                raise InvalidParameterError(
                    f"stencil {self.name!r} offset {(di, dj)!r} is not integral"
                )
        if self.weights is not None:
            missing = set(self.weights) - set(self.offsets)
            if missing:
                raise InvalidParameterError(
                    f"stencil {self.name!r} has weights for offsets {sorted(missing)} "
                    "that are not part of the stencil"
                )
        if self.flops_per_point == 0.0:
            object.__setattr__(
                self, "flops_per_point", _default_flops(len(self.offsets))
            )
        if self.flops_per_point <= 0:
            raise InvalidParameterError(
                f"stencil {self.name!r}: flops_per_point must be positive"
            )

    # ---------------------------------------------------------------- geometry

    @property
    def reach_rows(self) -> int:
        """Maximum row distance read: ``max |di|``."""
        return max(abs(di) for di, _ in self.offsets)

    @property
    def reach_cols(self) -> int:
        """Maximum column distance read: ``max |dj|``."""
        return max(abs(dj) for _, dj in self.offsets)

    @property
    def reach(self) -> int:
        """Chebyshev radius: perimeters needed around a 2-D partition."""
        return max(self.reach_rows, self.reach_cols)

    @property
    def has_diagonals(self) -> bool:
        """True when any offset moves in both dimensions at once.

        Diagonal offsets force corner points of a square partition to be
        communicated; the paper's footnote 4 notes the (small) error of
        ignoring them in the volume count.
        """
        return any(di != 0 and dj != 0 for di, dj in self.offsets)

    @property
    def n_points(self) -> int:
        """Number of distinct points read per update (center excluded if absent)."""
        return len(self.offsets)

    def halo_offsets(self) -> tuple[Offset, ...]:
        """Offsets that can leave a partition (everything but ``(0, 0)``)."""
        return tuple(o for o in self.offsets if o != (0, 0))

    # ---------------------------------------------------------------- algebra

    def with_flops(self, flops_per_point: float) -> "Stencil":
        """Copy of this stencil with a different ``E(S)``.

        Lets callers model algorithms with extra per-point work (e.g. a
        convergence check roughly adds 50% for the 5-point stencil,
        Section 4) without redefining the geometry.
        """
        return Stencil(
            name=self.name,
            offsets=self.offsets,
            weights=self.weights,
            flops_per_point=flops_per_point,
            rhs_scale=self.rhs_scale,
        )

    def scaled(self, factor: float, name: str | None = None) -> "Stencil":
        """Copy with ``E(S)`` multiplied by ``factor`` (>0)."""
        if factor <= 0:
            raise InvalidParameterError("scale factor must be positive")
        return Stencil(
            name=name or f"{self.name}x{factor:g}",
            offsets=self.offsets,
            weights=self.weights,
            flops_per_point=self.flops_per_point * factor,
            rhs_scale=self.rhs_scale,
        )

    def ascii_art(self) -> str:
        """Render the stencil footprint as ASCII (Figure 1 / Figure 3)."""
        r_i = self.reach_rows
        r_j = self.reach_cols
        rows = []
        present = set(self.offsets)
        for di in range(-r_i, r_i + 1):
            cells = []
            for dj in range(-r_j, r_j + 1):
                if (di, dj) == (0, 0):
                    cells.append("o" if (0, 0) in present else "+")
                elif (di, dj) in present:
                    cells.append("*")
                else:
                    cells.append(".")
            rows.append(" ".join(cells))
        return "\n".join(rows)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stencil({self.name}, E={self.flops_per_point:g}, k_reach={self.reach})"


def stencil_from_offsets(
    name: str, offsets: Iterable[Offset], flops_per_point: float | None = None
) -> Stencil:
    """Convenience constructor for purely geometric stencils."""
    return Stencil(
        name=name,
        offsets=tuple(offsets),
        flops_per_point=float(flops_per_point) if flops_per_point else 0.0,
    )
