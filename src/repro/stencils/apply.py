"""Vectorized stencil application on 2-D fields.

This is the numerical kernel behind the solver substrate: one Jacobi
sweep is ``u_new = apply_stencil(stencil, u) + h² · rhs_scale · f``.
The implementation is pure NumPy slicing — no Python-level loops over
grid points — following the vectorization idiom of the HPC guides.

Fields carry a ghost ring of width ``stencil.reach`` holding boundary
values (constant Dirichlet data in the paper's model problem), so the
update of every interior point is a single shifted-slice expression.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.stencils.stencil import Stencil

__all__ = [
    "apply_stencil",
    "apply_stencil_into",
    "residual_sum_squares",
    "ghost_width",
    "pad_with_boundary",
]


def ghost_width(stencil: Stencil) -> int:
    """Ghost-ring width a field needs to host this stencil (its reach)."""
    return stencil.reach


def pad_with_boundary(interior: np.ndarray, stencil: Stencil, value: float = 0.0) -> np.ndarray:
    """Embed an interior field in a ghost ring filled with ``value``.

    The paper assumes constant boundary values; a constant ring is the
    matching discrete boundary condition.
    """
    g = ghost_width(stencil)
    return np.pad(interior, g, mode="constant", constant_values=value)


def _check_weights(stencil: Stencil) -> None:
    if stencil.weights is None:
        raise InvalidParameterError(
            f"stencil {stencil.name!r} is geometric-only (no weights); "
            "use a stencil from repro.stencils.library for numerics"
        )


def apply_stencil(stencil: Stencil, field: np.ndarray) -> np.ndarray:
    """Weighted sum of shifted neighbours over the interior of ``field``.

    ``field`` must include the ghost ring (shape ``(m + 2g, n + 2g)`` for
    an ``m × n`` interior, ``g = stencil.reach``).  Returns the ``m × n``
    interior result; ghost cells are read, never written.
    """
    out = np.zeros(
        (field.shape[0] - 2 * ghost_width(stencil), field.shape[1] - 2 * ghost_width(stencil)),
        dtype=field.dtype,
    )
    apply_stencil_into(stencil, field, out)
    return out


def apply_stencil_into(stencil: Stencil, field: np.ndarray, out: np.ndarray) -> None:
    """As :func:`apply_stencil` but accumulating into a preallocated ``out``.

    Avoids one allocation per sweep, which dominates for small grids
    (see the in-place-operations guidance in the optimization guide).
    """
    _check_weights(stencil)
    g = ghost_width(stencil)
    m = field.shape[0] - 2 * g
    n = field.shape[1] - 2 * g
    if m <= 0 or n <= 0:
        raise InvalidParameterError(
            f"field of shape {field.shape} too small for ghost width {g}"
        )
    if out.shape != (m, n):
        raise InvalidParameterError(
            f"out has shape {out.shape}, expected {(m, n)}"
        )
    out[:] = 0.0
    assert stencil.weights is not None
    for (di, dj), w in stencil.weights.items():
        if w == 0.0:
            continue
        out += w * field[g + di : g + di + m, g + dj : g + dj + n]


def residual_sum_squares(old_interior: np.ndarray, new_interior: np.ndarray) -> float:
    """Sum of squared update differences — the paper's convergence number.

    Section 4 describes disseminating exactly this quantity (or a flag
    derived from it) during convergence checking.
    """
    diff = new_interior - old_interior
    return float(np.sum(diff * diff))
