"""Point-Jacobi iteration — the paper's reference algorithm (Section 1).

Each sweep computes, for every interior point, a weighted sum of its
stencil neighbours plus the scaled right-hand side, using the *previous*
iterate throughout (hence "every grid point can be updated in
parallel").  Damping (weighted Jacobi, ``u ← (1−ω)·u + ω·J(u)``) is
supported because plain Jacobi diverges for the fourth-order star
stencils (their iteration symbol exceeds 1 at the highest frequency);
``ω = 0.8`` restores convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError
from repro.solver.convergence import CheckSchedule, Criterion, InfNormCriterion
from repro.solver.grid import GridField
from repro.solver.problems import ModelProblem
from repro.stencils.apply import apply_stencil_into
from repro.stencils.stencil import Stencil

__all__ = ["JacobiResult", "jacobi_sweep", "solve_jacobi"]


@dataclass
class JacobiResult:
    """Outcome of a Jacobi solve."""

    field: GridField
    iterations: int
    converged: bool
    #: Criterion measurements at each *checked* iteration (not every sweep
    #: when a CheckSchedule with period > 1 is used).
    history: list[float] = field(default_factory=list)

    def final_measure(self) -> float:
        if not self.history:
            raise ConvergenceError("no convergence checks were performed")
        return self.history[-1]


def jacobi_sweep(
    stencil: Stencil,
    current: GridField,
    scratch: np.ndarray,
    rhs: np.ndarray | None,
    damping: float = 1.0,
) -> None:
    """One in-place damped Jacobi sweep.

    ``scratch`` must be an ``n × n`` array; on return the field's
    interior holds the new iterate.  ``rhs`` is the problem's ``f`` on
    the interior (or ``None`` for the homogeneous case); the ``h²``
    scaling is applied here so callers pass raw ``f`` values.
    """
    if not 0.0 < damping <= 1.0:
        raise InvalidParameterError("damping must be in (0, 1]")
    apply_stencil_into(stencil, current.data, scratch)
    if rhs is not None:
        scratch += (stencil.rhs_scale * current.h**2) * rhs
    interior = current.interior
    if damping == 1.0:
        interior[:] = scratch
    else:
        interior *= 1.0 - damping
        interior += damping * scratch


def solve_jacobi(
    stencil: Stencil,
    problem: ModelProblem,
    n: int,
    criterion: Criterion | None = None,
    schedule: CheckSchedule = CheckSchedule(1),
    max_iterations: int = 100_000,
    damping: float = 1.0,
    initial: GridField | None = None,
) -> JacobiResult:
    """Run damped Jacobi until the criterion holds at a scheduled check.

    Raises :class:`ConvergenceError` when ``max_iterations`` sweeps pass
    without a successful check — iterative-solver failures should never
    be silent.
    """
    if max_iterations < 1:
        raise InvalidParameterError("max_iterations must be >= 1")
    criterion = criterion or InfNormCriterion(tol=1e-8)
    fld = initial.copy() if initial is not None else GridField.zeros(
        n, stencil, problem.boundary_value
    )
    fld.set_boundary(problem.boundary_value)
    rhs = problem.rhs_grid(n)
    scratch = np.empty((n, n), dtype=float)
    previous = np.empty((n, n), dtype=float)
    history: list[float] = []

    for iteration in range(1, max_iterations + 1):
        check = schedule.should_check(iteration)
        if check:
            previous[:] = fld.interior
        jacobi_sweep(stencil, fld, scratch, rhs, damping)
        if check:
            measure = criterion.measure(previous, fld.interior)
            history.append(measure)
            if criterion.is_converged(measure):
                return JacobiResult(
                    field=fld, iterations=iteration, converged=True, history=history
                )
    raise ConvergenceError(
        f"Jacobi did not converge in {max_iterations} iterations "
        f"(last measure: {history[-1] if history else 'never checked'})"
    )
