"""Convergence criteria, checking schedules, and their modelled costs.

Section 4 observes that a convergence check is expensive twice over:
extra computation (comparing every updated point against its last
value — up to ~50% of a 5-point update) and non-local communication
(disseminating a flag or a sum of squared differences).  Saltz, Naik &
Nicol showed scheduled checking (every ``m`` iterations) makes the cost
insignificant on hypercubes; mesh machines with convergence hardware
pay nothing; on buses the dissemination is one number per processor and
is ignored by the paper.

This module provides the criteria used by the actual solver plus the
cost model used by the performance layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.banyan import BanyanNetwork
from repro.machines.base import Architecture
from repro.machines.bus import BusArchitecture
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid

__all__ = [
    "Criterion",
    "InfNormCriterion",
    "SumSquaresCriterion",
    "CheckSchedule",
    "convergence_check_flops",
    "dissemination_time",
    "checked_cycle_time",
]


class Criterion:
    """Convergence test over successive iterates (interface)."""

    def measure(self, old: np.ndarray, new: np.ndarray) -> float:
        raise NotImplementedError

    def is_converged(self, value: float) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class InfNormCriterion(Criterion):
    """Converged when ``max |u_new − u_old| ≤ tol``."""

    tol: float

    def __post_init__(self) -> None:
        if self.tol <= 0:
            raise InvalidParameterError("tolerance must be positive")

    def measure(self, old: np.ndarray, new: np.ndarray) -> float:
        return float(np.max(np.abs(new - old)))

    def is_converged(self, value: float) -> bool:
        return value <= self.tol


@dataclass(frozen=True)
class SumSquaresCriterion(Criterion):
    """Converged when ``Σ (u_new − u_old)² ≤ tol`` — the paper's
    disseminated quantity (partitions sum locally, then combine)."""

    tol: float

    def __post_init__(self) -> None:
        if self.tol <= 0:
            raise InvalidParameterError("tolerance must be positive")

    def measure(self, old: np.ndarray, new: np.ndarray) -> float:
        diff = new - old
        return float(np.sum(diff * diff))

    def is_converged(self, value: float) -> bool:
        return value <= self.tol


@dataclass(frozen=True)
class CheckSchedule:
    """Check every ``period`` iterations (1 = every iteration).

    Scheduled checking trades extra iterations (you may overshoot by up
    to ``period − 1``) for fewer expensive dissemination rounds — the
    Saltz–Naik–Nicol strategy the paper cites to justify ignoring
    convergence cost on available hypercubes.
    """

    period: int = 1

    def __post_init__(self) -> None:
        if self.period < 1:
            raise InvalidParameterError("check period must be >= 1")

    def should_check(self, iteration: int) -> bool:
        """1-based iteration counter."""
        return iteration % self.period == 0


def convergence_check_flops(workload: Workload, area: float) -> float:
    """Extra flops one partition spends measuring its local convergence.

    Per point: subtract, square, accumulate ≈ 3 flops — about 50% of a
    5-point update's ``E = 5``+1, consistent with Section 4's "can be
    50% of the grid update computation" for small stencils.
    """
    if area <= 0:
        raise InvalidParameterError("area must be positive")
    return 3.0 * area


def dissemination_time(machine: Architecture, processors: float) -> float:
    """Time to combine-and-broadcast one scalar across ``processors``.

    * hypercube: two log₂(P) sweeps of one-word messages (reduce +
      broadcast), each costing a startup-dominated message;
    * mesh with convergence hardware: free; without: 2·(P side) hops;
    * bus: one word from each processor, serialized — ``P·(c + b)``;
    * banyan: a reduce tree through the network, 2·log₂(P) word reads.
    """
    if processors < 1:
        raise InvalidParameterError("processors must be >= 1")
    if processors == 1:
        return 0.0
    if isinstance(machine, MeshGrid):
        if machine.convergence_hardware:
            return 0.0
        side = math.sqrt(processors)
        return 2.0 * 2.0 * side * float(machine.message_time(1))
    if isinstance(machine, Hypercube):
        rounds = 2.0 * math.log2(processors)
        return rounds * float(machine.message_time(1))
    if isinstance(machine, BusArchitecture):
        return processors * (machine.c + machine.b)
    if isinstance(machine, BanyanNetwork):
        return 2.0 * float(machine.read_word_time(processors))
    raise InvalidParameterError(f"no dissemination model for {machine.name!r}")


def checked_cycle_time(
    machine: Architecture,
    workload: Workload,
    kind,
    area: float,
    schedule: CheckSchedule = CheckSchedule(1),
) -> float:
    """Average per-iteration time including scheduled convergence checks.

    Adds the local check flops and the dissemination time, amortized
    over the schedule period.
    """
    base = float(machine.cycle_time(workload, kind, area))
    processors = workload.grid_points / area
    extra_comp = convergence_check_flops(workload, area) * workload.t_flop
    extra_comm = dissemination_time(machine, processors)
    return base + (extra_comp + extra_comm) / schedule.period
