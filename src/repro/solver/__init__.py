"""PDE solver substrate: Jacobi/SOR on model Poisson problems."""

from repro.solver.convergence import (
    CheckSchedule,
    Criterion,
    InfNormCriterion,
    SumSquaresCriterion,
    checked_cycle_time,
    convergence_check_flops,
    dissemination_time,
)
from repro.solver.grid import GridField, domain_coordinates
from repro.solver.jacobi import JacobiResult, jacobi_sweep, solve_jacobi
from repro.solver.parallel import (
    HaloCopy,
    ParallelJacobi,
    solve_jacobi_parallel,
)
from repro.solver.problems import ModelProblem, laplace_problem, poisson_manufactured
from repro.solver.sor import optimal_sor_omega, solve_sor, sor_sweep
from repro.solver.theory import (
    SolveEstimate,
    estimate_jacobi_iterations,
    estimate_solve_time,
    estimate_sor_iterations,
    jacobi_spectral_radius,
    sor_spectral_radius,
)

__all__ = [
    "CheckSchedule",
    "Criterion",
    "GridField",
    "HaloCopy",
    "InfNormCriterion",
    "JacobiResult",
    "ModelProblem",
    "SolveEstimate",
    "ParallelJacobi",
    "SumSquaresCriterion",
    "checked_cycle_time",
    "convergence_check_flops",
    "dissemination_time",
    "estimate_jacobi_iterations",
    "estimate_solve_time",
    "estimate_sor_iterations",
    "domain_coordinates",
    "jacobi_spectral_radius",
    "jacobi_sweep",
    "laplace_problem",
    "optimal_sor_omega",
    "poisson_manufactured",
    "solve_jacobi",
    "solve_jacobi_parallel",
    "solve_sor",
    "sor_spectral_radius",
    "sor_sweep",
]
