"""Grid fields: interior values plus a ghost ring for boundary data.

The paper's model problem discretizes a square physical domain into an
``n × n`` grid with constant boundary values (Section 3).  A
:class:`GridField` stores the ``n × n`` interior and a ghost ring wide
enough for its stencil, so sweeps are single vectorized slice
expressions and partitioned execution can swap halo data in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import InvalidParameterError
from repro.stencils.stencil import Stencil

__all__ = ["GridField", "domain_coordinates"]


def domain_coordinates(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Physical coordinates of interior grid points on the unit square.

    Point ``(i, j)`` sits at ``(x, y) = ((j+1)h, (i+1)h)`` with
    ``h = 1/(n+1)``: the boundary lies on the ghost ring, matching the
    Dirichlet model problem.  Returns ``(X, Y)`` meshgrid arrays of
    shape ``(n, n)``.
    """
    if n < 1:
        raise InvalidParameterError("grid size must be >= 1")
    h = 1.0 / (n + 1)
    coords = h * np.arange(1, n + 1, dtype=float)
    x, y = np.meshgrid(coords, coords)  # x varies along columns
    return x, y


@dataclass
class GridField:
    """An ``n × n`` field with ghost ring, tied to a stencil's reach."""

    data: np.ndarray  # (n + 2g, n + 2g) storage including ghosts
    ghost: int

    @classmethod
    def zeros(cls, n: int, stencil: Stencil, boundary_value: float = 0.0) -> "GridField":
        """All-zero interior with a constant-valued ghost ring."""
        g = stencil.reach
        data = np.full((n + 2 * g, n + 2 * g), boundary_value, dtype=float)
        data[g : g + n, g : g + n] = 0.0
        return cls(data=data, ghost=g)

    @classmethod
    def from_function(
        cls,
        n: int,
        stencil: Stencil,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        boundary_value: float = 0.0,
    ) -> "GridField":
        """Interior initialized to ``fn(x, y)`` on the unit square."""
        field = cls.zeros(n, stencil, boundary_value)
        x, y = domain_coordinates(n)
        field.interior[:] = fn(x, y)
        return field

    def __post_init__(self) -> None:
        if self.ghost < 0:
            raise InvalidParameterError("ghost width must be non-negative")
        if self.data.ndim != 2:
            raise InvalidParameterError("field storage must be 2-D")
        if min(self.data.shape) <= 2 * self.ghost:
            raise InvalidParameterError(
                f"storage {self.data.shape} too small for ghost width {self.ghost}"
            )

    # ------------------------------------------------------------ accessors

    @property
    def n(self) -> int:
        """Interior side length."""
        return self.data.shape[0] - 2 * self.ghost

    @property
    def interior(self) -> np.ndarray:
        """Writable view of the interior (no copy)."""
        g = self.ghost
        return self.data[g : g + self.n, g : g + self.n]

    @property
    def h(self) -> float:
        """Mesh spacing on the unit square with boundary on the ghosts."""
        return 1.0 / (self.n + 1)

    def copy(self) -> "GridField":
        return GridField(data=self.data.copy(), ghost=self.ghost)

    def set_boundary(self, value: float) -> None:
        """Overwrite the whole ghost ring with a constant (paper's BC)."""
        g = self.ghost
        if g == 0:
            return
        self.data[:g, :] = value
        self.data[-g:, :] = value
        self.data[:, :g] = value
        self.data[:, -g:] = value

    def max_abs_diff(self, other: "GridField") -> float:
        """Infinity-norm distance between interiors."""
        return float(np.max(np.abs(self.interior - other.interior)))
