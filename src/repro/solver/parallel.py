"""Partitioned Jacobi: rank-local fields with explicit halo exchange.

This is the MPI-shaped substrate: each partition ("rank") owns a local
array with a ghost ring, and every iteration performs

1. a halo exchange — copy boundary values from neighbouring ranks'
   interiors into this rank's ghosts (the paper's "exchanges with other
   processors information necessary to compute the next iteration");
2. a local damped-Jacobi sweep over the rank's interior;
3. optionally, a local convergence measure combined across ranks (the
   paper's dissemination stage).

Execution here is sequential (single process), but the data movement is
exactly a message-passing run's: ranks touch only their own storage and
explicit halo copies.  That makes two validations possible:

* the parallel iterate is **bit-identical** to the sequential solver's
  (same operations in the same order per point);
* the *measured* halo word counts match the model's volume formulas
  (``2·k·n`` per strip, ``≈4·k·s`` per square) — exercised in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError
from repro.partitioning.decomposition import Decomposition
from repro.solver.convergence import CheckSchedule, Criterion, InfNormCriterion
from repro.solver.grid import GridField
from repro.solver.jacobi import JacobiResult
from repro.solver.problems import ModelProblem
from repro.stencils.apply import apply_stencil_into
from repro.stencils.stencil import Stencil

__all__ = ["HaloCopy", "ParallelJacobi", "solve_jacobi_parallel"]


@dataclass(frozen=True)
class HaloCopy:
    """One precomputed ghost-fill instruction.

    Copy ``src_rank.interior[src_rows, src_cols]`` into
    ``dst_rank.storage[dst_rows, dst_cols]`` (ghost coordinates).
    """

    src_rank: int
    dst_rank: int
    src_rows: slice
    src_cols: slice
    dst_rows: slice
    dst_cols: slice
    volume: int


class ParallelJacobi:
    """Damped Jacobi over a decomposition with explicit halo exchange."""

    def __init__(
        self,
        stencil: Stencil,
        problem: ModelProblem,
        decomposition: Decomposition,
        damping: float = 1.0,
    ) -> None:
        if not 0.0 < damping <= 1.0:
            raise InvalidParameterError("damping must be in (0, 1]")
        self.stencil = stencil
        self.problem = problem
        self.decomposition = decomposition
        self.damping = damping
        self.ghost = stencil.reach
        n = decomposition.n
        self._h = 1.0 / (n + 1)

        rhs_full = problem.rhs_grid(n)
        self.locals: list[np.ndarray] = []
        self.rhs: list[np.ndarray] = []
        self.scratch: list[np.ndarray] = []
        for part in decomposition.partitions:
            store = np.full(
                (part.n_rows + 2 * self.ghost, part.n_cols + 2 * self.ghost),
                problem.boundary_value,
                dtype=float,
            )
            store[self.ghost : -self.ghost or None, self.ghost : -self.ghost or None][
                : part.n_rows, : part.n_cols
            ] = 0.0
            self.locals.append(store)
            self.rhs.append(
                rhs_full[part.row_start : part.row_stop, part.col_start : part.col_stop]
            )
            self.scratch.append(np.empty((part.n_rows, part.n_cols), dtype=float))
        self.copies = self._plan_halo_exchange()
        self.iterations = 0
        self.words_exchanged_last_iteration = 0

    # ------------------------------------------------------------- planning

    def _plan_halo_exchange(self) -> list[HaloCopy]:
        """Intersect every rank's expanded box with every other rank's box.

        The ghost frame of rank ``d`` is its partition box expanded by
        the stencil reach; any overlap with another rank's box is a
        rectangle to copy.  Corners fall out of the same intersection,
        so diagonal neighbours need no special case.
        """
        g = self.ghost
        parts = self.decomposition.partitions
        copies: list[HaloCopy] = []
        for dst_idx, dst in enumerate(parts):
            for src_idx, src in enumerate(parts):
                if src_idx == dst_idx:
                    continue
                r0 = max(dst.row_start - g, src.row_start)
                r1 = min(dst.row_stop + g, src.row_stop)
                c0 = max(dst.col_start - g, src.col_start)
                c1 = min(dst.col_stop + g, src.col_stop)
                if r0 >= r1 or c0 >= c1:
                    continue
                copies.append(
                    HaloCopy(
                        src_rank=src_idx,
                        dst_rank=dst_idx,
                        src_rows=slice(r0 - src.row_start, r1 - src.row_start),
                        src_cols=slice(c0 - src.col_start, c1 - src.col_start),
                        dst_rows=slice(
                            r0 - dst.row_start + g, r1 - dst.row_start + g
                        ),
                        dst_cols=slice(
                            c0 - dst.col_start + g, c1 - dst.col_start + g
                        ),
                        volume=(r1 - r0) * (c1 - c0),
                    )
                )
        return copies

    # ------------------------------------------------------------ execution

    def _interior(self, rank: int) -> np.ndarray:
        g = self.ghost
        part = self.decomposition.partitions[rank]
        return self.locals[rank][g : g + part.n_rows, g : g + part.n_cols]

    def exchange_halos(self) -> int:
        """Run every planned copy; returns words moved."""
        words = 0
        for cp in self.copies:
            src_interior = self._interior(cp.src_rank)
            self.locals[cp.dst_rank][cp.dst_rows, cp.dst_cols] = src_interior[
                cp.src_rows, cp.src_cols
            ]
            words += cp.volume
        self.words_exchanged_last_iteration = words
        return words

    def sweep(self) -> None:
        """One parallel iteration: halo exchange, then rank-local sweeps."""
        self.exchange_halos()
        scale = self.stencil.rhs_scale * self._h**2
        for rank in range(self.decomposition.n_processors):
            scratch = self.scratch[rank]
            apply_stencil_into(self.stencil, self.locals[rank], scratch)
            scratch += scale * self.rhs[rank]
            interior = self._interior(rank)
            if self.damping == 1.0:
                interior[:] = scratch
            else:
                interior *= 1.0 - self.damping
                interior += self.damping * scratch
        self.iterations += 1

    def read_volume_per_rank(self) -> list[int]:
        """Measured halo words each rank reads per iteration."""
        volumes = [0] * self.decomposition.n_processors
        for cp in self.copies:
            volumes[cp.dst_rank] += cp.volume
        return volumes

    def gather(self) -> GridField:
        """Assemble the global field from rank interiors."""
        n = self.decomposition.n
        fld = GridField.zeros(n, self.stencil, self.problem.boundary_value)
        for rank, part in enumerate(self.decomposition.partitions):
            fld.interior[
                part.row_start : part.row_stop, part.col_start : part.col_stop
            ] = self._interior(rank)
        return fld

    def local_measures(self, criterion: Criterion, previous: list[np.ndarray]) -> float:
        """Combine per-rank convergence measures (the dissemination step).

        Inf-norm combines by max, sum-of-squares by addition; both are
        handled by measuring per rank and reducing with the criterion's
        natural monoid (max for norms, sum handled by measure addition).
        """
        values = [
            criterion.measure(previous[rank], self._interior(rank))
            for rank in range(self.decomposition.n_processors)
        ]
        from repro.solver.convergence import SumSquaresCriterion

        if isinstance(criterion, SumSquaresCriterion):
            return float(sum(values))
        return float(max(values))


def solve_jacobi_parallel(
    stencil: Stencil,
    problem: ModelProblem,
    decomposition: Decomposition,
    criterion: Criterion | None = None,
    schedule: CheckSchedule = CheckSchedule(1),
    max_iterations: int = 100_000,
    damping: float = 1.0,
) -> JacobiResult:
    """Partitioned counterpart of :func:`repro.solver.jacobi.solve_jacobi`.

    Produces bit-identical iterates to the sequential solver; raises
    :class:`ConvergenceError` on iteration exhaustion just the same.
    """
    criterion = criterion or InfNormCriterion(tol=1e-8)
    runner = ParallelJacobi(stencil, problem, decomposition, damping)
    history: list[float] = []
    previous = [np.empty_like(runner.scratch[r]) for r in range(decomposition.n_processors)]

    for iteration in range(1, max_iterations + 1):
        check = schedule.should_check(iteration)
        if check:
            for rank in range(decomposition.n_processors):
                previous[rank][:] = runner._interior(rank)
        runner.sweep()
        if check:
            measure = runner.local_measures(criterion, previous)
            history.append(measure)
            if criterion.is_converged(measure):
                return JacobiResult(
                    field=runner.gather(),
                    iterations=iteration,
                    converged=True,
                    history=history,
                )
    raise ConvergenceError(
        f"parallel Jacobi did not converge in {max_iterations} iterations"
    )
