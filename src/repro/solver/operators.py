"""Sparse-matrix form of the discretizations (scipy substrate).

The iterative solvers never build a matrix; this module does, for two
grounding purposes:

* the **direct solve** of the same linear system is an independent
  check that the Jacobi fixed point is the discretization's solution
  (not just a converged-looking iterate);
* the **iteration matrix spectral radius** can be measured numerically
  and compared against the closed forms in :mod:`repro.solver.theory`
  (``cos(π h)`` for 5-point Jacobi).

The system solved is ``A·u = h²·scale·f + boundary contributions`` with
``A = I − W`` for stencil weight matrix ``W`` (the Jacobi-normalized
form), which keeps one code path for every built-in stencil.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import InvalidParameterError
from repro.solver.problems import ModelProblem
from repro.stencils.stencil import Stencil

__all__ = [
    "weight_matrix",
    "system_matrix",
    "boundary_vector",
    "direct_solve",
    "measured_spectral_radius",
]


def _index(i: int, j: int, n: int) -> int:
    return i * n + j


def weight_matrix(stencil: Stencil, n: int) -> sp.csr_matrix:
    """``W``: the Jacobi update's interior-to-interior weight matrix.

    Entry ``(p, q) = w`` when interior point ``p`` reads interior point
    ``q`` with weight ``w``; reads landing on the boundary ring are
    excluded (they go into :func:`boundary_vector`).
    """
    if stencil.weights is None:
        raise InvalidParameterError(
            f"stencil {stencil.name!r} has no weights; use a library stencil"
        )
    if n < 1:
        raise InvalidParameterError("grid size must be >= 1")
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i in range(n):
        for j in range(n):
            p = _index(i, j, n)
            for (di, dj), w in stencil.weights.items():
                ii, jj = i + di, j + dj
                if 0 <= ii < n and 0 <= jj < n:
                    rows.append(p)
                    cols.append(_index(ii, jj, n))
                    vals.append(w)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n * n, n * n))


def boundary_vector(stencil: Stencil, n: int, boundary_value: float) -> np.ndarray:
    """Constant-boundary contributions: weights of reads leaving the grid."""
    if stencil.weights is None:
        raise InvalidParameterError("stencil has no weights")
    out = np.zeros(n * n)
    for i in range(n):
        for j in range(n):
            acc = 0.0
            for (di, dj), w in stencil.weights.items():
                ii, jj = i + di, j + dj
                if not (0 <= ii < n and 0 <= jj < n):
                    acc += w * boundary_value
            out[_index(i, j, n)] = acc
    return out


def system_matrix(stencil: Stencil, n: int) -> sp.csr_matrix:
    """``A = I − W``: the linear system whose solution Jacobi iterates to."""
    w = weight_matrix(stencil, n)
    return (sp.identity(n * n, format="csr") - w).tocsr()


def direct_solve(
    stencil: Stencil, problem: ModelProblem, n: int
) -> np.ndarray:
    """Solve the discretized system directly; returns the n×n field.

    ``u = W·u + h²·rhs_scale·f + g  ⇒  (I − W)·u = h²·rhs_scale·f + g``.
    """
    h = 1.0 / (n + 1)
    rhs = (
        stencil.rhs_scale * h * h * problem.rhs_grid(n).ravel()
        + boundary_vector(stencil, n, problem.boundary_value)
    )
    a = system_matrix(stencil, n)
    u = spla.spsolve(a.tocsc(), rhs)
    return u.reshape(n, n)


def measured_spectral_radius(stencil: Stencil, n: int) -> float:
    """Largest |eigenvalue| of the Jacobi weight matrix, computed sparsely.

    For the 5-point stencil this must equal ``cos(π/(n+1))``; for the
    fourth-order star stencils it exceeds 1 (why they need damping).
    """
    w = weight_matrix(stencil, n)
    # The weight matrices of the symmetric model stencils are symmetric,
    # so eigsh on magnitude extremes is reliable; take both ends because
    # the dominant eigenvalue may be negative (high-frequency mode).
    k = min(2, n * n - 1)
    if n * n <= 3:
        dense = np.linalg.eigvals(w.toarray())
        return float(np.max(np.abs(dense)))
    # Fixed start vector: ARPACK's default v0 is random, which perturbs
    # the converged eigenvalue in its last ULPs and made repeated runs
    # write byte-different artifacts.  Any dense vector works; ones is
    # never orthogonal to the dominant low-frequency mode.
    v0 = np.ones(w.shape[0])
    vals = spla.eigsh(
        w.asfptype(), k=k, which="LM", return_eigenvectors=False, maxiter=5000, v0=v0
    )
    return float(np.max(np.abs(vals)))
