"""Red-black Gauss-Seidel / SOR for the 5-point stencil.

An extension substrate beyond the paper's point-Jacobi baseline: the
red-black ordering decouples the 5-point stencil into two half-sweeps,
each fully vectorizable, and over-relaxation accelerates convergence by
an order of magnitude on Poisson problems.  Used by the solver benches
to show the performance model is algorithm-agnostic (only ``E(S)``
changes).

Only the 5-point stencil admits the two-color decoupling; other
stencils raise immediately rather than silently computing a different
iteration.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError
from repro.solver.convergence import CheckSchedule, Criterion, InfNormCriterion
from repro.solver.grid import GridField
from repro.solver.jacobi import JacobiResult
from repro.solver.problems import ModelProblem
from repro.stencils.library import FIVE_POINT
from repro.stencils.stencil import Stencil

__all__ = ["optimal_sor_omega", "sor_sweep", "solve_sor"]


def optimal_sor_omega(n: int) -> float:
    """Classic optimal over-relaxation factor for the 5-point Laplacian.

    ``ω* = 2 / (1 + sin(π·h))`` with ``h = 1/(n+1)`` — approaches 2 as
    the grid refines.
    """
    if n < 1:
        raise InvalidParameterError("grid size must be >= 1")
    h = 1.0 / (n + 1)
    return 2.0 / (1.0 + math.sin(math.pi * h))


def _require_five_point(stencil: Stencil) -> None:
    if tuple(sorted(stencil.offsets)) != tuple(sorted(FIVE_POINT.offsets)):
        raise InvalidParameterError(
            "red-black SOR requires the 5-point stencil "
            f"(got {stencil.name!r}); other stencils do not two-color"
        )


def _color_mask(n: int, parity: int) -> np.ndarray:
    i, j = np.indices((n, n))
    return (i + j) % 2 == parity


def sor_sweep(
    current: GridField,
    rhs: np.ndarray | None,
    omega: float,
    red_mask: np.ndarray,
    black_mask: np.ndarray,
) -> None:
    """One red-black SOR sweep (two half-updates) in place."""
    if not 0.0 < omega < 2.0:
        raise InvalidParameterError("SOR requires omega in (0, 2)")
    g = current.ghost
    n = current.n
    data = current.data
    interior = current.interior
    h2 = current.h**2
    for mask in (red_mask, black_mask):
        neighbour_avg = 0.25 * (
            data[g - 1 : g - 1 + n, g : g + n]
            + data[g + 1 : g + 1 + n, g : g + n]
            + data[g : g + n, g - 1 : g - 1 + n]
            + data[g : g + n, g + 1 : g + 1 + n]
        )
        if rhs is not None:
            neighbour_avg = neighbour_avg + 0.25 * h2 * rhs
        interior[mask] += omega * (neighbour_avg[mask] - interior[mask])


def solve_sor(
    problem: ModelProblem,
    n: int,
    omega: float | None = None,
    criterion: Criterion | None = None,
    schedule: CheckSchedule = CheckSchedule(1),
    max_iterations: int = 100_000,
) -> JacobiResult:
    """Solve the model problem with red-black SOR on the 5-point stencil.

    ``omega=None`` uses the classical optimum.  Returns the same result
    type as the Jacobi solver so the two are interchangeable in tests
    and benches.
    """
    if max_iterations < 1:
        raise InvalidParameterError("max_iterations must be >= 1")
    omega = optimal_sor_omega(n) if omega is None else omega
    criterion = criterion or InfNormCriterion(tol=1e-8)
    fld = GridField.zeros(n, FIVE_POINT, problem.boundary_value)
    fld.set_boundary(problem.boundary_value)
    rhs = problem.rhs_grid(n)
    red = _color_mask(n, 0)
    black = _color_mask(n, 1)
    previous = np.empty((n, n), dtype=float)
    history: list[float] = []

    for iteration in range(1, max_iterations + 1):
        check = schedule.should_check(iteration)
        if check:
            previous[:] = fld.interior
        sor_sweep(fld, rhs, omega, red, black)
        if check:
            measure = criterion.measure(previous, fld.interior)
            history.append(measure)
            if criterion.is_converged(measure):
                return JacobiResult(
                    field=fld, iterations=iteration, converged=True, history=history
                )
    raise ConvergenceError(
        f"SOR did not converge in {max_iterations} iterations "
        f"(last measure: {history[-1] if history else 'never checked'})"
    )
