"""Classical convergence theory for the model iterations.

The performance model prices one iteration; pricing a *solve* needs the
iteration count.  For point Jacobi on the 5-point Laplacian the theory
is exact: the iteration matrix's spectral radius is ``ρ = cos(π·h)``
(``h = 1/(n+1)``), so reducing the error by ``ε`` takes about
``ln(1/ε)/ln(1/ρ) ≈ 2·ln(1/ε)·(n+1)²/π²`` sweeps — the familiar O(n²)
sweep count that makes Jacobi a benchmark, not a production solver.
Optimal SOR drops this to O(n).

These estimates are validated against the actual solver in the tests
(measured counts within a few percent of theory) and feed the
whole-solve costing in :func:`estimate_solve_time`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.parameters import Workload
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.stencils.perimeter import PartitionKind

__all__ = [
    "jacobi_spectral_radius",
    "sor_spectral_radius",
    "estimate_jacobi_iterations",
    "estimate_sor_iterations",
    "SolveEstimate",
    "estimate_solve_time",
]


def jacobi_spectral_radius(n: int) -> float:
    """``ρ_J = cos(π/(n+1))`` for the 5-point Laplacian on n×n."""
    if n < 1:
        raise InvalidParameterError("grid size must be >= 1")
    return math.cos(math.pi / (n + 1))


def sor_spectral_radius(n: int) -> float:
    """``ρ_SOR = ω* − 1`` at the optimal relaxation factor."""
    rho_j = jacobi_spectral_radius(n)
    omega = 2.0 / (1.0 + math.sqrt(1.0 - rho_j * rho_j))
    return omega - 1.0


def _iterations_from_radius(rho: float, reduction: float) -> int:
    if not 0 < rho < 1:
        raise InvalidParameterError(f"spectral radius {rho} not in (0, 1)")
    if not 0 < reduction < 1:
        raise InvalidParameterError("error reduction must be in (0, 1)")
    return max(1, math.ceil(math.log(reduction) / math.log(rho)))


def estimate_jacobi_iterations(n: int, reduction: float = 1e-6) -> int:
    """Sweeps for Jacobi to shrink the error by ``reduction`` — Θ(n² log 1/ε)."""
    return _iterations_from_radius(jacobi_spectral_radius(n), reduction)


def estimate_sor_iterations(n: int, reduction: float = 1e-6) -> int:
    """Sweeps for optimal SOR — Θ(n log 1/ε)."""
    return _iterations_from_radius(sor_spectral_radius(n), reduction)


@dataclass(frozen=True)
class SolveEstimate:
    """Whole-solve cost: iterations × optimized cycle time."""

    iterations: int
    cycle_time: float
    total_time: float
    processors: float
    speedup_vs_serial: float


def estimate_solve_time(
    machine: Architecture,
    workload: Workload,
    kind: PartitionKind,
    max_processors: float | None = None,
    reduction: float = 1e-6,
    algorithm: str = "jacobi",
) -> SolveEstimate:
    """Price a full solve on a machine.

    The per-iteration optimum is independent of the iteration count
    (every sweep has the same cost structure), so the optimal partition
    for one iteration is optimal for the solve — the reason the paper
    can analyze a single cycle.
    """
    from repro.core.allocation import optimize_allocation

    if algorithm == "jacobi":
        iterations = estimate_jacobi_iterations(workload.n, reduction)
    elif algorithm == "sor":
        iterations = estimate_sor_iterations(workload.n, reduction)
    else:
        raise InvalidParameterError(f"unknown algorithm {algorithm!r}")
    alloc = optimize_allocation(machine, workload, kind, max_processors)
    total = iterations * alloc.cycle_time
    serial_total = iterations * workload.serial_time()
    return SolveEstimate(
        iterations=iterations,
        cycle_time=alloc.cycle_time,
        total_time=total,
        processors=alloc.processors,
        speedup_vs_serial=serial_total / total,
    )
