"""Model problems with known solutions, for grounding the solver.

Two classics on the unit square with Dirichlet boundaries:

* :func:`laplace_problem` — ``Δu = 0`` with harmonic boundary data; the
  exact solution is the harmonic function itself, so the discrete
  answer converges to it as the grid refines.
* :func:`poisson_manufactured` — ``−Δu = f`` with
  ``u*(x, y) = sin(πx)·sin(πy)`` (zero boundary) and
  ``f = 2π²·sin(πx)·sin(πy)``; the classic manufactured solution.

Both return a :class:`ModelProblem` bundling the right-hand side, the
boundary value, and an exact-solution evaluator for error measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.solver.grid import domain_coordinates

__all__ = ["ModelProblem", "laplace_problem", "poisson_manufactured"]


@dataclass(frozen=True)
class ModelProblem:
    """A Poisson problem ``−Δu = f`` with constant Dirichlet boundary."""

    name: str
    rhs: Callable[[np.ndarray, np.ndarray], np.ndarray]
    boundary_value: float
    exact: Callable[[np.ndarray, np.ndarray], np.ndarray] | None

    def rhs_grid(self, n: int) -> np.ndarray:
        x, y = domain_coordinates(n)
        return np.asarray(self.rhs(x, y), dtype=float)

    def exact_grid(self, n: int) -> np.ndarray:
        if self.exact is None:
            raise ValueError(f"problem {self.name!r} has no closed-form solution")
        x, y = domain_coordinates(n)
        return np.asarray(self.exact(x, y), dtype=float)


def laplace_problem(boundary_value: float = 1.0) -> ModelProblem:
    """``Δu = 0`` with constant boundary: the solution is that constant.

    The simplest possible ground truth — any consistent scheme must
    reproduce a constant exactly (weights sum to one), making this the
    sharpest test of the stencil weights and ghost handling.
    """
    return ModelProblem(
        name=f"laplace-const({boundary_value:g})",
        rhs=lambda x, y: np.zeros_like(x),
        boundary_value=boundary_value,
        exact=lambda x, y: np.full_like(x, boundary_value),
    )


def poisson_manufactured() -> ModelProblem:
    """``−Δu = 2π² sin(πx) sin(πy)``, exact ``u = sin(πx) sin(πy)``."""
    two_pi_sq = 2.0 * math.pi**2
    return ModelProblem(
        name="poisson-sin-sin",
        rhs=lambda x, y: two_pi_sq * np.sin(math.pi * x) * np.sin(math.pi * y),
        boundary_value=0.0,
        exact=lambda x, y: np.sin(math.pi * x) * np.sin(math.pi * y),
    )
