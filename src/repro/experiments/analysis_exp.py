"""Analysis extensions: isoefficiency, arbitration, operator grounding.

* **E-ISO** — isoefficiency functions implied by the paper's models:
  to hold efficiency constant, n² must grow like N (hypercube), a bit
  faster (banyan), N³ (bus squares), N⁴ (bus strips).  A forward-looking
  restatement of Table I that became the standard scalability metric.
* **E-ABL-ARBITRATION** — footnote 3's effective-delay assumption under
  two bus disciplines: block-FIFO service reproduces ``V·(c + b·P)``
  exactly; word-level round-robin lands inside the same envelope.
* **E-OPERATORS** — the iteration is grounded in linear algebra: the
  Jacobi fixed point equals the sparse direct solve, the measured
  spectral radius matches ``cos(π h)``, and the fourth-order star
  stencils exceed 1 (hence the damping the solver applies).
"""

from __future__ import annotations

import math

import numpy as np

from repro.batch import isoefficiency_exponent_grid
from repro.experiments.registry import ExperimentResult, register
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.sim.network.bus_sim import (
    BlockRequest,
    sync_bus_phase,
    sync_bus_phase_word_level,
)
from repro.solver.convergence import InfNormCriterion
from repro.solver.jacobi import solve_jacobi
from repro.solver.operators import direct_solve, measured_spectral_radius
from repro.solver.problems import poisson_manufactured
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX, NINE_POINT_STAR
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_isoefficiency", "run_arbitration", "run_operators"]

SQUARE = PartitionKind.SQUARE
STRIP = PartitionKind.STRIP


@register("E-ISO")
def run_isoefficiency(
    processor_counts: tuple[int, ...] = (4, 8, 16, 32, 64),
    target_efficiency: float = 0.5,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-ISO",
        title="Isoefficiency: problem growth needed to hold efficiency",
    )
    configs = [
        ("hypercube / squares", Hypercube(alpha=1e-6, beta=1e-5, packet_words=16), SQUARE, 1.0),
        ("banyan / squares", BanyanNetwork(w=2e-7), SQUARE, 1.0),
        ("sync bus / squares", SynchronousBus(b=6.1e-6, c=0.0), SQUARE, 3.0),
        ("sync bus / strips", SynchronousBus(b=6.1e-6, c=0.0), STRIP, 4.0),
    ]
    rows = []
    for label, machine, kind, expected in configs:
        # One batched efficiency search per configuration covers the
        # whole processor axis (scalar oracle: core.isoefficiency).
        fit = isoefficiency_exponent_grid(
            machine, FIVE_POINT, kind, list(processor_counts), target_efficiency
        )
        rows.append((label, fit.exponent, expected, str(fit.problem_sizes)))
    result.add_table(
        f"n² growth exponent in N at efficiency {target_efficiency:g}",
        ["configuration", "fitted exponent", "asymptotic", "grid sides"],
        rows,
    )
    result.notes.append(
        "Buses need cubically/quartically growing problems to stay "
        "efficient — the isoefficiency restatement of Table I.  The banyan "
        "fit exceeds 1 at small N (its log² correction), approaching 1 as "
        "machines grow."
    )
    return result


@register("E-ABL-ARBITRATION")
def run_arbitration(
    volumes: tuple[int, ...] = (8, 32, 128),
    processor_counts: tuple[int, ...] = (2, 4, 8, 16),
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-ABL-ARBITRATION",
        title="Footnote 3 ablation: bus arbitration disciplines",
    )
    b, c = 2e-6, 1e-6
    rows = []
    for words in volumes:
        for procs in processor_counts:
            reqs = [BlockRequest(p, words, 0.0) for p in range(procs)]
            block = max(sync_bus_phase(reqs, b, c).values())
            word = max(sync_bus_phase_word_level(reqs, b, c).values())
            analytic = words * (c + b * procs)
            rows.append(
                (
                    words,
                    procs,
                    analytic,
                    block,
                    word,
                    block / analytic,
                    word / analytic,
                )
            )
    result.add_table(
        "phase completion by discipline (V words/processor)",
        [
            "V",
            "P",
            "analytic V(c+bP)",
            "block FIFO",
            "word round-robin",
            "block/analytic",
            "word/analytic",
        ],
        rows,
    )
    result.notes.append(
        "Block-FIFO equals the paper's effective-delay model exactly; "
        "word-level round-robin is never slower and approaches the same "
        "envelope — the modelling assumption is discipline-robust."
    )
    return result


@register("E-OPERATORS")
def run_operators(n: int = 16) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-OPERATORS",
        title="Linear-algebra grounding of the iteration",
    )
    problem = poisson_manufactured()
    rows = []
    for stencil, damping in ((FIVE_POINT, 1.0), (NINE_POINT_BOX, 1.0)):
        direct = direct_solve(stencil, problem, n)
        iterated = solve_jacobi(
            stencil,
            problem,
            n,
            InfNormCriterion(1e-13),
            max_iterations=500_000,
            damping=damping,
        )
        gap = float(np.max(np.abs(direct - iterated.field.interior)))
        rows.append((stencil.name, iterated.iterations, gap))
    result.add_table(
        "Jacobi fixed point vs sparse direct solve",
        ["stencil", "iterations", "max |direct - iterated|"],
        rows,
    )

    rho_rows = []
    for stencil in (FIVE_POINT, NINE_POINT_BOX, NINE_POINT_STAR):
        measured = measured_spectral_radius(stencil, n)
        theory = math.cos(math.pi / (n + 1)) if stencil is FIVE_POINT else float("nan")
        rho_rows.append(
            (
                stencil.name,
                measured,
                theory,
                "plain Jacobi diverges" if measured >= 1.0 else "converges",
            )
        )
    result.add_table(
        "Jacobi iteration spectral radius",
        ["stencil", "measured rho", "theory cos(pi·h)", "consequence"],
        rho_rows,
    )
    result.notes.append(
        "The 9-point star's rho > 1 is why the solver offers damping "
        "(omega = 0.8 restores convergence); the 5-point radius matches "
        "cos(pi/(n+1)) to machine precision."
    )
    return result
