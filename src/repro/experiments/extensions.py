"""Extension experiments: the paper's sketched-but-underived claims.

* **E-EXT-FULLASYNC** — Section 6.2's closing remark: making reads
  asynchronous too buys another constant factor (the scan prints
  "126%"; the algebra gives ×√2 strips / ×1.26 squares — see
  :mod:`repro.machines.bus_extensions`), and no exponent change.
* **E-ABL-MAPPING** — Section 4's adjacency-preserving embedding vs a
  random partition-to-node mapping: the embedding is what keeps the
  hypercube's scaled cycle constant.
* **E-ABL-PLACEMENT** — Section 7's assumption 3 on a real butterfly:
  the paper's placement is exactly conflict-free, bit-reversal placement
  suffers Θ(√N) congestion, random placements sit logarithmically in
  between.
"""

from __future__ import annotations

import math

import numpy as np

from repro.batch import optimal_allocation_curve
from repro.core.scaling import fit_scaling_exponent
from repro.experiments.registry import ExperimentResult, register
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.bus_extensions import FullyAsynchronousBus
from repro.machines.hypercube import Hypercube
from repro.machines.mapping import RandomMappingHypercube
from repro.sim.network.butterfly import (
    ButterflyNetwork,
    bit_reversal_permutation,
    cyclic_shift_permutation,
    random_permutation,
)
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_fully_async", "run_mapping_ablation", "run_placement_ablation"]

SQUARE = PartitionKind.SQUARE
STRIP = PartitionKind.STRIP


@register("E-EXT-FULLASYNC")
def run_fully_async() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-EXT-FULLASYNC",
        title="Fully asynchronous bus: reads and writes overlap compute",
    )
    b = 6.1e-6
    sync = SynchronousBus(b=b, c=0.0)
    asyn = AsynchronousBus(b=b, c=0.0)
    full = FullyAsynchronousBus(b=b, c=0.0)
    sizes = (1024, 4096)
    # One batched optimal-allocation call per (overlap level, partition)
    # covers the whole size axis.
    speedups = {
        (label, kind): optimal_allocation_curve(machine, FIVE_POINT, kind, sizes).speedup
        for label, machine in (("sync", sync), ("async", asyn), ("full", full))
        for kind in (STRIP, SQUARE)
    }
    rows = []
    for i, n in enumerate(sizes):
        for kind in (STRIP, SQUARE):
            s_sync = speedups[("sync", kind)][i].item()
            s_async = speedups[("async", kind)][i].item()
            s_full = speedups[("full", kind)][i].item()
            rows.append(
                (n, kind.value, s_sync, s_async, s_full, s_full / s_async)
            )
    result.add_table(
        "optimal speedup by overlap level",
        ["n", "partition", "sync", "async", "fully async", "full/async"],
        rows,
    )
    # Exponents must not improve: still 1/4 and 1/3.
    grids = [2**i for i in range(8, 14)]
    n2 = np.array([float(n) * n for n in grids])
    exp_rows = []
    for kind, expected in ((STRIP, 0.25), (SQUARE, 1.0 / 3.0)):
        sp = optimal_allocation_curve(full, FIVE_POINT, kind, grids).speedup
        exp_rows.append((kind.value, fit_scaling_exponent(n2, sp).exponent, expected))
    result.add_table(
        "fully-async growth exponents (unchanged)",
        ["partition", "fitted", "expected"],
        exp_rows,
    )
    result.notes.append(
        "Expected gains over the asynchronous bus: sqrt(2) for strips, "
        "2^(1/3) = 1.26 for squares — the scanned '126%' is read as "
        "'a 26%'.  Contention still caps the exponents."
    )
    return result


@register("E-ABL-MAPPING")
def run_mapping_ablation() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-ABL-MAPPING",
        title="Hypercube embedding ablation: adjacent vs random mapping",
    )
    embedded = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
    random_map = RandomMappingHypercube(alpha=1e-6, beta=1e-5, packet_words=16)
    sizes = (256, 1024, 4096)
    s_e = optimal_allocation_curve(embedded, FIVE_POINT, SQUARE, sizes).speedup
    s_r = optimal_allocation_curve(random_map, FIVE_POINT, SQUARE, sizes).speedup
    rows = [
        (n, s_e[i].item(), s_r[i].item(), (s_e[i] / s_r[i]).item())
        for i, n in enumerate(sizes)
    ]
    result.add_table(
        "optimal speedup with and without the embedding",
        ["n", "embedded", "random mapping", "embedding gain"],
        rows,
    )
    grids = [2**i for i in range(8, 14)]
    n2 = np.array([float(n) * n for n in grids])
    sp = optimal_allocation_curve(random_map, FIVE_POINT, SQUARE, grids).speedup
    fit = fit_scaling_exponent(n2, sp)
    result.add_table(
        "random-mapping growth exponent (drops below linear)",
        ["fitted exponent", "embedded exponent"],
        [(fit.exponent, 1.0)],
    )
    result.notes.append(
        "Random mapping pays ~log2(N)/2 dilation per message, demoting the "
        "hypercube to banyan-like n²/log n growth — Section 4's 'very "
        "important' property, quantified."
    )
    return result


@register("E-ABL-PLACEMENT")
def run_placement_ablation(seeds: tuple[int, ...] = (0, 1, 2)) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-ABL-PLACEMENT",
        title="Banyan assumption 3: switch congestion by memory placement",
    )
    rows = []
    for d in (3, 4, 5, 6, 7, 8):
        n_ports = 1 << d
        net = ButterflyNetwork(n_ports=n_ports)
        identity = list(range(n_ports))
        shift = cyclic_shift_permutation(n_ports)
        reversal = bit_reversal_permutation(n_ports)
        random_cong = max(
            net.congestion(random_permutation(n_ports, seed)) for seed in seeds
        )
        rows.append(
            (
                n_ports,
                net.congestion(identity),
                net.congestion(shift),
                net.congestion(reversal),
                random_cong,
                round(math.sqrt(n_ports), 1),
            )
        )
    result.add_table(
        "max switch-edge congestion by placement",
        [
            "N ports",
            "identity (paper)",
            "cyclic shift",
            "bit reversal",
            "random (worst of seeds)",
            "sqrt(N) reference",
        ],
        rows,
    )
    result.notes.append(
        "The paper's placement (assumption 3) is exactly conflict-free; "
        "bit-reversal placement drives congestion to Θ(sqrt N), multiplying "
        "the per-word read time by the same factor.  Placement, not just "
        "switch speed, decides banyan viability."
    )
    return result
