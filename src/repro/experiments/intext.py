"""In-text numerical claims of Section 6 (E-TEXT1..E-TEXT4).

Four worked results the paper states inline rather than in a figure:

* **E-TEXT1** — the N=16 strips-vs-squares example ("Supposing that
  E(S)·T_fp = b, N = 16, k = 1, and n = 256 …").  The paper's printed
  formulas, ``16/(1+512/n)`` for strips and ``16/(1+128/n)`` for
  squares, count communication volume more optimistically than its own
  derived equations; both accountings are reported here (see
  EXPERIMENTS.md for the discrepancy discussion).
* **E-TEXT2** — on a synchronous bus an interior optimum needs
  ``c/b ≤ P``; the FLEX/32's measured ``c/b ≈ 1000`` therefore forces
  all-processor allocations.
* **E-TEXT3** — hardware leverage at the bus optimum (×2 bus / ×2 flop
  speed).
* **E-TEXT4** — asynchronous-vs-synchronous improvement factors and the
  √2 optimal-area ratio for strips.
"""

from __future__ import annotations

import math

from repro.batch import (
    SweepSpec,
    bus_optimal_area_curve,
    cached_run_sweep,
    optimal_allocation_curve,
)
from repro.core.leverage import leverage_factor
from repro.core.parameters import Workload
from repro.experiments.registry import ExperimentResult, register
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.catalog import FLEX32
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_intext"]

STRIP = PartitionKind.STRIP
SQUARE = PartitionKind.SQUARE


def _paper_printed_strip(n: int, n_procs: int) -> float:
    return n_procs / (1.0 + 2.0 * n_procs**2 / n)


def _paper_printed_square(n: int, n_procs: int) -> float:
    return n_procs / (1.0 + 2.0 * n_procs**1.5 / n)


@register("E-TEXT1")
def run_intext_example() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-TEXT1",
        title="Strips vs squares at N=16, E·T_fp = b (Section 6.1 example)",
    )
    b = FIVE_POINT.flops_per_point * 1e-6  # E(S)·T_fp = b with T_fp = 1 µs
    machines = {
        "read+write": SynchronousBus(b=b, c=0.0),
        "read-only": SynchronousBus(b=b, c=0.0, volume_mode="read_only"),
    }
    sizes = (256, 1024)
    # One sweep per partition shape covers both accountings and sizes.
    speedup_at_16 = {
        kind: cached_run_sweep(
            SweepSpec(
                grid_sides=sizes,
                processors=(16.0,),
                machines=tuple(machines.items()),
                stencil=FIVE_POINT,
                kind=kind,
            )
        )
        for kind in (STRIP, SQUARE)
    }
    rows = []
    for i, n in enumerate(sizes):
        row: list[object] = [n]
        for label in machines:
            row.append(speedup_at_16[STRIP].speedup(label)[i, 0].item())
            row.append(speedup_at_16[SQUARE].speedup(label)[i, 0].item())
        row.append(_paper_printed_strip(n, 16))
        row.append(_paper_printed_square(n, 16))
        rows.append(tuple(row))
    result.add_table(
        "speedup at N=16",
        [
            "n",
            "strip (rw)",
            "square (rw)",
            "strip (ro)",
            "square (ro)",
            "strip (paper formula)",
            "square (paper formula)",
        ],
        rows,
    )
    result.notes.append(
        "Every accounting agrees on the shape: squares beat strips at both "
        "sizes and both converge to N=16 as n grows (paper: strips 5.3→10.6, "
        "squares 10.6→14.2 under its printed formulas)."
    )
    return result


@register("E-TEXT2")
def run_flex32_condition() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-TEXT2",
        title="c/b <= P necessary condition; FLEX/32 uses all processors",
    )
    ratio = FLEX32.c / FLEX32.b
    sizes = (128, 256, 512, 1024)
    caps = (8, 16, 30)
    # One batched allocation curve per machine-size cap, whole n axis.
    curves = {
        n_procs: optimal_allocation_curve(
            FLEX32, FIVE_POINT, SQUARE, sizes, max_processors=n_procs
        )
        for n_procs in caps
    }
    rows = []
    for i, n in enumerate(sizes):
        for n_procs in caps:
            curve = curves[n_procs]
            rows.append(
                (
                    n,
                    n_procs,
                    ratio,
                    curve.regime[i],
                    curve.processors[i].item(),
                    curve.speedup[i].item(),
                )
            )
    result.add_table(
        "FLEX/32-style bus (c/b = 1000) allocations",
        ["n", "N available", "c/b", "regime", "processors used", "speedup"],
        rows,
    )
    result.notes.append(
        "An interior optimum with P processors requires c/b <= P (Section "
        "6.1); with c/b = 1000 >> 30 the optimizer never selects an interior "
        "point — numerical problems on such a machine use all processors."
    )
    return result


@register("E-TEXT3")
def run_leverage() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-TEXT3",
        title="Leverage of doubling bus vs flop speed at the bus optimum",
    )
    machine = SynchronousBus(b=6.1e-6, c=0.0)
    w = Workload(n=4096, stencil=FIVE_POINT)
    rows = []
    expectations = {
        (PartitionKind.STRIP, "b"): 1.0 / math.sqrt(2.0),
        (PartitionKind.STRIP, "t_flop"): 1.0 / math.sqrt(2.0),
        (PartitionKind.SQUARE, "b"): 0.5 ** (2.0 / 3.0),
        (PartitionKind.SQUARE, "t_flop"): 0.5 ** (1.0 / 3.0),
    }
    for kind in (PartitionKind.STRIP, PartitionKind.SQUARE):
        for param in ("b", "t_flop"):
            measured = leverage_factor(machine, w, kind, param)
            rows.append(
                (kind.value, param, measured, expectations[(kind, param)])
            )
    result.add_table(
        "cycle-time factor after 2x speedup of one component",
        ["partition", "component", "computed", "paper"],
        rows,
    )
    # The c-dominated regime: improving b is worthless, halving c is linear.
    c_heavy = SynchronousBus(b=0.5e-6, c=500e-6)
    w_mid = Workload(n=1024, stencil=FIVE_POINT)
    rows2 = [
        (
            "b",
            leverage_factor(c_heavy, w_mid, PartitionKind.STRIP, "b"),
        ),
        (
            "c",
            leverage_factor(c_heavy, w_mid, PartitionKind.STRIP, "c"),
        ),
    ]
    result.add_table(
        "c-dominated bus (c/b=1000): leverage of 2x speedups",
        ["component", "cycle-time factor"],
        rows2,
    )
    result.notes.append(
        "Squares: doubling the bus gives 0.63, doubling flops 0.79 — "
        "communication is twice the computation at the optimum.  When c "
        "dominates, bus speed stops mattering and c improves times linearly."
    )
    return result


@register("E-TEXT4")
def run_async_factors() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-TEXT4",
        title="Asynchronous vs synchronous bus: constant-factor gains",
    )
    sync = SynchronousBus(b=6.1e-6, c=0.0)
    asyn = AsynchronousBus(b=6.1e-6, c=0.0)
    sizes = (512, 2048, 8192)
    # Batched optimal-speedup and optimal-area curves; the scalar
    # core.speedup path remains the oracle the tests pin against.
    speed = {
        (label, kind): optimal_allocation_curve(machine, FIVE_POINT, kind, sizes).speedup
        for label, machine in (("sync", sync), ("async", asyn))
        for kind in (STRIP, SQUARE)
    }
    strip_area = {
        label: bus_optimal_area_curve(machine, FIVE_POINT, STRIP, sizes)
        for label, machine in (("sync", sync), ("async", asyn))
    }
    rows = []
    for i, n in enumerate(sizes):
        st = (speed[("async", STRIP)][i] / speed[("sync", STRIP)][i]).item()
        sq = (speed[("async", SQUARE)][i] / speed[("sync", SQUARE)][i]).item()
        area_ratio = (strip_area["sync"][i] / strip_area["async"][i]).item()
        rows.append((n, st, sq, area_ratio))
    result.add_table(
        "async/sync ratios",
        ["n", "strip speedup ratio", "square speedup ratio", "strip area ratio"],
        rows,
    )
    result.add_table(
        "paper values",
        ["quantity", "value"],
        [
            ("strip speedup ratio", math.sqrt(2.0)),
            ("square speedup ratio", 1.5),
            ("strip area ratio (sync/async)", math.sqrt(2.0)),
        ],
    )
    result.notes.append(
        "Overlap buys only a constant factor: contention still caps optimal "
        "speedup at O((n²)^(1/4)) strips / O((n²)^(1/3)) squares."
    )
    return result
