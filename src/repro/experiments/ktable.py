"""E-KTAB: the Section-3 k(Partition, Stencil) classification table.

The paper tabulates how many perimeters each partition/stencil pair
communicates (values partly garbled in the archival scan; the canonical
values follow from the stencil reaches, which is how this experiment
computes them).  Also renders Figure 1/Figure 3's stencil footprints.
"""

from __future__ import annotations

from repro.batch import k_matrix
from repro.experiments.registry import ExperimentResult, register
from repro.stencils.library import ALL_STENCILS
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_ktable"]

_KINDS = (PartitionKind.STRIP, PartitionKind.SQUARE)


@register("E-KTAB")
def run_ktable() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-KTAB",
        title="k(Partition, Stencil): perimeters communicated per iteration",
    )
    # The whole classification table in one batched reach lookup.
    km = k_matrix(ALL_STENCILS, _KINDS)
    rows = [
        (kind.value, stencil.name, int(km[i, j]))
        for i, stencil in enumerate(ALL_STENCILS)
        for j, kind in enumerate(_KINDS)
    ]
    result.add_table("k values", ["partition", "stencil", "k"], rows)

    footprint_rows = [
        (s.name, s.flops_per_point, s.reach, "yes" if s.has_diagonals else "no")
        for s in ALL_STENCILS
    ]
    result.add_table(
        "stencil properties",
        ["stencil", "E(S) flops/point", "reach", "diagonals"],
        footprint_rows,
    )
    for s in ALL_STENCILS:
        result.notes.append(f"{s.name} footprint:\n" + s.ascii_art())
    result.notes.append(
        "k(strip, S) = row reach; k(square, S) = Chebyshev reach — computed "
        "from geometry, matching the paper's classification."
    )
    return result
