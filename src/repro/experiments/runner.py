"""Run experiments from the command line.

``python -m repro.experiments.runner``            — run everything
``python -m repro.experiments.runner E-FIG7``     — run one experiment
``python -m repro.experiments.runner --list``     — list ids

Each run prints the textual report and writes the CSV artifacts under
``results/``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Importing the experiment modules populates the registry.
import repro.experiments.analysis_exp  # noqa: F401
import repro.experiments.extensions  # noqa: F401
import repro.experiments.figure6  # noqa: F401
import repro.experiments.figure7  # noqa: F401
import repro.experiments.figure8  # noqa: F401
import repro.experiments.intext  # noqa: F401
import repro.experiments.ktable  # noqa: F401
import repro.experiments.scaled  # noqa: F401
import repro.experiments.simulation  # noqa: F401
import repro.experiments.solver_exp  # noqa: F401
import repro.experiments.table1  # noqa: F401
from repro.experiments.registry import all_experiments, get_experiment
from repro.report.csvio import default_results_dir

__all__ = ["run_all", "main"]


def run_all(output_dir: Path | None = None, ids: list[str] | None = None) -> list[str]:
    """Run the selected (default: all) experiments; returns their reports."""
    output_dir = output_dir or default_results_dir()
    reports = []
    registry = all_experiments()
    for exp_id in ids or sorted(registry):
        runner = get_experiment(exp_id)
        result = runner()
        result.write_csvs(output_dir)
        reports.append(result.render())
    return reports


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--output", type=Path, default=None, help="CSV directory")
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in sorted(all_experiments()):
            print(exp_id)
        return 0
    for report in run_all(args.output, args.ids or None):
        print(report)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
