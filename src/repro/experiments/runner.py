"""Run experiments from the command line.

``python -m repro.experiments.runner``            — run everything
``python -m repro.experiments.runner E-FIG7``     — run one experiment
``python -m repro.experiments.runner --list``     — list ids
``python -m repro.experiments.runner --jobs 4``   — run concurrently

Each run prints the textual report, a per-experiment wall-time summary,
and writes the CSV artifacts under ``results/`` (or ``--output``, which
is created if missing).  Independent experiments run concurrently in a
process pool when ``--jobs > 1``; reports always come back in request
order.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

# Importing the experiment modules populates the registry.
import repro.experiments.analysis_exp  # noqa: F401
import repro.experiments.extensions  # noqa: F401
import repro.experiments.figure6  # noqa: F401
import repro.experiments.figure7  # noqa: F401
import repro.experiments.figure8  # noqa: F401
import repro.experiments.intext  # noqa: F401
import repro.experiments.ktable  # noqa: F401
import repro.experiments.scaled  # noqa: F401
import repro.experiments.simulation  # noqa: F401
import repro.experiments.solver_exp  # noqa: F401
import repro.experiments.table1  # noqa: F401
from repro.errors import ExperimentError, InvalidParameterError
from repro.experiments.registry import all_experiments, get_experiment
from repro.report.csvio import default_results_dir
from repro.report.tables import format_table

__all__ = ["ExperimentRun", "run_experiments", "run_all", "run_and_report", "main"]


@dataclass(frozen=True)
class ExperimentRun:
    """One experiment's outcome: its report, artifacts, and wall time."""

    experiment_id: str
    report: str
    seconds: float
    csv_paths: tuple[Path, ...]
    #: Sweep-cache hit/miss counters for this run (``None`` = no cache).
    cache_stats: dict[str, int] | None = None


def _select_ids(ids: list[str] | None) -> list[str]:
    """Resolve the id selection, failing on unknown ids *before* any run.

    ``None`` means every registered experiment; an explicit empty list
    selects nothing (it is not a silent run-everything).  Duplicates
    collapse to the first occurrence — two workers must never write the
    same CSV paths concurrently.
    """
    if ids is None:
        return sorted(all_experiments())
    selected: list[str] = []
    for exp_id in ids:
        get_experiment(exp_id)  # raises ExperimentError listing known ids
        if exp_id not in selected:
            selected.append(exp_id)
    return selected


def _run_one(
    exp_id: str,
    output_dir: str,
    cache_dir: str | None = None,
    server: str | None = None,
    max_cache_bytes: int | None = None,
) -> ExperimentRun:
    """Worker body: run one experiment and write its artifacts.

    Module-level so a process pool can pickle it; re-importing this
    module in a worker repopulates the registry.  With ``cache_dir``
    the run gets a disk-backed default sweep cache; with ``server`` the
    slow tier is a running ``repro serve`` daemon instead, so every
    worker shares one deduplicated store.  Either way the run's
    hit/miss counters are tracked *in this process* and come back in
    the result — a hit served by the daemon or the shared directory
    still counts here, so report totals match single-process runs.
    """
    from repro.batch.cache import (
        SweepCache,
        configure_default_cache,
        default_cache,
        set_default_cache,
    )

    stats = None
    cache: SweepCache | None = None
    if server is not None:
        from repro.service import RemoteSweepCache

        previous = default_cache()
        cache = RemoteSweepCache(server, max_bytes=max_cache_bytes)
        set_default_cache(cache)
    elif cache_dir is not None:
        previous = default_cache()
        cache = configure_default_cache(Path(cache_dir), max_bytes=max_cache_bytes)
    start = time.perf_counter()
    try:
        result = get_experiment(exp_id)()
        paths = tuple(result.write_csvs(Path(output_dir)))
        if cache is not None:
            stats = cache.stats.snapshot()
    finally:
        # Restore whatever default the caller had (jobs=1 runs in the
        # caller's process, so clobbering it would silently disable
        # their own caching after the run).
        if cache is not None:
            set_default_cache(previous)
    return ExperimentRun(
        experiment_id=exp_id,
        report=result.render(),
        seconds=time.perf_counter() - start,
        csv_paths=paths,
        cache_stats=stats,
    )


def _run_one_pooled(
    exp_id: str,
    output_dir: str,
    cache_dir: str | None,
    server: str | None,
    max_cache_bytes: int | None,
) -> ExperimentRun:
    """Pool wrapper: convert a worker crash into a picklable error.

    A raw exception crossing the process boundary keeps only what
    pickles — often just a bare repr, sometimes nothing at all when the
    exception type itself fails to round-trip — and the traceback never
    survives.  Capturing ``format_exc`` *in the worker* and re-raising
    an :class:`ExperimentError` carrying the experiment id plus the full
    traceback text makes the parent's failure report actionable.
    """
    try:
        return _run_one(exp_id, output_dir, cache_dir, server, max_cache_bytes)
    except Exception:
        raise ExperimentError(
            f"experiment {exp_id} failed in a worker process\n"
            f"{traceback.format_exc()}"
        ) from None


def run_experiments(
    output_dir: Path | None = None,
    ids: list[str] | None = None,
    jobs: int = 1,
    cache_dir: Path | None = None,
    server: str | None = None,
    max_cache_mb: float | None = None,
) -> list[ExperimentRun]:
    """Run the selected (default: all) experiments; returns their outcomes.

    ``jobs > 1`` distributes the experiments over a process pool —
    each experiment is independent, so they parallelize cleanly; results
    are returned in request order regardless of completion order.  The
    output directory (and parents) is created up front so a bad
    ``--output`` cannot fail mid-run after some experiments completed.
    ``cache_dir`` enables the disk-backed sweep cache for every run
    (workers share it through the filesystem); ``server`` routes every
    run's sweeps through a running ``repro serve`` daemon instead, and
    ``max_cache_mb`` bounds the per-process memory tier either way.  A
    worker failure surfaces as :class:`ExperimentError` naming the
    experiment and carrying the worker's full traceback text.
    """
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    from repro.batch.cache import max_cache_bytes as _to_bytes

    output_dir = output_dir or default_results_dir()
    output_dir.mkdir(parents=True, exist_ok=True)
    cache = None if cache_dir is None else str(cache_dir)
    max_cache_bytes = _to_bytes(max_cache_mb)
    selected = _select_ids(ids)
    if not selected:
        return []
    if jobs == 1 or len(selected) == 1:
        return [
            _run_one(exp_id, str(output_dir), cache, server, max_cache_bytes)
            for exp_id in selected
        ]
    with ProcessPoolExecutor(max_workers=min(jobs, len(selected))) as pool:
        futures = [
            pool.submit(
                _run_one_pooled, exp_id, str(output_dir), cache, server, max_cache_bytes
            )
            for exp_id in selected
        ]
        return [f.result() for f in futures]


def run_all(
    output_dir: Path | None = None,
    ids: list[str] | None = None,
    jobs: int = 1,
) -> list[str]:
    """Back-compat wrapper over :func:`run_experiments`: reports only."""
    return [run.report for run in run_experiments(output_dir, ids, jobs)]


def _timing_table(runs: list[ExperimentRun], elapsed: float) -> str:
    """Per-run times plus the true elapsed wall clock.

    Under ``--jobs > 1`` the per-run spans overlap, so their sum
    exceeds the elapsed time — both are reported, labelled apart.
    """
    rows = [(r.experiment_id, f"{r.seconds:.3f}") for r in runs]
    rows.append(("sum of runs", f"{sum(r.seconds for r in runs):.3f}"))
    rows.append(("elapsed", f"{elapsed:.3f}"))
    return format_table(
        ["experiment", "wall time (s)"], rows, title="Per-experiment wall time"
    )


def _cache_table(runs: list[ExperimentRun]) -> str | None:
    """Per-run sweep-cache hits/misses, plus the warm/cold verdict.

    A run whose requests were all served from the store is labelled
    ``warm``; any recomputation marks it ``cold``.  The planner columns
    show how much work the sweep graph avoided: nodes planned, sibling
    requests fused onto shared evaluations, and repeated subgraphs
    deduplicated.
    """
    from repro.batch.cache import CacheStats

    reported = [r for r in runs if r.cache_stats is not None]
    if not reported:
        return None
    rows = []
    total = CacheStats()
    for r in reported:
        run_stats = CacheStats().merge(r.cache_stats)
        total.merge(run_stats)
        hits, misses = run_stats.hits, run_stats.misses
        state = "-" if hits + misses == 0 else ("warm" if misses == 0 else "cold")
        rows.append(
            (
                r.experiment_id,
                hits,
                misses,
                run_stats.nodes_planned,
                run_stats.siblings_fused,
                run_stats.subgraphs_deduped,
                state,
            )
        )
    state = (
        "warm" if total.hits and not total.misses else "cold"
    ) if total.requests else "-"
    rows.append(
        (
            "total",
            total.hits,
            total.misses,
            total.nodes_planned,
            total.siblings_fused,
            total.subgraphs_deduped,
            state,
        )
    )
    return format_table(
        [
            "experiment",
            "cache hits",
            "cache misses",
            "nodes planned",
            "fused",
            "deduped",
            "state",
        ],
        rows,
        title="Sweep cache",
    )


def run_and_report(
    output_dir: Path | None = None,
    ids: list[str] | None = None,
    jobs: int = 1,
    cache_dir: Path | None = None,
    server: str | None = None,
    max_cache_mb: float | None = None,
) -> int:
    """Run experiments and print reports plus the wall-time summary.

    The shared terminal flow behind both ``repro experiments`` and
    ``python -m repro.experiments.runner``.
    """
    start = time.perf_counter()
    runs = run_experiments(
        output_dir,
        ids,
        jobs=jobs,
        cache_dir=cache_dir,
        server=server,
        max_cache_mb=max_cache_mb,
    )
    elapsed = time.perf_counter() - start
    for run in runs:
        print(run.report)
        print()
    if runs:
        print(_timing_table(runs, elapsed))
        cache_report = _cache_table(runs)
        if cache_report is not None:
            print()
            print(cache_report)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--output", type=Path, default=None, help="CSV directory")
    parser.add_argument(
        "--jobs", type=int, default=1, help="experiments to run concurrently"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="enable the disk-backed sweep cache under this directory",
    )
    parser.add_argument(
        "--max-cache-mb",
        type=float,
        default=None,
        help="LRU bound per cache tier (MiB); default unbounded",
    )
    parser.add_argument(
        "--server",
        default=None,
        help="route sweeps through a running `repro serve` daemon (URL)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for exp_id in sorted(all_experiments()):
            print(exp_id)
        return 0
    return run_and_report(
        args.output,
        args.ids or None,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        server=args.server,
        max_cache_mb=args.max_cache_mb,
    )


if __name__ == "__main__":
    sys.exit(main())
