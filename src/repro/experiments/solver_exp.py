"""E-SOLVE: the solver substrate grounds the model's constants.

Not a paper figure, but the base the paper stands on: the model
problem (Section 3) actually solved.  Verifies (a) discretization
error falls as h² for the 5-point scheme, (b) partitioned execution is
bit-identical to sequential, (c) measured halo volumes match the
model's ``2·k·n`` / ``4·k·s`` volume formulas, and (d) the convergence
check's extra computation is the ~50% of update cost the paper quotes
for small stencils.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import Workload
from repro.experiments.registry import ExperimentResult, register
from repro.partitioning.decomposition import decomposition_for
from repro.solver.convergence import InfNormCriterion, convergence_check_flops
from repro.solver.jacobi import solve_jacobi
from repro.solver.parallel import ParallelJacobi, solve_jacobi_parallel
from repro.solver.problems import poisson_manufactured
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_solver"]


@register("E-SOLVE")
def run_solver() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-SOLVE",
        title="Solver substrate: convergence order, parallel equivalence, volumes",
    )
    problem = poisson_manufactured()

    rows = []
    prev_err = None
    for n in (8, 16, 32, 64):
        sol = solve_jacobi(
            FIVE_POINT, problem, n, InfNormCriterion(1e-12), max_iterations=500_000
        )
        err = float(np.max(np.abs(sol.field.interior - problem.exact_grid(n))))
        order = float(np.log2(prev_err / err)) if prev_err else float("nan")
        rows.append((n, sol.iterations, err, order))
        prev_err = err
    result.add_table(
        "5-point discretization error (order -> 2.0)",
        ["n", "Jacobi iterations", "max error", "observed order"],
        rows,
    )

    eq_rows = []
    for procs, kind in ((4, "strip"), (6, "block"), (9, "block")):
        dec = decomposition_for(32, procs, kind)
        seq = solve_jacobi(
            FIVE_POINT, problem, 32, InfNormCriterion(1e-10), max_iterations=200_000
        )
        par = solve_jacobi_parallel(
            FIVE_POINT, problem, dec, InfNormCriterion(1e-10), max_iterations=200_000
        )
        identical = bool(
            np.array_equal(seq.field.interior, par.field.interior)
        )
        eq_rows.append((kind, procs, par.iterations, "yes" if identical else "NO"))
    result.add_table(
        "parallel vs sequential (bit-identical iterates)",
        ["decomposition", "processors", "iterations", "identical"],
        eq_rows,
    )

    vol_rows = []
    for n, procs, kind, partkind in (
        (64, 4, "strip", PartitionKind.STRIP),
        (64, 16, "block", PartitionKind.SQUARE),
    ):
        dec = decomposition_for(n, procs, kind)
        runner = ParallelJacobi(FIVE_POINT, problem, dec)
        measured = max(runner.read_volume_per_rank())
        w = Workload(n=n, stencil=FIVE_POINT)
        k = w.k(partkind)
        if partkind is PartitionKind.STRIP:
            model = 2.0 * k * n
        else:
            model = 4.0 * k * (n * n / procs) ** 0.5
        vol_rows.append((kind, procs, measured, model, measured / model))
    result.add_table(
        "measured halo read volume vs model (interior partitions)",
        ["decomposition", "processors", "measured max words", "model words", "ratio"],
        vol_rows,
    )

    check_rows = []
    for stencil in (FIVE_POINT, NINE_POINT_BOX):
        area = 1024.0
        update = stencil.flops_per_point * area
        check = convergence_check_flops(Workload(n=64, stencil=stencil), area)
        check_rows.append((stencil.name, update, check, check / update))
    result.add_table(
        "convergence-check cost vs update cost (paper: ~50% for small stencils)",
        ["stencil", "update flops", "check flops", "ratio"],
        check_rows,
    )
    return result
