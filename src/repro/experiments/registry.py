"""Experiment infrastructure: results, registration, rendering.

Every paper artifact (figure, table, in-text claim) is an *experiment*
keyed by the id used in DESIGN.md's per-experiment index (``E-FIG7``,
``E-TAB1``, …).  An experiment is a function returning an
:class:`ExperimentResult`: named tables of rows plus free-form notes.
The same result object drives the textual report, the CSV artifacts,
and the pytest benches, so there is exactly one source of truth per
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.report.csvio import csv_filename, write_csv
from repro.report.tables import format_table

__all__ = ["ExperimentTable", "ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass(frozen=True)
class ExperimentTable:
    """One named table of an experiment's output."""

    name: str
    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]

    def column(self, header: str) -> list[object]:
        """Extract one column by header name (bench assertions use this)."""
        try:
            idx = self.headers.index(header)
        except ValueError:
            raise ExperimentError(
                f"table {self.name!r} has no column {header!r}; "
                f"columns: {list(self.headers)}"
            ) from None
        return [row[idx] for row in self.rows]


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    title: str
    tables: list[ExperimentTable] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_table(
        self,
        name: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
    ) -> ExperimentTable:
        table = ExperimentTable(
            name=name,
            headers=tuple(headers),
            rows=tuple(tuple(r) for r in rows),
        )
        self.tables.append(table)
        return table

    def table(self, name: str) -> ExperimentTable:
        for t in self.tables:
            if t.name == name:
                return t
        raise ExperimentError(
            f"{self.experiment_id} has no table {name!r}; "
            f"tables: {[t.name for t in self.tables]}"
        )

    def render(self) -> str:
        """Full textual report (what the benches print)."""
        parts = [f"[{self.experiment_id}] {self.title}"]
        for table in self.tables:
            parts.append("")
            parts.append(format_table(table.headers, table.rows, title=table.name))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def write_csvs(self, directory: Path | str) -> list[Path]:
        """One CSV per table, named ``<id>_<table>.csv`` (ASCII slugs).

        Table names are slugified (:func:`repro.report.csvio.slugify`)
        so artifacts carry no em-dashes, parentheses, or colons;
        :func:`repro.report.csvio.locate_csv` still resolves artifacts
        written under the old nearly-raw scheme.
        """
        out = []
        for table in self.tables:
            path = Path(directory) / csv_filename(self.experiment_id, table.name)
            out.append(write_csv(path, table.headers, table.rows))
        return out


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator: register an experiment runner under its DESIGN.md id."""

    def deco(fn: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = fn
        fn.experiment_id = experiment_id  # type: ignore[attr-defined]
        return fn

    return deco


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiments() -> dict[str, Callable[..., ExperimentResult]]:
    return dict(_REGISTRY)
