"""E-FIG8: optimal speedup and processors used versus problem size.

Figure 8 plots, for the synchronous bus with unlimited processors,
four curves against ``log2(n²)``: processors used (squares, strips) and
the speedup achieved (squares, strips), for the 5-point and the 9-point
stencil.  The expected shape: processor counts and speedups grow
polynomially but slowly — speedup exponents 1/3 (squares) and 1/4
(strips) — "these unremarkable speedups support the common wisdom that
bus architectures do not scale up."
"""

from __future__ import annotations

import math

from repro.batch import optimal_speedup_curve
from repro.core.scaling import fit_scaling_exponent
from repro.experiments.registry import ExperimentResult, register
from repro.machines.catalog import PAPER_BUS
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_figure8"]


@register("E-FIG8")
def run_figure8(
    log2_n2_range: tuple[int, int] = (12, 20),
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-FIG8",
        title="Bus optimal speedup and processors vs problem size (Figure 8)",
    )
    lo, hi = log2_n2_range
    grid_sides = [int(round(2 ** (e / 2.0))) for e in range(lo, hi + 1)]

    for stencil in (FIVE_POINT, NINE_POINT_BOX):
        # One batched call per partition shape sweeps the whole size axis.
        sq = optimal_speedup_curve(
            PAPER_BUS, stencil, PartitionKind.SQUARE, grid_sides
        )
        st = optimal_speedup_curve(PAPER_BUS, stencil, PartitionKind.STRIP, grid_sides)
        series: dict[str, list[float]] = {
            "procs sq": [v.item() for v in sq.processors],
            "procs st": [v.item() for v in st.processors],
            "speedup sq": [v.item() for v in sq.speedup],
            "speedup st": [v.item() for v in st.speedup],
        }
        rows = [
            (
                round(math.log2(n * n), 2),
                n,
                series["procs sq"][i],
                series["speedup sq"][i],
                series["procs st"][i],
                series["speedup st"][i],
            )
            for i, n in enumerate(grid_sides)
        ]
        result.add_table(
            f"curves — {stencil.name}",
            [
                "log2(n^2)",
                "n",
                "processors (squares)",
                "speedup (squares)",
                "processors (strips)",
                "speedup (strips)",
            ],
            rows,
        )
        n2 = [float(n) * n for n in grid_sides]
        fit_sq = fit_scaling_exponent(n2, series["speedup sq"])
        fit_st = fit_scaling_exponent(n2, series["speedup st"])
        result.add_table(
            f"fitted speedup exponents — {stencil.name}",
            ["partition", "fitted exponent", "paper exponent"],
            [
                ("squares", fit_sq.exponent, 1.0 / 3.0),
                ("strips", fit_st.exponent, 1.0 / 4.0),
            ],
        )
        # ASCII rendition of the figure panel for the textual report.
        from repro.report.ascii_plot import multi_line_plot

        xs = [math.log2(n * n) for n in grid_sides]
        result.notes.append(
            f"Figure 8 ({stencil.name}):\n"
            + multi_line_plot(
                xs,
                {
                    "speedup (squares)": series["speedup sq"],
                    "speedup (strips)": series["speedup st"],
                    "processors (squares)": series["procs sq"],
                    "processors (strips)": series["procs st"],
                },
                width=56,
                height=14,
                title="speedup / processors vs log2(n^2)",
            )
        )
    result.notes.append(
        "Squares dominate strips at every size; both exponents match the "
        "paper's (n²)^(1/3) and (n²)^(1/4) laws."
    )
    return result
