"""Experiment harness regenerating every figure and table of the paper.

Importing this package registers all experiments; use
:func:`repro.experiments.get_experiment` or the module runner
(``python -m repro.experiments.runner``).
"""

import repro.experiments.analysis_exp  # noqa: F401
import repro.experiments.extensions  # noqa: F401
import repro.experiments.figure6  # noqa: F401  (registration side effect)
import repro.experiments.figure7  # noqa: F401
import repro.experiments.figure8  # noqa: F401
import repro.experiments.intext  # noqa: F401
import repro.experiments.ktable  # noqa: F401
import repro.experiments.scaled  # noqa: F401
import repro.experiments.simulation  # noqa: F401
import repro.experiments.solver_exp  # noqa: F401
import repro.experiments.table1  # noqa: F401
from repro.experiments.registry import (
    ExperimentResult,
    ExperimentTable,
    all_experiments,
    get_experiment,
)
from repro.experiments.runner import run_all

__all__ = [
    "ExperimentResult",
    "ExperimentTable",
    "all_experiments",
    "get_experiment",
    "run_all",
]
