"""E-TAB1: the paper's Table I — optimal speedups by architecture.

Table I summarizes the optimal speedup (square partitions, one point
per processor on the scalable machines) for hypercube, synchronous bus,
asynchronous bus, and switching network.  This experiment evaluates the
closed forms over a grid-size sweep and verifies the asymptotic
exponents numerically:

=====================  ==========================
architecture           optimal speedup growth
=====================  ==========================
hypercube / mesh       Θ(n²)
switching network      Θ(n² / log n)
asynchronous bus       Θ((n²)^(1/3)), ×1.5 sync
synchronous bus        Θ((n²)^(1/3))
=====================  ==========================
"""

from __future__ import annotations

import math

from repro.batch import optimal_speedup_curve, table1_speedup_curve
from repro.core.scaling import fit_scaling_exponent
from repro.experiments.registry import ExperimentResult, register
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_table1", "TABLE1_MACHINES"]

#: The Table-I machine set with paper-era constants (catalog magnitudes).
TABLE1_MACHINES = (
    ("hypercube", Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)),
    ("mesh", MeshGrid(alpha=1e-6, beta=1e-5, packet_words=16)),
    ("switching network", BanyanNetwork(w=2e-7)),
    ("synchronous bus", SynchronousBus(b=6.1e-6, c=0.0)),
    ("asynchronous bus", AsynchronousBus(b=6.1e-6, c=0.0)),
)


@register("E-TAB1")
def run_table1(
    grid_exponents: tuple[int, ...] = (6, 7, 8, 9, 10, 11, 12),
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-TAB1",
        title="Optimal speedup by architecture (Table I)",
    )
    grid_sides = [2**e for e in grid_exponents]
    # One batched call per machine evaluates the whole size sweep.
    speedups: dict[str, list[float]] = {
        name: [v.item() for v in table1_speedup_curve(machine, FIVE_POINT, grid_sides)]
        for name, machine in TABLE1_MACHINES
    }
    rows = [
        tuple([n, n * n] + [speedups[name][i] for name, _ in TABLE1_MACHINES])
        for i, n in enumerate(grid_sides)
    ]
    result.add_table(
        "optimal speedup vs grid size (square partitions)",
        ["n", "n^2"] + [name for name, _ in TABLE1_MACHINES],
        rows,
    )

    expected = {
        "hypercube": 1.0,
        "mesh": 1.0,
        "switching network": 1.0,  # minus a log factor; fit sits below 1
        "synchronous bus": 1.0 / 3.0,
        "asynchronous bus": 1.0 / 3.0,
    }
    n2 = [float(n) * n for n in grid_sides]
    fit_rows = []
    for name, _ in TABLE1_MACHINES:
        fit = fit_scaling_exponent(n2, speedups[name])
        fit_rows.append((name, fit.exponent, expected[name]))
    result.add_table(
        "fitted growth exponents",
        ["architecture", "fitted exponent of n^2", "paper exponent"],
        fit_rows,
    )

    # The paper's headline ratios at a large problem size.
    n_big = [grid_sides[-1]]
    sync = dict(TABLE1_MACHINES)["synchronous bus"]
    asyn = dict(TABLE1_MACHINES)["asynchronous bus"]
    ratio_sq = (
        optimal_speedup_curve(asyn, FIVE_POINT, PartitionKind.SQUARE, n_big).speedup[0]
        / optimal_speedup_curve(sync, FIVE_POINT, PartitionKind.SQUARE, n_big).speedup[0]
    ).item()
    ratio_st = (
        optimal_speedup_curve(asyn, FIVE_POINT, PartitionKind.STRIP, n_big).speedup[0]
        / optimal_speedup_curve(sync, FIVE_POINT, PartitionKind.STRIP, n_big).speedup[0]
    ).item()
    result.add_table(
        "async/sync optimal-speedup ratios",
        ["partition", "computed", "paper"],
        [
            ("squares", ratio_sq, 1.5),
            ("strips", ratio_st, math.sqrt(2.0)),
        ],
    )
    result.notes.append(
        "Hypercube/mesh are linear in n²; the banyan trails by exactly the "
        "log factor; buses grow as the cube root — 'bus networks are "
        "unsuited for large numerical problems of the type we consider'."
    )
    return result
