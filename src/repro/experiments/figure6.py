"""E-FIG6: working-rectangle approximation errors (Figure 6a/6b).

For a 256×256 grid and every even target area in [1024, 16384]
(decompositions onto 4–64 processors), pick the closest working
rectangle and record the relative error in area (6a) and perimeter
(6b).  The paper reports errors "usually less than 3% for area and
less than 6% for perimeter", with similar results at 128, 512 and 1024
— all four grids are swept here.
"""

from __future__ import annotations

import numpy as np

from repro.batch import rectangle_error_curves
from repro.experiments.registry import ExperimentResult, register

__all__ = ["run_figure6"]


def _grid_summary(n: int, lo: int, hi: int, step: int = 2):
    # The whole area sweep resolves in one batched searchsorted pass.
    curve = rectangle_error_curves(n, range(lo, hi + 1, step))
    return curve, curve.area_errors, curve.perimeter_errors


@register("E-FIG6")
def run_figure6(full_series: bool = False) -> ExperimentResult:
    """``full_series=True`` additionally emits every (A, error) sample of
    the 256×256 sweep (the literal bar-graph data)."""
    result = ExperimentResult(
        experiment_id="E-FIG6",
        title="Working-rectangle approximation errors (Figure 6)",
    )
    summary_rows = []
    for n in (128, 256, 512, 1024):
        # The paper sweeps 4..64 processors on the 256 grid; scale the
        # area window with n^2 to keep the same processor range.
        lo = n * n // 64
        hi = n * n // 4
        errors, area_err, perim_err = _grid_summary(n, lo, hi, step=2)
        summary_rows.append(
            (
                n,
                len(errors),
                float(np.mean(area_err)),
                float(np.max(area_err)),
                float(np.mean(area_err <= 0.03)),
                float(np.mean(perim_err)),
                float(np.max(perim_err)),
                float(np.mean(perim_err <= 0.06)),
            )
        )
    result.add_table(
        "summary",
        [
            "grid n",
            "areas",
            "mean area err",
            "max area err",
            "frac area<=3%",
            "mean perim err",
            "max perim err",
            "frac perim<=6%",
        ],
        summary_rows,
    )
    if full_series:
        curve, _, _ = _grid_summary(256, 1024, 16384, step=2)
        series_rows = [
            (
                int(curve.target_areas[i]),
                int(curve.heights[i]),
                int(curve.widths[i]),
                curve.area_errors[i].item(),
                curve.perimeter_errors[i].item(),
            )
            for i in range(len(curve))
        ]
        result.add_table(
            "series n=256",
            ["target area", "height", "width", "area err", "perimeter err"],
            series_rows,
        )
    result.notes.append(
        "Paper: errors 'usually less than 3% for area and less than 6% for "
        "perimeter' on the 256x256 grid, similar at 128/512/1024."
    )
    return result
