"""E-FIG7: minimal problem size gainfully using all N processors.

Figure 7 plots ``log2(n²_min)`` versus processor count for three
bus configurations — (a) synchronous strips, (b) asynchronous strips,
(c) synchronous squares — for 5-point and 9-point stencils.  The paper
states the anchor: "a 256×256 grid with square partitions and a
5-point stencil should be solved on 1 to 14 processors; the same grid
with a 9-point stencil should use 1 to 22 processors", which pins the
bus constants of :data:`repro.machines.catalog.PAPER_BUS`.

Each closed-form point is cross-checked against the generic optimizer
(binary search on ``n`` for the smallest grid whose optimal allocation
spreads over all N).
"""

from __future__ import annotations

import math

from repro.batch import minimal_grid_side_curve
from repro.core.minimal_size import (
    max_useful_processors,
    minimal_grid_size_numeric,
)
from repro.core.parameters import Workload
from repro.experiments.registry import ExperimentResult, register
from repro.machines.catalog import PAPER_BUS, PAPER_BUS_ASYNC
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_figure7"]

_CONFIGS = (
    ("(a) sync strip", PAPER_BUS, PartitionKind.STRIP),
    ("(b) async strip", PAPER_BUS_ASYNC, PartitionKind.STRIP),
    ("(c) sync square", PAPER_BUS, PartitionKind.SQUARE),
    ("(d) async square", PAPER_BUS_ASYNC, PartitionKind.SQUARE),
)


@register("E-FIG7")
def run_figure7(
    processor_counts: tuple[int, ...] = tuple(range(2, 25, 2)),
    verify_numeric: bool = True,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-FIG7",
        title="Minimal problem size using all N processors (Figure 7)",
    )
    for stencil in (FIVE_POINT, NINE_POINT_BOX):
        template = Workload(n=2, stencil=stencil)
        # One batched call per configuration sweeps the whole N axis.
        n_mins = {
            label: minimal_grid_side_curve(
                machine,
                template.k(kind),
                stencil.flops_per_point,
                template.t_flop,
                processor_counts,
                kind,
            )
            for label, machine, kind in _CONFIGS
        }
        rows = []
        for i, n_procs in enumerate(processor_counts):
            row: list[object] = [n_procs]
            for label, machine, kind in _CONFIGS:
                n_min = n_mins[label][i].item()
                row.append(math.log2(max(n_min, 1.0) ** 2))
                if verify_numeric and n_procs <= 8:
                    numeric = minimal_grid_size_numeric(
                        machine, template, kind, n_procs
                    )
                    # Closed form and optimizer must agree to one grid line.
                    if abs(numeric - n_min) > max(2.0, 0.02 * n_min):
                        result.notes.append(
                            f"WARNING {label} N={n_procs}: closed form "
                            f"{n_min:.1f} vs numeric {numeric}"
                        )
            rows.append(tuple(row))
        result.add_table(
            f"log2(n^2_min) — {stencil.name}",
            ["N"] + [label for label, _, _ in _CONFIGS],
            rows,
        )

    anchor_rows = []
    for stencil in (FIVE_POINT, NINE_POINT_BOX):
        w = Workload(n=256, stencil=stencil)
        anchor_rows.append(
            (
                stencil.name,
                max_useful_processors(PAPER_BUS, w, PartitionKind.SQUARE),
                14 if stencil is FIVE_POINT else 22,
            )
        )
    result.add_table(
        "Section 6.1 anchor: max useful processors on 256x256 squares",
        ["stencil", "computed", "paper"],
        anchor_rows,
    )
    result.notes.append(
        "Strips need n_min ∝ N²; squares only ∝ N^(3/2) — squares tolerate "
        "more processors at the same problem size (inequalities (4) and (6))."
    )
    result.notes.append(
        "Async strips halve the strip threshold (factor 2 vs 4); async and "
        "sync squares coincide because they share the optimal side."
    )
    return result
