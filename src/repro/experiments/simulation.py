"""E-SIMVAL: discrete-event simulation versus the analytic model.

The paper's closing promise ("Future effort will be devoted to
verifying our analysis empirically") executed in simulation: for each
architecture, sweep processor counts on a fixed grid, simulate the
iteration event-by-event on the *exact* decomposition, and compare with
the closed-form cycle time.

Expected outcome, recorded in EXPERIMENTS.md: nearest-neighbour and
banyan machines agree to ~1% (their models are exact up to remainder
effects); buses run 10–30% *faster* in simulation because the analytic
volume charges every partition four communicating sides while partitions
on the domain boundary communicate less.  Optimal-processor rankings
agree everywhere, which is what the paper's conclusions rest on.
"""

from __future__ import annotations

from repro.experiments.registry import ExperimentResult, register
from repro.machines.banyan import BanyanNetwork
from repro.machines.bus import AsynchronousBus, SynchronousBus
from repro.machines.hypercube import Hypercube
from repro.sim.validate import (
    monte_carlo_bands,
    validate_machine,
    validation_summary,
)
from repro.stencils.library import FIVE_POINT, NINE_POINT_BOX
from repro.stencils.perimeter import PartitionKind

__all__ = ["run_simulation_validation"]

_SWEEPS = (
    ("sync bus / squares", SynchronousBus(b=6.1e-6, c=0.0), PartitionKind.SQUARE),
    ("sync bus / strips", SynchronousBus(b=6.1e-6, c=0.0), PartitionKind.STRIP),
    ("async bus / squares", AsynchronousBus(b=6.1e-6, c=0.0), PartitionKind.SQUARE),
    ("async bus / strips", AsynchronousBus(b=6.1e-6, c=0.0), PartitionKind.STRIP),
    (
        "hypercube / squares",
        Hypercube(alpha=1e-6, beta=1e-5, packet_words=16),
        PartitionKind.SQUARE,
    ),
    (
        "hypercube / strips",
        Hypercube(alpha=1e-6, beta=1e-5, packet_words=16),
        PartitionKind.STRIP,
    ),
    ("banyan / squares", BanyanNetwork(w=2e-7), PartitionKind.SQUARE),
)


@register("E-SIMVAL")
def run_simulation_validation(
    n: int = 48,
    processor_counts: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16),
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-SIMVAL",
        title="Discrete-event simulation vs analytic model",
    )
    rows = []
    detail_rows = []
    for label, machine, kind in _SWEEPS:
        for stencil in (FIVE_POINT, NINE_POINT_BOX):
            sweep = validate_machine(
                machine, stencil, n, list(processor_counts), kind
            )
            s = validation_summary(sweep)
            rows.append(
                (
                    label,
                    stencil.name,
                    s["mean_relative_error"],
                    s["max_abs_relative_error"],
                    s["best_p_analytic"],
                    s["best_p_simulated"],
                    "yes" if s["ranking_agrees"] else "no",
                )
            )
            if stencil is FIVE_POINT:
                for p in sweep.points:
                    detail_rows.append(
                        (label, p.processors, p.analytic, p.simulated, p.relative_error)
                    )
    result.add_table(
        "validation summary",
        [
            "configuration",
            "stencil",
            "mean rel err",
            "max |rel err|",
            "best P (model)",
            "best P (sim)",
            "ranking agrees",
        ],
        rows,
    )
    result.add_table(
        "detail (5-point)",
        ["configuration", "P", "analytic cycle", "simulated cycle", "rel err"],
        detail_rows,
    )
    # Synchronous-bus overlap ablation: barrier vs pipelined scheduling.
    ablation = []
    for mode in ("barrier", "pipelined"):
        sweep = validate_machine(
            SynchronousBus(b=6.1e-6, c=0.0),
            FIVE_POINT,
            n,
            list(processor_counts),
            PartitionKind.SQUARE,
            mode=mode,
        )
        for p in sweep.points:
            ablation.append((mode, p.processors, p.simulated))
    result.add_table(
        "bus scheduling ablation (simulated cycle time)",
        ["mode", "P", "cycle time"],
        ablation,
    )
    # Monte Carlo bands: jittered replica ensembles at every processor
    # count, one lockstep batched-simulator call per configuration — the
    # scenario the scalar event loop could not reach at experiment cost.
    band_rows = []
    for label, machine, kind in (_SWEEPS[0], _SWEEPS[4], _SWEEPS[6]):
        bands = monte_carlo_bands(
            machine, FIVE_POINT, n, list(processor_counts), kind,
            replicas=100, jitter=0.02,
        )
        for i, p in enumerate(bands["processors"].tolist()):
            band_rows.append(
                (
                    label,
                    p,
                    bands["mean"][i].item(),
                    bands["std"][i].item(),
                    bands["q05"][i].item(),
                    bands["q95"][i].item(),
                )
            )
    result.add_table(
        "monte carlo bands (5-point, 100 replicas, jitter 0.02)",
        ["configuration", "P", "mean cycle", "std", "q05", "q95"],
        band_rows,
    )
    result.notes.append(
        "Buses simulate faster than the model predicts because boundary "
        "partitions communicate fewer than 4 sides; the model is a safe "
        "upper envelope and ranks processor counts identically."
    )
    return result
