"""E-SCAL and E-EXTREME: scaled speedup and extremal allocation.

* **E-SCAL** (Sections 4 and 7): grow the machine with the problem,
  keeping ``F`` grid points per processor.  Hypercube cycle time is a
  constant — speedup exactly linear in n²; the banyan pays a growing
  ``log`` term — speedup Θ(n²/log n).
* **E-EXTREME** (Sections 4, 5, 7): on hypercube/mesh/banyan machines
  ``t_cycle`` is monotone in the processor count, so the optimum is
  extremal — all processors, or one.  The experiment sweeps
  intermediate counts and confirms no interior point ever wins.
"""

from __future__ import annotations

import numpy as np

from repro.batch import (
    SweepSpec,
    cached_run_sweep,
    scaled_speedup_banyan_curve,
    scaled_speedup_hypercube_curve,
)
from repro.core.scaling import fit_scaling_exponent
from repro.experiments.registry import ExperimentResult, register
from repro.machines.banyan import BanyanNetwork
from repro.machines.hypercube import Hypercube
from repro.machines.mesh import MeshGrid
from repro.stencils.library import FIVE_POINT
from repro.stencils.perimeter import PartitionKind

# The scalar oracles (repro.core.scaling / repro.core.cycle_time) remain
# the reference; tests/batch pins these curves against them bit for bit.

__all__ = ["run_scaled", "run_extremal"]


@register("E-SCAL")
def run_scaled(points_per_processor: float = 64.0) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-SCAL",
        title="Scaled speedup with fixed points per processor (Sections 4, 7)",
    )
    cube = Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)
    net = BanyanNetwork(w=2e-7)
    t_flop = 1e-6
    grid_sides = [2**e for e in range(6, 14)]
    # One batched call per architecture sweeps the whole size axis.
    cube_s = [
        v.item()
        for v in scaled_speedup_hypercube_curve(
            cube, FIVE_POINT, t_flop, grid_sides, points_per_processor
        )
    ]
    net_s = [
        v.item()
        for v in scaled_speedup_banyan_curve(
            net, FIVE_POINT, t_flop, grid_sides, points_per_processor
        )
    ]
    rows = [
        (n, n * n, n * n / points_per_processor, cube_s[i], net_s[i], cube_s[i] / net_s[i])
        for i, n in enumerate(grid_sides)
    ]
    result.add_table(
        f"scaled speedup, F = {points_per_processor:g} points/processor",
        ["n", "n^2", "processors", "hypercube", "banyan", "cube/banyan"],
        rows,
    )
    n2 = [float(n) * n for n in grid_sides]
    fits = [
        ("hypercube", fit_scaling_exponent(n2, cube_s).exponent, 1.0),
        ("banyan", fit_scaling_exponent(n2, net_s).exponent, 1.0),
    ]
    result.add_table(
        "fitted exponents (banyan approaches 1 from below: the log factor)",
        ["architecture", "fitted", "asymptotic"],
        fits,
    )
    # Linearity check: hypercube speedup per n² must be constant.
    per_n2 = np.array(cube_s) / np.array(n2)
    result.add_table(
        "hypercube speedup / n² (constant = exactly linear)",
        ["min", "max", "spread"],
        [
            (
                float(per_n2.min()),
                float(per_n2.max()),
                float((per_n2.max() - per_n2.min()) / per_n2.mean()),
            )
        ],
    )
    result.notes.append(
        "The cube/banyan gap is exactly the network's log2(N) read factor; "
        "'for grid sizes used in practice [it] will not depend on the log "
        "factor, but on the relative speeds of the communication networks'."
    )
    return result


@register("E-EXTREME")
def run_extremal() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E-EXTREME",
        title="Extremal allocation on hypercube/mesh/banyan (Sections 4, 5, 7)",
    )
    machines = [
        ("hypercube", Hypercube(alpha=1e-6, beta=1e-5, packet_words=16)),
        ("mesh", MeshGrid(alpha=1e-6, beta=1e-5, packet_words=16)),
        ("banyan", BanyanNetwork(w=2e-7)),
        ("hypercube (slow net)", Hypercube(alpha=5e-4, beta=5e-3, packet_words=16)),
    ]
    processors = np.arange(1, 65, dtype=float)
    # One sweep over (n=64, P in [1, 64]) covers all four machines; the
    # per-machine argmin over the processor axis is then a reduction.
    spec = SweepSpec(
        grid_sides=(64,),
        processors=tuple(processors),
        machines=tuple(machines),
        stencil=FIVE_POINT,
        kind=PartitionKind.SQUARE,
    )
    surfaces = cached_run_sweep(spec)
    rows = []
    for name, _machine in machines:
        times = surfaces.cycle_time(name)[0]
        best_idx = int(np.argmin(times))
        best_p = int(processors[best_idx])
        extremal = best_p in (1, int(processors[-1]))
        rows.append(
            (
                name,
                best_p,
                "yes" if extremal else "NO — interior optimum!",
                float(times[0] / times[best_idx]),
            )
        )
    result.add_table(
        "best processor count over P in [1, 64], n=64 squares",
        ["machine", "best P", "extremal?", "speedup at best"],
        rows,
    )
    result.notes.append(
        "Nearest-neighbour communication keeps t_cycle monotone in P, so "
        "spread maximally or not at all; the slow-network hypercube shows "
        "the 'one processor' extreme, not an interior compromise."
    )
    return result
