"""Pluggable executors: how a planned sweep graph actually computes.

An :class:`Executor` evaluates one fused leaf — a ``(family, args)``
pair over a 1-D axis — and returns named arrays in the cache's wire
shape (the same dicts :class:`~repro.batch.SweepCache` stores).  The
planner is executor-agnostic: fusion, dedup, and caching happen above
this line, so retargeting the whole analysis layer is one registry
entry.

Two executors ship:

* ``numpy`` (default) — the vectorized :mod:`repro.batch` kernels,
  optionally sharding large allocation axes across processes.
* ``oracle`` — the scalar :mod:`repro.core` routines, element by
  element.  Slow by construction; it exists to *prove* retargetability
  and to pin the bit-equality contract: every array the NumPy executor
  produces must equal the oracle's bit for bit, which the graph test
  suite asserts across all presets, partition kinds, and stencils.

A CuPy / array-API executor is a third ``register_executor`` call, not
a new code path through analysis, service, and CLI.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "Executor",
    "NumpyExecutor",
    "OracleExecutor",
    "register_executor",
    "get_executor",
    "executor_names",
]


class Executor:
    """Evaluates fused graph leaves; subclass per backend."""

    #: Registry name; also what planner counters report.
    name: str = "abstract"

    def evaluate(
        self, op: str, args: Mapping[str, Any], axis: np.ndarray
    ) -> dict[str, np.ndarray]:
        """One vectorized evaluation of ``op`` over ``axis``.

        Returns the family's named arrays — each 1-D parallel to
        ``axis``, except sweep surfaces, which are 2-D with ``axis``
        as their first dimension.
        """
        raise NotImplementedError


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], Executor]] = {}


def register_executor(name: str, factory: Callable[[], Executor]) -> None:
    """Expose a backend to the planner (and the CLI's ``--executor``)."""
    _REGISTRY[name] = factory


def get_executor(spec: "str | Executor") -> Executor:
    """Resolve a registry name (or pass an instance through)."""
    if isinstance(spec, Executor):
        return spec
    try:
        factory = _REGISTRY[spec]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidParameterError(
            f"unknown executor {spec!r} (known: {known})"
        ) from None
    return factory()


def executor_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# --------------------------------------------------------------------------
# NumPy executor: the vectorized batch kernels
# --------------------------------------------------------------------------


class NumpyExecutor(Executor):
    """Default backend: :mod:`repro.batch`'s vectorized kernels.

    ``jobs > 1`` shards allocation-curve axes of at least
    ``shard_threshold`` points across worker processes (the service
    daemon's configuration); every other family is a single in-process
    broadcast.
    """

    name = "numpy"

    def __init__(self, jobs: int = 1, shard_threshold: int = 256) -> None:
        self.jobs = max(1, int(jobs))
        self.shard_threshold = int(shard_threshold)

    def evaluate(
        self, op: str, args: Mapping[str, Any], axis: np.ndarray
    ) -> dict[str, np.ndarray]:
        from repro.batch import analysis
        from repro.batch.curves import minimal_grid_side_curve
        from repro.batch.engine import run_sweep

        if op == "allocation_curve":
            if self.jobs > 1 and axis.size >= self.shard_threshold:
                from repro.batch.shard import sharded_allocation_arrays

                return sharded_allocation_arrays(
                    args["machine"],
                    args["stencil"],
                    args["kind"],
                    axis,
                    args["t_flop"],
                    args["max_processors"],
                    args["integer"],
                    jobs=self.jobs,
                )
            return analysis._compute_allocation_curve(
                args["machine"],
                args["stencil"],
                args["kind"],
                axis,
                args["t_flop"],
                args["max_processors"],
                args["integer"],
            ).to_arrays()
        if op == "max_useful":
            return {
                "max_useful": analysis._compute_max_useful(
                    args["machine"], args["stencil"], args["kind"], axis,
                    args["t_flop"],
                )
            }
        if op == "n2_min":
            return {
                "n2_min": analysis._compute_minimal_problem_size(
                    args["machine"], args["stencil"], args["kind"], axis,
                    args["t_flop"],
                )
            }
        if op == "grid_for_efficiency":
            return {
                "sides": analysis._compute_grid_for_efficiency(
                    args["machine"],
                    args["stencil"],
                    args["kind"],
                    axis,
                    args["target_efficiency"],
                    args["t_flop"],
                    args["n_max"],
                )
            }
        if op == "sweep":
            spec = dataclasses.replace(
                args["spec"], grid_sides=tuple(int(v) for v in axis.tolist())
            )
            return dict(run_sweep(spec).cycle_times)
        if op == "plan_grid":
            # The CLI/service capacity-plan constants: one perimeter,
            # the 5-point flop count, the paper's 1 µs flop time.
            return {
                kind.value: minimal_grid_side_curve(
                    args["machine"], 1, 5.0, 1e-6, axis, kind
                )
                for kind in _plan_kinds()
            }
        if op == "sim_sweep":
            from repro.batch.sim import ReplicaBatchSpec, simulate_replicas

            spec = ReplicaBatchSpec.build(
                args["machine"],
                args["stencil"],
                args["kind"],
                args["n"],
                args["n_processors"],
                [int(s) for s in axis.tolist()],
                t_flop=args["t_flop"],
                mode=args["mode"],
                jitter=args["jitter"],
            )
            return simulate_replicas(spec).to_arrays()
        if op == "sim_validate":
            from repro.sim.validate import validation_arrays

            return validation_arrays(
                args["machine"],
                args["stencil"],
                args["n"],
                [int(p) for p in axis.tolist()],
                args["kind"],
                args["t_flop"],
                args["mode"],
            )
        raise InvalidParameterError(f"numpy executor: unknown graph op {op!r}")


# --------------------------------------------------------------------------
# Oracle executor: scalar repro.core, element by element
# --------------------------------------------------------------------------


class OracleExecutor(Executor):
    """Reference backend: the paper's scalar routines, one element at a time.

    Every output is built from :mod:`repro.core` calls only, so a graph
    executed here is the ground truth the vectorized layer is pinned
    against.
    """

    name = "oracle"

    def evaluate(
        self, op: str, args: Mapping[str, Any], axis: np.ndarray
    ) -> dict[str, np.ndarray]:
        from repro.core.allocation import optimize_allocation
        from repro.core.isoefficiency import grid_for_efficiency
        from repro.core.minimal_size import (
            max_useful_processors,
            minimal_grid_side,
            minimal_problem_size,
        )
        from repro.core.parameters import Workload

        if op == "allocation_curve":
            allocations = [
                optimize_allocation(
                    args["machine"],
                    Workload(
                        n=int(n), stencil=args["stencil"], t_flop=args["t_flop"]
                    ),
                    args["kind"],
                    max_processors=args["max_processors"],
                    integer=args["integer"],
                )
                for n in axis
            ]
            return {
                "grid_sides": axis.astype(int),
                "processors": np.array([a.processors for a in allocations]),
                "area": np.array([a.area for a in allocations]),
                "cycle_time": np.array([a.cycle_time for a in allocations]),
                "speedup": np.array([a.speedup for a in allocations]),
                "efficiency": np.array([a.efficiency for a in allocations]),
                "regime": np.asarray([a.regime for a in allocations]),
            }
        if op == "max_useful":
            return {
                "max_useful": np.array(
                    [
                        max_useful_processors(
                            args["machine"],
                            Workload(
                                n=int(n),
                                stencil=args["stencil"],
                                t_flop=args["t_flop"],
                            ),
                            args["kind"],
                        )
                        for n in axis
                    ]
                )
            }
        if op == "n2_min":
            template = Workload(n=2, stencil=args["stencil"], t_flop=args["t_flop"])
            return {
                "n2_min": np.array(
                    [
                        minimal_problem_size(
                            args["machine"], template, args["kind"], int(p)
                        )
                        for p in axis
                    ]
                )
            }
        if op == "grid_for_efficiency":
            template = Workload(n=2, stencil=args["stencil"], t_flop=args["t_flop"])
            return {
                "sides": np.array(
                    [
                        grid_for_efficiency(
                            args["machine"],
                            template,
                            args["kind"],
                            int(p),
                            args["target_efficiency"],
                            n_max=args["n_max"],
                        )
                        for p in axis
                    ],
                    dtype=int,
                )
            }
        if op == "sweep":
            spec = dataclasses.replace(
                args["spec"], grid_sides=tuple(int(v) for v in axis.tolist())
            )
            surfaces: dict[str, np.ndarray] = {}
            for name, machine in spec.machines:
                surface = np.empty(
                    (len(spec.grid_sides), len(spec.processors)), dtype=float
                )
                for i, n in enumerate(spec.grid_sides):
                    w = Workload(n=int(n), stencil=spec.stencil, t_flop=spec.t_flop)
                    for j, p in enumerate(spec.processors):
                        if p == 1:
                            surface[i, j] = w.serial_time()
                        else:
                            surface[i, j] = float(
                                machine.cycle_time(w, spec.kind, w.grid_points / p)
                            )
                surfaces[name] = surface
            return surfaces
        if op == "plan_grid":
            return {
                kind.value: np.array(
                    [
                        minimal_grid_side(args["machine"], 1, 5.0, 1e-6, float(p), kind)
                        for p in axis
                    ]
                )
                for kind in _plan_kinds()
            }
        if op == "sim_sweep":
            from repro.sim.replica import simulate_replica

            replicas = [
                simulate_replica(
                    args["machine"],
                    args["n"],
                    args["n_processors"],
                    args["stencil"],
                    int(seed),
                    kind=args["kind"],
                    t_flop=args["t_flop"],
                    mode=args["mode"],
                    jitter=args["jitter"],
                )
                for seed in axis
            ]
            size = len(replicas)
            return {
                "grid_sides": np.full(size, int(args["n"]), dtype=np.int64),
                "processors": np.full(
                    size, int(args["n_processors"]), dtype=np.int64
                ),
                "seeds": axis.astype(np.uint64),
                "cycle_times": np.array(
                    [r.cycle_time for r in replicas], dtype=np.float64
                ),
            }
        if op == "sim_validate":
            from repro.core.parameters import Workload
            from repro.partitioning.decomposition import decomposition_for
            from repro.sim.iteration import simulate_iteration
            from repro.stencils.perimeter import PartitionKind

            workload = Workload(
                n=int(args["n"]), stencil=args["stencil"], t_flop=args["t_flop"]
            )
            dec_kind = (
                "strip" if args["kind"] is PartitionKind.STRIP else "block"
            )
            return {
                "processors": axis.astype(np.int64),
                "analytic": np.array(
                    [
                        args["machine"].cycle_time_all_processors(
                            workload, args["kind"], int(p)
                        )
                        for p in axis
                    ],
                    dtype=np.float64,
                ),
                "simulated": np.array(
                    [
                        simulate_iteration(
                            args["machine"],
                            decomposition_for(int(args["n"]), int(p), dec_kind),
                            args["stencil"],
                            args["t_flop"],
                            mode=args["mode"],
                        ).cycle_time
                        for p in axis
                    ],
                    dtype=np.float64,
                ),
            }
        raise InvalidParameterError(f"oracle executor: unknown graph op {op!r}")


def _plan_kinds() -> tuple:
    from repro.stencils.perimeter import PartitionKind

    return (PartitionKind.STRIP, PartitionKind.SQUARE)


register_executor("numpy", NumpyExecutor)
register_executor("oracle", OracleExecutor)
