"""Lazy sweep graphs: build analysis requests as DAGs, then plan them.

The graph layer is the one front door every consumer — the eager
:mod:`repro.batch.analysis` shims, the sweep service, the CLI's
``plan``/``optimize`` grid modes, the experiment runner — now routes
through: build :class:`Node` objects, hand them to :func:`plan`, and
the planner dedups shared subgraphs against the content-addressed
cache, fuses compatible siblings onto shared vectorized evaluations,
and dispatches to a registered executor (NumPy by default, the scalar
:mod:`repro.core` oracle for reference, a GPU backend as a future
registry entry).

>>> from repro.graph import nodes, evaluate
>>> from repro.machines.catalog import PAPER_BUS, FLEX32
>>> from repro.stencils.library import FIVE_POINT
>>> from repro.stencils.perimeter import PartitionKind
>>> a = nodes.allocation_curve(PAPER_BUS, FIVE_POINT, PartitionKind.SQUARE, range(64, 256))
>>> b = nodes.allocation_curve(FLEX32, FIVE_POINT, PartitionKind.SQUARE, range(64, 256))
>>> curves = evaluate([a, b])
"""

from repro.graph import nodes
from repro.graph.executors import (
    Executor,
    NumpyExecutor,
    OracleExecutor,
    executor_names,
    get_executor,
    register_executor,
)
from repro.graph.nodes import Node
from repro.graph.planner import Plan, PlannedNode, evaluate, plan

__all__ = [
    "Node",
    "nodes",
    "Plan",
    "PlannedNode",
    "plan",
    "evaluate",
    "Executor",
    "NumpyExecutor",
    "OracleExecutor",
    "register_executor",
    "get_executor",
    "executor_names",
]
