"""The sweep-graph planner: dedup, fuse, and dispatch node forests.

:func:`plan` takes any number of root :class:`~repro.graph.nodes.Node`
requests and produces an executable :class:`Plan` in three passes:

1. **dedup** — a post-order walk keyed by content fingerprint collapses
   repeated subgraphs: a sweep shared by two reductions, or the same
   allocation curve requested twice in one batch, becomes one node.
2. **cache probe** — each unique cacheable leaf gets exactly one
   :meth:`~repro.batch.SweepCache.lookup_level`, so hit/miss totals
   match the eager layer request for request (the parity the experiment
   reports depend on).
3. **fuse** — uncached leaves with equal compatibility fingerprints
   (same family, machine closed form, stencil, kind, scalars — only the
   axis differs) are grouped onto one vectorized evaluation over the
   sorted union of their axes.  Every family here is elementwise in its
   axis, so slicing members back out by ``searchsorted`` is
   bit-identical to solo evaluation — the same invariant the service's
   allocation micro-batcher has always relied on, now for every family.

:meth:`Plan.execute` runs the fusion groups on the chosen
:class:`~repro.graph.executors.Executor`, stores each member slice
under its own fingerprint (never the union — the store stays
request-granular), then folds reductions in dependency order.
Planner activity lands in :class:`~repro.batch.cache.CacheStats`
counters so ``/v1/stats`` and the experiment report can show fusion
and dedup wins next to hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.batch.cache import CacheStats, SweepCache
from repro.core.isoefficiency import IsoefficiencyFit
from repro.errors import InvalidParameterError
from repro.graph.executors import Executor, get_executor
from repro.graph.nodes import SURFACE_OPS, Node

__all__ = ["Plan", "PlannedNode", "plan", "evaluate"]


@dataclass
class PlannedNode:
    """One unique node plus the planner's decision about it."""

    node: Node
    index: int
    #: "cached" (served from the store during planning), "fused"
    #: (rides a sibling's evaluation), "compute" (runs its own
    #: evaluation, possibly carrying riders), or "reduce".
    status: str
    #: Which tier answered a "cached" node ("memory"/"disk").
    tier: str | None = None
    #: Fusion group id (compute/fused nodes only).
    group: int | None = None
    #: How many times this subgraph appeared across the request forest.
    instances: int = 1


@dataclass
class Plan:
    """An optimized, executable sweep graph."""

    roots: tuple[Node, ...]
    executor: Executor
    cache: SweepCache | None
    nodes: list[PlannedNode] = field(default_factory=list)
    #: Fusion groups: group id → member PlannedNodes (leaders first is
    #: meaningless — the evaluation covers the union axis).
    groups: dict[int, list[PlannedNode]] = field(default_factory=dict)
    #: Results known at plan time (cache hits), by node key.
    results: dict[str, Any] = field(default_factory=dict)
    stats: CacheStats | None = None
    executed: bool = False

    # ------------------------------------------------------------- counters

    @property
    def n_requests(self) -> int:
        return len(self.roots)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.nodes if p.status == "cached")

    @property
    def siblings_fused(self) -> int:
        return sum(len(g) - 1 for g in self.groups.values())

    @property
    def subgraphs_deduped(self) -> int:
        return sum(p.instances - 1 for p in self.nodes)

    @property
    def evaluations(self) -> int:
        """Vectorized executor calls this plan will make."""
        return len(self.groups)

    # -------------------------------------------------------------- explain

    def explain(self) -> str:
        """The optimized graph as deterministic text (``--explain``)."""
        lines = [
            f"sweep graph: {self.n_requests} request(s) -> "
            f"{self.n_nodes} node(s) ({self.subgraphs_deduped} deduped), "
            f"{self.evaluations} evaluation(s) ({self.siblings_fused} fused), "
            f"{self.cache_hits} cache hit(s) [{self.executor.name}]"
        ]
        for p in self.nodes:
            if p.status == "cached":
                verdict = f"cached ({p.tier})"
            elif p.status == "reduce":
                children = ", ".join(
                    str(self._planned(c.key).index) for c in p.node.inputs
                )
                verdict = f"reduce({children})"
            elif len(self.groups.get(p.group, [])) > 1:
                verdict = f"fused -> group {p.group}"
            else:
                verdict = "compute"
            dedup = f" x{p.instances}" if p.instances > 1 else ""
            lines.append(f"  [{p.index}] {p.node.detail}{dedup}  {verdict}")
        for gid, members in self.groups.items():
            if len(members) > 1:
                union = _union_axis([m.node for m in members])
                lines.append(
                    f"  group {gid}: {len(members)} requests fused over a "
                    f"union axis of {union.size} points"
                )
        return "\n".join(lines)

    # -------------------------------------------------------------- execute

    def _planned(self, key: str) -> PlannedNode:
        for p in self.nodes:
            if p.node.key == key:
                return p
        raise KeyError(key)  # pragma: no cover - planner invariant

    def execute(self) -> list[Any]:
        """Run the plan; returns one result per root, in request order.

        Leaf roots yield their named-array dicts; ratio reductions a
        plain ndarray; isoefficiency fits an
        :class:`~repro.core.isoefficiency.IsoefficiencyFit`.
        """
        runs = 0
        for members in self.groups.values():
            if len(members) == 1:
                node = members[0].node
                arrays = self.executor.evaluate(node.op, node.args, node.axis)
                runs += 1
                self.results[node.key] = self._store(node, arrays)
            else:
                union = _union_axis([m.node for m in members])
                arrays = self.executor.evaluate(
                    members[0].node.op, members[0].node.args, union
                )
                runs += 1
                for member in members:
                    idx = np.searchsorted(union, member.node.axis)
                    sliced = {
                        name: (
                            a[idx, :] if member.node.op in SURFACE_OPS else a[idx]
                        )
                        for name, a in arrays.items()
                    }
                    self.results[member.node.key] = self._store(
                        member.node, sliced
                    )
        for p in self.nodes:
            if p.status == "reduce":
                children = [self.results[c.key] for c in p.node.inputs]
                self.results[p.node.key] = _reduce(p.node, children)
        if self.stats is not None and runs:
            lock = self.cache._lock if self.cache is not None else _NULL_LOCK
            with lock:
                self.stats.count_executor_run(self.executor.name, runs)
        self.executed = True
        return [self.results[root.key] for root in self.roots]

    def _store(self, node: Node, arrays: dict[str, np.ndarray]) -> Any:
        if self.cache is None:
            return arrays
        return self.cache.store(node.key, arrays)


class _NullLock:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_LOCK = _NullLock()


def _union_axis(nodes: Sequence[Node]) -> np.ndarray:
    """Sorted union of the members' axes (dtype shared family-wide)."""
    return np.unique(np.concatenate([n.axis for n in nodes]))


def _reduce(node: Node, children: list[Any]) -> Any:
    """Fold one reduction node over its children's results.

    Transcribes the eager analysis layer's post-processing exactly, so
    reductions over graph-served leaves are bit-identical to the old
    call chains.
    """
    if node.op == "ratio":
        a, b = children
        return a["speedup"] / b["speedup"]
    if node.op == "isoefficiency_fit":
        sides = children[0]["sides"]
        processor_counts = node.args["processor_counts"]
        log_n2 = np.log([float(s) * s for s in sides])
        log_p = np.log(np.asarray(processor_counts, dtype=float))
        slope = float(np.polyfit(log_p, log_n2, 1)[0])
        return IsoefficiencyFit(
            exponent=slope,
            processors=tuple(int(pc) for pc in processor_counts),
            problem_sizes=tuple(int(s) for s in sides),
        )
    raise InvalidParameterError(f"unknown reduction op {node.op!r}")


def plan(
    requests: Sequence[Node],
    cache: SweepCache | None = None,
    executor: "str | Executor" = "numpy",
    lookup: bool = True,
    stats: CacheStats | None = None,
) -> Plan:
    """Optimize a node forest into an executable :class:`Plan`.

    ``lookup=False`` skips the cache probe (results still *store* under
    their fingerprints) — the sweep service uses it for batch leaders
    whose members were each already counted as a miss by the request
    pipeline, keeping daemon-side hit/miss totals identical to the
    offline path.

    ``stats`` overrides where planner counters land; by default they go
    to ``cache.stats`` (or nowhere when there is no cache).
    """
    backend = get_executor(executor)
    out = Plan(
        roots=tuple(requests),
        executor=backend,
        cache=cache,
        # NB: SweepCache defines __len__, so an *empty* cache is falsy —
        # the identity check matters.
        stats=stats if stats is not None else (cache.stats if cache is not None else None),
    )

    # Pass 1: dedup — post-order walk, one PlannedNode per fingerprint.
    seen: dict[str, PlannedNode] = {}

    def visit(node: Node) -> None:
        known = seen.get(node.key)
        if known is not None:
            known.instances += 1
            return
        for child in node.inputs:
            visit(child)
        planned = PlannedNode(
            node=node,
            index=len(out.nodes) + 1,
            status="reduce" if node.is_reduction else "compute",
        )
        seen[node.key] = planned
        out.nodes.append(planned)

    for root in requests:
        visit(root)

    # Pass 2: cache probe — one lookup per unique cacheable leaf.
    if cache is not None and lookup:
        for p in out.nodes:
            if p.status == "compute" and p.node.request is not None:
                arrays, tier = cache.lookup_level(p.node.key)
                if arrays is not None:
                    p.status, p.tier = "cached", tier
                    out.results[p.node.key] = arrays

    # Pass 3: fuse — group remaining leaves by compatibility.
    buckets: dict[object, int] = {}
    for p in out.nodes:
        if p.status != "compute":
            continue
        bucket_key = (
            (p.node.op, p.node.compat) if p.node.is_fusable else ("solo", p.index)
        )
        gid = buckets.get(bucket_key)
        if gid is None:
            gid = len(out.groups) + 1
            buckets[bucket_key] = gid
            out.groups[gid] = []
        out.groups[gid].append(p)
        p.group = gid

    if out.stats is not None:
        lock = cache._lock if cache is not None else _NULL_LOCK
        with lock:
            out.stats.nodes_planned += out.n_nodes
            out.stats.siblings_fused += out.siblings_fused
            out.stats.subgraphs_deduped += out.subgraphs_deduped
    return out


def evaluate(
    requests: Sequence[Node],
    cache: SweepCache | None = None,
    executor: "str | Executor" = "numpy",
) -> list[Any]:
    """Plan and execute in one call; returns one result per root."""
    return plan(requests, cache=cache, executor=executor).execute()
