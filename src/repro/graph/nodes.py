"""Lazy sweep-graph nodes: analysis requests as data, not calls.

A :class:`Node` records *what* to compute — an analysis family plus its
parameters and its elementwise evaluation axis — without computing it.
Requests built here form small DAGs (sweep → analysis → reduction) that
:mod:`repro.graph.planner` fuses, dedups against the content-addressed
:class:`~repro.batch.SweepCache`, and dispatches to a pluggable executor
(:mod:`repro.graph.executors`).

Two node classes exist:

* **evaluation leaves** — one analysis family evaluated over a 1-D
  axis the result is elementwise in (grid sides for allocation curves,
  processor counts for isoefficiency searches, …).  Leaves carry the
  *same* cache-request tuple the eager analysis layer has always used,
  so graph-planned results and pre-graph cache stores share entries,
  plus a *compatibility* fingerprint: two leaves with equal ``compat``
  differ only in their axis and may be fused onto one vectorized
  evaluation over the union axis.
* **reductions** — pure array-to-array post-processing (speedup
  ratios, isoefficiency exponent fits) over child nodes.  Reductions
  are cheap and never cached; their children are.

Machines canonicalize through the cache's closed-form bus encoding, so
two presets whose cycle-time surfaces coincide build nodes that dedup
*and* fuse with each other — the same cross-preset sharing the cache
layer already guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Mapping, Sequence

import numpy as np

from repro.batch.cache import fingerprint
from repro.batch.engine import SweepSpec
from repro.core.parameters import DEFAULT_T_FLOP
from repro.errors import InvalidParameterError
from repro.machines.base import Architecture
from repro.machines.bus import BusArchitecture
from repro.stencils.perimeter import PartitionKind
from repro.stencils.stencil import Stencil

__all__ = [
    "Node",
    "allocation_curve",
    "max_useful_processors",
    "minimal_problem_size",
    "grid_for_efficiency",
    "sweep",
    "plan_grid",
    "sim_sweep",
    "sim_validate",
    "speedup_ratio",
    "strip_square_ratio",
    "isoefficiency_fit",
]

#: Families whose result arrays are 2-D surfaces sliced on axis 0; every
#: other family's arrays are 1-D and parallel to the node's axis.
SURFACE_OPS = frozenset({"sweep"})

#: Reduction ops (uncached, executed by the planner from child results).
REDUCE_OPS = frozenset({"ratio", "isoefficiency_fit"})


@dataclass(frozen=True, eq=False)
class Node:
    """One vertex of a lazy sweep graph.

    Identity is the cache fingerprint of the request (:attr:`key`), not
    object identity — two separately-built nodes for the same request
    are one subgraph to the planner.
    """

    #: Family name ("allocation_curve", "sweep", …) or reduction op.
    op: str
    #: Evaluation arguments for the executors (machine/stencil objects,
    #: scalars) — everything but the axis.
    args: Mapping[str, Any]
    #: The cache-request tuple (exactly the eager layer's), or ``None``
    #: for reductions, which are never cached.
    request: tuple | None
    #: Fusion-compatibility fingerprint: nodes sharing it differ only in
    #: their axis.  ``None`` marks a non-fusable node.
    compat: str | None
    #: The 1-D axis the result is elementwise over (``None`` for
    #: reductions).
    axis: np.ndarray | None
    #: Child nodes (reductions only).
    inputs: tuple["Node", ...] = ()
    #: Human-readable summary for ``--explain`` output.
    detail: str = ""

    @cached_property
    def key(self) -> str:
        """Content-addressed identity: the request fingerprint.

        Reductions fingerprint over their op and child keys instead —
        they have no cache request of their own.
        """
        if self.request is not None:
            return fingerprint(self.request)
        return fingerprint(
            ("graph-reduce", self.op, tuple(child.key for child in self.inputs))
        )

    @property
    def is_reduction(self) -> bool:
        return self.op in REDUCE_OPS

    @property
    def is_fusable(self) -> bool:
        return self.compat is not None and self.axis is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.detail or self.op})"


# --------------------------------------------------------------------------
# Shared validation / labelling
# --------------------------------------------------------------------------


def _machine_label(machine: Architecture) -> str:
    """Catalog name when the machine is a preset, else its class name."""
    from repro.machines.catalog import DEFAULT_MACHINES

    for name, preset in DEFAULT_MACHINES.items():
        if preset is machine:
            return name
    return type(machine).__name__


def _grid_axis(grid_sides: Sequence[int]) -> np.ndarray:
    n = np.asarray(grid_sides, dtype=float)
    if n.ndim != 1 or n.size == 0:
        raise InvalidParameterError("grid_sides must be a non-empty 1-D axis")
    if np.any(n < 1):
        raise InvalidParameterError("grid sides must be >= 1")
    return n


def _float_tag(value: float) -> tuple:
    return ("float", repr(float(value)))


# --------------------------------------------------------------------------
# Evaluation leaves
# --------------------------------------------------------------------------


def allocation_curve(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
    integer: bool = False,
) -> Node:
    """Lazy :func:`repro.batch.analysis.optimal_allocation_curve`."""
    from repro.batch.analysis import _allocation_request

    n = _grid_axis(grid_sides)
    if max_processors is not None and max_processors < 1:
        raise InvalidParameterError("max_processors must be >= 1")
    return Node(
        op="allocation_curve",
        args={
            "machine": machine,
            "stencil": stencil,
            "kind": kind,
            "t_flop": float(t_flop),
            "max_processors": max_processors,
            "integer": bool(integer),
        },
        request=_allocation_request(
            machine, stencil, kind, n, t_flop, max_processors, integer
        ),
        compat=fingerprint(
            (
                "fuse",
                "allocation_curve",
                machine,
                stencil,
                kind,
                _float_tag(t_flop),
                None if max_processors is None else _float_tag(max_processors),
                bool(integer),
            )
        ),
        axis=n,
        detail=(
            f"allocation_curve[{_machine_label(machine)} {stencil.name} "
            f"{kind.value} n_axis={n.size} integer={bool(integer)}]"
        ),
    )


def max_useful_processors(
    machine: BusArchitecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
) -> Node:
    """Lazy :func:`repro.batch.analysis.max_useful_processors_curve`."""
    n = np.asarray(grid_sides, dtype=float)
    if np.any(n < 1):
        raise InvalidParameterError("grid sides must be >= 1")
    return Node(
        op="max_useful",
        args={
            "machine": machine,
            "stencil": stencil,
            "kind": kind,
            "t_flop": float(t_flop),
        },
        request=(
            "max_useful_processors_curve",
            machine,
            stencil,
            kind,
            n,
            _float_tag(t_flop),
        ),
        compat=fingerprint(
            ("fuse", "max_useful", machine, stencil, kind, _float_tag(t_flop))
        ),
        axis=n,
        detail=(
            f"max_useful[{_machine_label(machine)} {stencil.name} "
            f"{kind.value} n_axis={n.size}]"
        ),
    )


def minimal_problem_size(
    machine: BusArchitecture,
    stencil: Stencil,
    kind: PartitionKind,
    n_processors: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
) -> Node:
    """Lazy :func:`repro.batch.analysis.minimal_problem_size_curve`."""
    p = np.asarray(n_processors, dtype=float)
    if np.any(p < 1):
        raise InvalidParameterError("n_processors must be >= 1")
    return Node(
        op="n2_min",
        args={
            "machine": machine,
            "stencil": stencil,
            "kind": kind,
            "t_flop": float(t_flop),
        },
        request=(
            "minimal_problem_size_curve",
            machine,
            stencil,
            kind,
            p,
            _float_tag(t_flop),
        ),
        compat=fingerprint(
            ("fuse", "n2_min", machine, stencil, kind, _float_tag(t_flop))
        ),
        axis=p,
        detail=(
            f"n2_min[{_machine_label(machine)} {stencil.name} "
            f"{kind.value} p_axis={p.size}]"
        ),
    )


def grid_for_efficiency(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    processor_counts: Sequence[int],
    target_efficiency: float,
    t_flop: float = DEFAULT_T_FLOP,
    n_max: int = 1 << 18,
) -> Node:
    """Lazy :func:`repro.batch.analysis.grid_for_efficiency_curve`."""
    if not 0 < target_efficiency < 1:
        raise InvalidParameterError("target efficiency must be in (0, 1)")
    p_int = np.asarray(processor_counts, dtype=int)
    if p_int.ndim != 1 or p_int.size == 0:
        raise InvalidParameterError("processor_counts must be a non-empty 1-D axis")
    if np.any(p_int < 2):
        raise InvalidParameterError("isoefficiency needs at least 2 processors")
    return Node(
        op="grid_for_efficiency",
        args={
            "machine": machine,
            "stencil": stencil,
            "kind": kind,
            "target_efficiency": float(target_efficiency),
            "t_flop": float(t_flop),
            "n_max": int(n_max),
        },
        request=(
            "grid_for_efficiency_curve",
            machine,
            stencil,
            kind,
            p_int,
            _float_tag(target_efficiency),
            _float_tag(t_flop),
            int(n_max),
        ),
        compat=fingerprint(
            (
                "fuse",
                "grid_for_efficiency",
                machine,
                stencil,
                kind,
                _float_tag(target_efficiency),
                _float_tag(t_flop),
                int(n_max),
            )
        ),
        axis=p_int,
        detail=(
            f"grid_for_efficiency[{_machine_label(machine)} {stencil.name} "
            f"{kind.value} e={target_efficiency:g} p_axis={p_int.size}]"
        ),
    )


def sweep(spec: SweepSpec) -> Node:
    """Lazy :func:`repro.batch.run_sweep` over a whole :class:`SweepSpec`.

    The node's axis is the spec's grid-side axis: each row of every
    machine surface depends only on its own ``n``, so compatible sweeps
    (same processors, machines, stencil, kind, flop time) fuse over the
    union of their grid-side axes.
    """
    return Node(
        op="sweep",
        args={"spec": spec},
        request=("run_sweep", spec),
        compat=fingerprint(
            (
                "fuse",
                "sweep",
                spec.processors,
                spec.machines,
                spec.stencil,
                spec.kind,
                _float_tag(spec.t_flop),
            )
        ),
        axis=np.asarray(spec.grid_sides, dtype=int),
        detail=(
            f"sweep[{len(spec.machines)} machines {spec.stencil.name} "
            f"{spec.kind.value} n_axis={len(spec.grid_sides)} "
            f"p_axis={len(spec.processors)}]"
        ),
    )


def plan_grid(machine: BusArchitecture, n_processors: Sequence[int]) -> Node:
    """Lazy capacity-plan curve: minimal grid sides over a machine-size axis.

    The request tuple matches the CLI's historical ``("plan_grid", …)``
    entry, so stores warmed by either path serve the other.
    """
    p = np.asarray(n_processors, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise InvalidParameterError("n_processors must be a non-empty 1-D axis")
    if np.any(p < 1):
        raise InvalidParameterError("n_processors must be >= 1")
    return Node(
        op="plan_grid",
        args={"machine": machine},
        request=("plan_grid", machine, p),
        compat=fingerprint(("fuse", "plan_grid", machine)),
        axis=p,
        detail=f"plan_grid[{_machine_label(machine)} p_axis={p.size}]",
    )


def sim_sweep(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    n: int,
    n_processors: int,
    seeds: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    mode: str = "barrier",
    jitter: float = 0.0,
) -> Node:
    """Lazy :func:`repro.batch.sim.simulate_replicas` over a seed axis.

    One (machine, n, P) configuration, many replicas: the node is
    elementwise in its seed axis (the counter RNG gives every replica an
    independent stream), so sim sweeps sharing a configuration fuse over
    the union of their seed axes and slice back out bit-identically.

    Machines canonicalize through :func:`repro.batch.sim.machine_sim_tag`
    — raw fields, *not* the closed-form bus encoding — because the
    simulator charges ``b`` and ``c`` separately; see that function.
    """
    from repro.batch.sim import ReplicaBatchSpec, machine_sim_tag, replica_request

    # Seeds stay exact Python ints until the final uint64 cast: routing
    # them through np.asarray would promote a list mixing small ints with
    # values past 2**63 to float64 and silently round the top of the
    # seed range (2**64 - 1 -> 2**64).
    try:
        seed_list = [int(s) for s in seeds]
    except (TypeError, ValueError):
        raise InvalidParameterError(
            "seeds must be a non-empty 1-D axis of integers"
        ) from None
    if not seed_list:
        raise InvalidParameterError("seeds must be a non-empty 1-D axis")
    # Spec construction validates n, P, seeds, mode, t_flop, and jitter
    # (before any uint64 conversion could wrap a negative seed); its
    # request tuple is exactly the offline cached path's, so graph
    # stores and simulate_replicas_cached stores share entries.
    spec = ReplicaBatchSpec.build(
        machine, stencil, kind, int(n), int(n_processors), seed_list,
        t_flop=float(t_flop), mode=str(mode), jitter=float(jitter),
    )
    seed_axis = np.asarray(seed_list, dtype=np.uint64)
    return Node(
        op="sim_sweep",
        args={
            "machine": machine,
            "stencil": stencil,
            "kind": kind,
            "n": int(n),
            "n_processors": int(n_processors),
            "t_flop": float(t_flop),
            "mode": str(mode),
            "jitter": float(jitter),
        },
        request=replica_request(spec),
        compat=fingerprint(
            (
                "fuse",
                "sim_sweep",
                machine_sim_tag(machine),
                stencil,
                kind,
                int(n),
                int(n_processors),
                _float_tag(t_flop),
                str(mode),
                _float_tag(jitter),
            )
        ),
        axis=seed_axis,
        detail=(
            f"sim_sweep[{_machine_label(machine)} {stencil.name} "
            f"{kind.value} n={int(n)} p={int(n_processors)} "
            f"seeds={seed_axis.size} mode={mode} jitter={float(jitter):g}]"
        ),
    )


def sim_validate(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    n: int,
    processor_counts: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    mode: str = "barrier",
) -> Node:
    """Lazy :func:`repro.sim.validate.validation_arrays` over a P axis.

    Each processor count's analytic and simulated cycle times depend
    only on that count, so validation sweeps for one (machine, stencil,
    n) fuse over the union of their processor axes.  The simulated
    column is the jitter-free batched replica path, pinned bit-equal to
    the event-level oracle.
    """
    from repro.batch.sim import machine_sim_tag

    p_axis = np.asarray(processor_counts, dtype=np.int64)
    if p_axis.ndim != 1 or p_axis.size == 0:
        raise InvalidParameterError(
            "processor_counts must be a non-empty 1-D axis"
        )
    if np.any(p_axis < 1):
        raise InvalidParameterError("processor counts must be >= 1")
    if int(n) < 1:
        raise InvalidParameterError("grid side n must be >= 1")
    return Node(
        op="sim_validate",
        args={
            "machine": machine,
            "stencil": stencil,
            "kind": kind,
            "n": int(n),
            "t_flop": float(t_flop),
            "mode": str(mode),
        },
        request=(
            "sim_validate",
            machine_sim_tag(machine),
            stencil,
            kind,
            int(n),
            p_axis,
            _float_tag(t_flop),
            str(mode),
        ),
        compat=fingerprint(
            (
                "fuse",
                "sim_validate",
                machine_sim_tag(machine),
                stencil,
                kind,
                int(n),
                _float_tag(t_flop),
                str(mode),
            )
        ),
        axis=p_axis,
        detail=(
            f"sim_validate[{_machine_label(machine)} {stencil.name} "
            f"{kind.value} n={int(n)} p_axis={p_axis.size} mode={mode}]"
        ),
    )


# --------------------------------------------------------------------------
# Reductions
# --------------------------------------------------------------------------


def speedup_ratio(
    machine_a: Architecture,
    machine_b: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
) -> Node:
    """Lazy A-vs-B speedup ratio: one shared-subgraph reduction."""
    a = allocation_curve(machine_a, stencil, kind, grid_sides, t_flop, max_processors)
    b = allocation_curve(machine_b, stencil, kind, grid_sides, t_flop, max_processors)
    return Node(
        op="ratio",
        args={},
        request=None,
        compat=None,
        axis=None,
        inputs=(a, b),
        detail=f"ratio[{_machine_label(machine_a)}/{_machine_label(machine_b)}]",
    )


def strip_square_ratio(
    machine: Architecture,
    stencil: Stencil,
    grid_sides: Sequence[int],
    t_flop: float = DEFAULT_T_FLOP,
    max_processors: float | None = None,
) -> Node:
    """Lazy strip-vs-square ratio over one machine's two allocation curves."""
    st = allocation_curve(
        machine, stencil, PartitionKind.STRIP, grid_sides, t_flop, max_processors
    )
    sq = allocation_curve(
        machine, stencil, PartitionKind.SQUARE, grid_sides, t_flop, max_processors
    )
    return Node(
        op="ratio",
        args={},
        request=None,
        compat=None,
        axis=None,
        inputs=(st, sq),
        detail=f"ratio[{_machine_label(machine)} strip/square]",
    )


def isoefficiency_fit(
    machine: Architecture,
    stencil: Stencil,
    kind: PartitionKind,
    processor_counts: Sequence[int],
    target_efficiency: float = 0.5,
    t_flop: float = DEFAULT_T_FLOP,
) -> Node:
    """Lazy isoefficiency-exponent fit over a grid-for-efficiency leaf."""
    if len(processor_counts) < 2:
        raise InvalidParameterError("need at least two processor counts")
    sides = grid_for_efficiency(
        machine, stencil, kind, processor_counts, target_efficiency, t_flop
    )
    return Node(
        op="isoefficiency_fit",
        args={"processor_counts": tuple(int(p) for p in processor_counts)},
        request=None,
        compat=None,
        axis=None,
        inputs=(sides,),
        detail=(
            f"isoefficiency_fit[{_machine_label(machine)} {stencil.name} "
            f"{kind.value} e={target_efficiency:g}]"
        ),
    )
