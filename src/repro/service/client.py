"""Clients for the sweep server: typed requests and the remote cache tier.

:class:`ServiceClient` wraps the daemon's HTTP surface with exact array
round-tripping; :class:`RemoteSweepCache` plugs the daemon in as a
:class:`~repro.batch.SweepCache` slow tier, which is how the experiment
runner's ``--server`` routes every worker's sweeps through one shared,
deduplicated store while still counting its own hits and misses (the
counts a report can aggregate — a daemon-side hit is invisible to a
worker's local stats otherwise).

Transport: every client owns a thread-safe pool of keep-alive
``http.client.HTTPConnection`` objects, so a warm request costs one
socket write, not a TCP handshake.  A stale pooled socket (the server
closed an idle keep-alive connection) is replayed once on a fresh
connection; genuinely transient transport errors get a bounded
exponential-backoff retry — on by default for the idempotent surface
(GETs and the pure ``/v1/compute`` POSTs), off by default for PUTs.

Protocol: array responses are negotiated per request.  The client sends
``Accept: application/x-repro-frame`` and branches on the response's
``Content-Type`` — a new server answers with the zero-copy binary frame
(:mod:`repro.service.frame`), an old server answers base64-JSON and the
client decodes that instead, transparently.  ``last_protocol`` records
which path the most recent compute took.

Retries back off with *full jitter*: the nth retry sleeps a uniform
random duration in ``[0, backoff_s * 2**n]`` rather than the
deterministic cap, so a fleet of clients reconnecting to a restarted
daemon spreads out instead of stampeding in lockstep.  Tests inject a
seeded :class:`random.Random` to keep the schedule exact.

Pipelining: :meth:`ServiceClient.compute_many` sends up to ``pipeline``
requests down one pooled keep-alive socket before reading the first
response (HTTP/1.1 pipelining).  Against the asyncio backend the
requests compute concurrently on the server's worker pool while the
responses come back in order — one connection, no client threads, and
the per-request round trip amortized across the window.
"""

from __future__ import annotations

import http.client
import io
import json
import random
import socket
import threading
import time
import urllib.parse
from typing import Any, Mapping, Sequence

import numpy as np

from repro.batch.cache import SweepCache
from repro.core.parameters import DEFAULT_T_FLOP
from repro.errors import ReproError
from repro.service.frame import (
    FRAME_CONTENT_TYPE,
    FrameError,
    decode_frame,
    frame_bytes,
)
from repro.service.schema import (
    allocation_payload,
    decode_arrays,
    plan_payload,
    sim_sweep_payload,
    sim_validate_payload,
    sweep_payload,
)

__all__ = ["ServiceClient", "RemoteSweepCache", "ServiceError"]


class ServiceError(ReproError, RuntimeError):
    """The sweep server rejected a request or could not be reached."""


#: Transport failures worth replaying: the connection died under the
#: request (reset, refused mid-restart, no status line, a keep-alive
#: socket the server already closed).  Timeouts are deliberately *not*
#: here — replaying a slow compute doubles it.
_TRANSIENT_ERRORS = (
    ConnectionError,
    http.client.BadStatusLine,
    http.client.CannotSendRequest,
    http.client.ImproperConnectionState,
)


class _PooledConnection(http.client.HTTPConnection):
    """A keep-alive connection with Nagle off.

    Request and response each fit one small burst; letting Nagle hold
    the last segment behind a delayed ACK costs ~40 ms per round trip
    on an otherwise ~1 ms warm hit.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class _ConnectionPool:
    """A bounded stack of reusable keep-alive connections to one host.

    ``acquire`` pops an idle connection (or makes a fresh one);
    ``release`` returns a healthy connection for the next request,
    closing it instead once ``size`` are already idle.  Threads beyond
    ``size`` are never blocked — they just pay for a fresh socket.
    """

    def __init__(self, host: str, port: int, timeout: float, size: int) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.size = max(1, int(size))
        self._lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []  # guarded-by: _lock

    def acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        """``(connection, pooled)`` — ``pooled`` means it may be stale."""
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        return _PooledConnection(self.host, self.port, timeout=self.timeout), False

    def release(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < self.size:
                self._idle.append(connection)
                return
        connection.close()

    def close(self) -> None:
        with self._lock:
            idle = self._idle
            self._idle = []
        for connection in idle:
            connection.close()


class _SocketReader:
    """Minimal buffered HTTP/1.1 response reader for the pipelined path.

    ``http.client`` insists on one response per ``request()`` call;
    pipelining needs N responses off one socket without touching its
    state machine.  This reader parses exactly what the sweep daemon
    sends — a status line, headers, and a ``Content-Length`` body — and
    leaves any unconsumed bytes buffered for the next response.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = bytearray()

    @property
    def clean(self) -> bool:
        """No leftover bytes — the socket is safe to return to the pool."""
        return not self._buffer

    def _fill(self) -> None:
        chunk = self._sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection mid-pipeline")
        self._buffer += chunk

    def read_response(self) -> tuple[int, str, bytes, bool]:
        """One pipelined response: ``(status, content_type, body, close)``."""
        while True:
            end = self._buffer.find(b"\r\n\r\n")
            if end >= 0:
                break
            self._fill()
        lines = bytes(self._buffer[:end]).decode("latin-1").split("\r\n")
        del self._buffer[: end + 4]
        parts = lines[0].split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise http.client.BadStatusLine(lines[0])
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, _sep, value = line.partition(":")
            headers[name.lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        while len(self._buffer) < length:
            self._fill()
        body = bytes(self._buffer[:length])
        del self._buffer[:length]
        close = "close" in headers.get("connection", "").lower()
        return status, headers.get("content-type", ""), body, close


class ServiceClient:
    """HTTP client for a running :class:`~repro.service.SweepServer`.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the daemon (a path prefix is honored).
    timeout:
        Per-request socket timeout in seconds.
    pool_size:
        Keep-alive connections retained for reuse; concurrent callers
        beyond this open (and afterwards discard) extra sockets.
    retries, backoff_s:
        Bounded retry budget for transient transport errors on the
        idempotent surface.  The nth retry sleeps a full-jitter
        uniform duration in ``[0, backoff_s * 2**n]``, so concurrent
        clients retrying a restarted daemon spread out instead of
        stampeding in lockstep.  ``retries=0`` disables everything
        except the single stale-socket replay that keep-alive pooling
        requires.
    retry_non_idempotent:
        Extend the retry budget (and the stale-socket replay) to PUTs.
        Off by default; safe to enable against the sweep daemon, whose
        cache PUTs are content-addressed and therefore replayable.
    binary:
        Offer the zero-copy binary frame on array requests.  The JSON
        fallback is automatic either way; ``binary=False`` forces it.
    pipeline:
        Default HTTP/1.1 pipelining depth for :meth:`compute_many`:
        how many requests ride one socket before the first response is
        read.  ``1`` (the default) keeps every call strictly
        request-response.
    rng:
        Source of retry jitter; inject a seeded :class:`random.Random`
        to make the backoff schedule deterministic (tests).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 120.0,
        pool_size: int = 4,
        retries: int = 2,
        backoff_s: float = 0.05,
        retry_non_idempotent: bool = False,
        binary: bool = True,
        pipeline: int = 1,
        rng: random.Random | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        target = self.base_url if "://" in self.base_url else f"http://{self.base_url}"
        split = urllib.parse.urlsplit(target)
        if split.scheme != "http":
            raise ServiceError(
                f"unsupported scheme {split.scheme!r} in {base_url!r}: the sweep "
                "daemon speaks plain http"
            )
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self.retry_non_idempotent = bool(retry_non_idempotent)
        self.binary = bool(binary)
        self.pipeline = max(1, int(pipeline))
        self._rng = rng if rng is not None else random.Random()
        self._prefix = split.path.rstrip("/")
        self._pool = _ConnectionPool(
            split.hostname or "127.0.0.1", split.port or 80, timeout, pool_size
        )
        self._lock = threading.Lock()
        #: Does the server speak the binary frame?  None until observed;
        #: flipped False when a frame PUT bounces off an old server.
        self._server_frames: bool | None = None  # guarded-by: _lock
        #: How the server answered the most recent compute call —
        #: ``memory``/``disk``/``coalesced``/``batched``/``computed``.
        self.last_served: str | None = None
        #: Which wire encoding the most recent array response used —
        #: ``"frame"`` or ``"json"``.
        self.last_protocol: str | None = None

    def close(self) -> None:
        """Drop pooled connections (idle daemons, test teardown)."""
        self._pool.close()

    # ------------------------------------------------------------- transport

    def _note_frames(self, supported: bool) -> None:
        with self._lock:
            self._server_frames = supported

    def _frames_unknown(self) -> bool:
        with self._lock:
            return self._server_frames is None

    def _frames_usable(self) -> bool:
        with self._lock:
            return self._server_frames is not False

    def _retry_delay(self, attempt: int) -> float:
        """Full-jitter backoff: uniform over ``[0, backoff_s * 2**attempt]``.

        The *cap* grows exponentially; the draw is uniform below it, so
        N clients that all failed at the same instant retry at N
        different times.  Deterministic under an injected seeded
        ``rng``.
        """
        return self._rng.uniform(0.0, self.backoff_s * (2.0**attempt))

    def _request(
        self,
        path: str,
        data: bytes | None = None,
        method: str = "GET",
        content_type: str | None = None,
        accept: str | None = None,
        idempotent: bool = True,
    ) -> tuple[int, str, bytes]:
        """One request over a pooled connection: ``(status, ctype, body)``.

        A transport failure on a *pooled* connection is replayed on a
        fresh socket without consuming the retry budget — that is the
        normal fate of a keep-alive socket the server timed out, not a
        server problem.  Fresh-connection failures consume ``retries``
        with exponential backoff.  Non-idempotent requests (PUTs) get
        neither unless ``retry_non_idempotent`` is set.
        """
        headers: dict[str, str] = {}
        if content_type is not None:
            headers["Content-Type"] = content_type
        if accept is not None:
            headers["Accept"] = accept
        replayable = idempotent or self.retry_non_idempotent
        attempts = 0
        replays = 0
        while True:
            connection, pooled = self._pool.acquire()
            try:
                connection.request(method, self._prefix + path, body=data, headers=headers)
                response = connection.getresponse()
                body = response.read()
            except TimeoutError:
                connection.close()
                raise ServiceError(
                    f"sweep server timed out at {self.base_url} after {self.timeout}s"
                ) from None
            except _TRANSIENT_ERRORS as exc:
                connection.close()
                if replayable and pooled and replays <= self._pool.size:
                    replays += 1  # a stale keep-alive socket, not a failure
                    continue
                if replayable and attempts < self.retries:
                    time.sleep(self._retry_delay(attempts))
                    attempts += 1
                    continue
                raise ServiceError(
                    f"sweep server unreachable at {self.base_url}: "
                    f"{type(exc).__name__}: {exc}"
                ) from None
            except OSError as exc:
                connection.close()
                raise ServiceError(
                    f"sweep server unreachable at {self.base_url}: {exc}"
                ) from None
            if response.will_close:
                connection.close()
            else:
                self._pool.release(connection)
            return response.status, response.headers.get("Content-Type") or "", body

    def _parse_json(self, status: int, body: bytes, path: str) -> dict[str, Any]:
        try:
            decoded = json.loads(body)
        except json.JSONDecodeError:
            raise ServiceError(
                f"sweep server returned non-JSON ({status}) for {path}"
            ) from None
        if status != 200 or decoded.get("status") != "ok":
            raise ServiceError(
                decoded.get("error", f"sweep server error {status} for {path}")
            )
        return dict(decoded)

    def _json(
        self, path: str, payload: Mapping[str, Any] | None = None, method: str = "GET"
    ) -> dict[str, Any]:
        data = None if payload is None else json.dumps(payload).encode()
        status, _ctype, body = self._request(
            path, data, method=method, content_type="application/json"
        )
        return self._parse_json(status, body, path)

    # ------------------------------------------------------------ endpoints

    def health(self) -> dict[str, Any]:
        return self._json("/healthz")

    def stats(self) -> dict[str, Any]:
        return self._json("/v1/stats")

    def _compute_accept(self) -> str:
        return (
            f"{FRAME_CONTENT_TYPE}, application/json"
            if self.binary
            else "application/json"
        )

    def _decode_compute_response(
        self, status: int, ctype: str, body: bytes
    ) -> dict[str, np.ndarray]:
        """Decode one ``/v1/compute`` response, whatever protocol it took.

        Shared by the sequential and pipelined paths, so both see the
        same negotiation, the same errors, and the same
        ``last_served``/``last_protocol`` observability.
        """
        if ctype.startswith(FRAME_CONTENT_TYPE):
            try:
                arrays, meta = decode_frame(body)
            except FrameError as exc:
                raise ServiceError(f"sweep server sent a bad frame: {exc}") from None
            if status != 200 or meta.get("status") != "ok":
                raise ServiceError(
                    str(meta.get("error", f"sweep server error {status}"))
                )
            self._note_frames(True)
            self.last_served = meta.get("served")
            self.last_protocol = "frame"
            return arrays
        decoded = self._parse_json(status, body, "/v1/compute")
        self.last_served = decoded.get("served")
        self.last_protocol = "json"
        return decode_arrays(decoded["arrays"])

    def compute(self, payload: Mapping[str, Any]) -> dict[str, np.ndarray]:
        """POST one request; returns the named arrays, bit-exact.

        The response encoding is whatever the negotiation yielded: the
        binary frame from a frame-capable server, base64-JSON otherwise.
        Either way the array bytes are identical.
        """
        status, ctype, body = self._request(
            "/v1/compute",
            json.dumps(payload).encode(),
            method="POST",
            content_type="application/json",
            accept=self._compute_accept(),
        )
        return self._decode_compute_response(status, ctype, body)

    # ------------------------------------------------------------- pipelining

    def _raw_compute_request(self, body: bytes) -> bytes:
        """One ``/v1/compute`` POST as raw wire bytes (pipelined path)."""
        return (
            f"POST {self._prefix}/v1/compute HTTP/1.1\r\n"
            f"Host: {self._pool.host}:{self._pool.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Accept: {self._compute_accept()}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("ascii") + body

    def _pipeline_once(
        self, requests: list[bytes], depth: int
    ) -> list[tuple[int, str, bytes]]:
        """One pipelined pass over a pooled socket; raises on transport loss.

        Keeps a sliding window: at most ``depth`` requests are on the
        wire ahead of the responses read back, which matches the
        server's own per-connection in-flight bound instead of blasting
        the whole batch blind.
        """
        # A stale pooled socket surfaces as a transport error here and is
        # replayed by compute_many under the same bound as _request.
        connection, _pooled = self._pool.acquire()
        try:
            if connection.sock is None:
                connection.connect()
            sock = connection.sock
            assert sock is not None  # connect() either sets it or raises
            reader = _SocketReader(sock)
            results: list[tuple[int, str, bytes]] = []
            sent = 0
            closed = False
            while len(results) < len(requests):
                while sent < len(requests) and sent - len(results) < depth:
                    sock.sendall(requests[sent])
                    sent += 1
                status, ctype, body, closed = reader.read_response()
                results.append((status, ctype, body))
                if closed and len(results) < len(requests):
                    raise ConnectionError(
                        "server closed the connection mid-pipeline"
                    )
            if closed or not reader.clean:
                connection.close()
            else:
                # Every response byte was consumed: the keep-alive
                # socket is position-clean and reusable.  (http.client
                # never touched it, so the connection object is too.)
                self._pool.release(connection)
            return results
        except BaseException:
            connection.close()
            raise

    def compute_many(
        self,
        payloads: Sequence[Mapping[str, Any]],
        pipeline: int | None = None,
    ) -> list[dict[str, np.ndarray]]:
        """POST many requests, pipelined; one result list, request order.

        With ``pipeline`` (or the constructor default) above 1, up to
        that many requests are written to one pooled keep-alive socket
        before the first response is read — the server computes them
        concurrently and streams the responses back in order.  Each
        result is decoded exactly as :meth:`compute` would decode it;
        a request the server rejected raises :class:`ServiceError`
        naming its index.

        ``/v1/compute`` is pure (same request, same bytes), so a
        transport failure mid-pipeline replays the whole batch under
        the same stale-socket-then-bounded-retries contract as
        :meth:`_request`.
        """
        depth = self.pipeline if pipeline is None else max(1, int(pipeline))
        if not payloads:
            return []
        if depth <= 1 or len(payloads) == 1:
            return [self.compute(payload) for payload in payloads]
        requests = [
            self._raw_compute_request(json.dumps(payload).encode())
            for payload in payloads
        ]
        attempts = 0
        replays = 0
        while True:
            try:
                responses = self._pipeline_once(requests, depth)
                break
            except TimeoutError:
                raise ServiceError(
                    f"sweep server timed out at {self.base_url} after {self.timeout}s"
                ) from None
            except _TRANSIENT_ERRORS as exc:
                if replays <= self._pool.size:
                    replays += 1  # a stale keep-alive socket, not a failure
                    continue
                if attempts < self.retries:
                    time.sleep(self._retry_delay(attempts))
                    attempts += 1
                    continue
                raise ServiceError(
                    f"sweep server unreachable at {self.base_url}: "
                    f"{type(exc).__name__}: {exc}"
                ) from None
            except OSError as exc:
                raise ServiceError(
                    f"sweep server unreachable at {self.base_url}: {exc}"
                ) from None
        results: list[dict[str, np.ndarray]] = []
        for index, (status, ctype, body) in enumerate(responses):
            try:
                results.append(self._decode_compute_response(status, ctype, body))
            except ServiceError as exc:
                raise ServiceError(
                    f"pipelined request {index} of {len(responses)} failed: {exc}"
                ) from None
        return results

    def allocation_curve(
        self,
        machine: str,
        stencil: str,
        kind: str,
        grid_sides: Any,
        t_flop: float = DEFAULT_T_FLOP,
        max_processors: float | None = None,
        integer: bool = False,
    ) -> Any:
        """The daemon-served :class:`repro.batch.AllocationCurve`."""
        from repro.batch.analysis import AllocationCurve
        from repro.stencils.perimeter import PartitionKind

        arrays = self.compute(
            allocation_payload(
                machine, stencil, kind, grid_sides, t_flop, max_processors, integer
            )
        )
        return AllocationCurve.from_arrays(arrays, PartitionKind(kind))

    def plan(self, machine: str, n: int, grid: Any | None = None) -> dict[str, np.ndarray]:
        return self.compute(plan_payload(machine, n, grid))

    def sweep(
        self,
        grid_sides: Any,
        processors: Any,
        machines: Any,
        stencil: str = "5-point",
        kind: str = "square",
        t_flop: float = DEFAULT_T_FLOP,
    ) -> dict[str, np.ndarray]:
        """Cycle-time surfaces by machine name (one array per machine)."""
        return self.compute(
            sweep_payload(grid_sides, processors, machines, stencil, kind, t_flop)
        )

    def sim_sweep(
        self,
        machine: str,
        n: int,
        n_processors: int,
        stencil: str = "5-point",
        kind: str = "square",
        *,
        seeds: Any | None = None,
        replicas: int | None = None,
        seed: int = 0,
        t_flop: float = DEFAULT_T_FLOP,
        mode: str = "barrier",
        jitter: float = 0.0,
    ) -> dict[str, np.ndarray]:
        """Daemon-served replica batch: per-seed cycle times, bit-exact.

        Pass an explicit ``seeds`` list, or the ``replicas``/``seed``
        shorthand for consecutive seeds — the same ensemble the offline
        :func:`repro.batch.sim.simulate_replicas` produces, byte for
        byte.
        """
        return self.compute(
            sim_sweep_payload(
                machine, n, n_processors, stencil, kind,
                seeds=seeds, replicas=replicas, seed=seed,
                t_flop=t_flop, mode=mode, jitter=jitter,
            )
        )

    def sim_validate(
        self,
        machine: str,
        n: int,
        processors: Any,
        stencil: str = "5-point",
        kind: str = "square",
        t_flop: float = DEFAULT_T_FLOP,
        mode: str = "barrier",
    ) -> dict[str, np.ndarray]:
        """Daemon-served validation sweep: analytic vs simulated columns."""
        return self.compute(
            sim_validate_payload(machine, n, processors, stencil, kind, t_flop, mode)
        )

    # ------------------------------------------------------- shared store API

    def cache_get(self, key: str) -> dict[str, np.ndarray] | None:
        accept = (
            f"{FRAME_CONTENT_TYPE}, application/octet-stream"
            if self.binary
            else "application/octet-stream"
        )
        status, ctype, body = self._request(f"/v1/cache/{key}", accept=accept)
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(f"cache fetch failed ({status}) for {key}")
        if ctype.startswith(FRAME_CONTENT_TYPE):
            try:
                arrays, _meta = decode_frame(body)
            except FrameError:
                # A torn response is a miss, same as a corrupt local file.
                return None
            self._note_frames(True)
            return arrays
        try:
            with np.load(io.BytesIO(body), allow_pickle=False) as npz:
                return {name: npz[name] for name in npz.files}
        except Exception:
            return None

    def cache_put(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        if self.binary and self._frames_usable():
            status, _ctype, _body = self._request(
                f"/v1/cache/{key}",
                frame_bytes(arrays),
                method="PUT",
                content_type=FRAME_CONTENT_TYPE,
                idempotent=False,
            )
            if status == 200:
                self._note_frames(True)
                return
            if not (status == 400 and self._frames_unknown()):
                raise ServiceError(f"cache store failed ({status}) for {key}")
            # An old server rejected the frame body: remember, fall back.
            self._note_frames(False)
        buffer = io.BytesIO()
        np.savez(buffer, **dict(arrays))
        status, _ctype, _body = self._request(
            f"/v1/cache/{key}",
            buffer.getvalue(),
            method="PUT",
            content_type="application/octet-stream",
            idempotent=False,
        )
        if status != 200:
            raise ServiceError(f"cache store failed ({status}) for {key}")


class RemoteSweepCache(SweepCache):
    """A :class:`SweepCache` whose slow tier is a running sweep server.

    Lookups try local memory first, then ``GET /v1/cache/<key>`` —
    remote answers count as ``disk_hits`` (the shared-store tier) in
    this cache's *own* :class:`~repro.batch.cache.CacheStats`, so a
    worker process routed through the daemon still reports true totals
    instead of undercounting hits that happened server-side.  Stores
    land in local memory and are pushed to the daemon, where every
    other worker (and the daemon's compute path itself) can hit them.

    The transport rides the client's keep-alive pool and binary-frame
    negotiation automatically.  Retries extend to PUTs here
    (``retry_non_idempotent=True``): the store is content-addressed, so
    replaying a cache insert is harmless by construction.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 120.0,
        max_bytes: int | None = None,
        pool_size: int = 4,
        retries: int = 2,
        backoff_s: float = 0.05,
        binary: bool = True,
    ) -> None:
        super().__init__(cache_dir=None, max_bytes=max_bytes)
        self.client = ServiceClient(
            base_url,
            timeout=timeout,
            pool_size=pool_size,
            retries=retries,
            backoff_s=backoff_s,
            retry_non_idempotent=True,
            binary=binary,
        )

    def _disk_fetch(self, key: str) -> dict[str, np.ndarray] | None:
        return self.client.cache_get(key)

    def _disk_put(self, key: str, value: Mapping[str, np.ndarray]) -> None:
        self.client.cache_put(key, value)
