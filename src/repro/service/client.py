"""Clients for the sweep server: typed requests and the remote cache tier.

:class:`ServiceClient` wraps the daemon's HTTP surface with exact array
round-tripping; :class:`RemoteSweepCache` plugs the daemon in as a
:class:`~repro.batch.SweepCache` slow tier, which is how the experiment
runner's ``--server`` routes every worker's sweeps through one shared,
deduplicated store while still counting its own hits and misses (the
counts a report can aggregate — a daemon-side hit is invisible to a
worker's local stats otherwise).
"""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request
from typing import Any, Mapping

import numpy as np

from repro.batch.cache import SweepCache
from repro.core.parameters import DEFAULT_T_FLOP
from repro.errors import ReproError
from repro.service.schema import (
    allocation_payload,
    decode_arrays,
    plan_payload,
    sweep_payload,
)

__all__ = ["ServiceClient", "RemoteSweepCache", "ServiceError"]


class ServiceError(ReproError, RuntimeError):
    """The sweep server rejected a request or could not be reached."""


class ServiceClient:
    """JSON-over-HTTP client for a running :class:`~repro.service.SweepServer`."""

    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: How the server answered the most recent compute call —
        #: ``memory``/``disk``/``coalesced``/``batched``/``computed``.
        self.last_served: str | None = None

    # ------------------------------------------------------------- transport

    def _request(
        self,
        path: str,
        data: bytes | None = None,
        method: str = "GET",
        content_type: str | None = None,
    ) -> tuple[int, bytes]:
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method
        )
        if content_type is not None:
            request.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"sweep server unreachable at {self.base_url}: {exc.reason}"
            ) from None

    def _json(
        self, path: str, payload: Mapping[str, Any] | None = None, method: str = "GET"
    ) -> dict[str, Any]:
        data = None if payload is None else json.dumps(payload).encode()
        status, body = self._request(
            path, data, method=method, content_type="application/json"
        )
        try:
            decoded = json.loads(body)
        except json.JSONDecodeError:
            raise ServiceError(
                f"sweep server returned non-JSON ({status}) for {path}"
            ) from None
        if status != 200 or decoded.get("status") != "ok":
            raise ServiceError(
                decoded.get("error", f"sweep server error {status} for {path}")
            )
        return decoded

    # ------------------------------------------------------------ endpoints

    def health(self) -> dict[str, Any]:
        return self._json("/healthz")

    def stats(self) -> dict[str, Any]:
        return self._json("/v1/stats")

    def compute(self, payload: Mapping[str, Any]) -> dict[str, np.ndarray]:
        """POST one request; returns the named arrays, bit-exact."""
        response = self._json("/v1/compute", payload, method="POST")
        self.last_served = response.get("served")
        return decode_arrays(response["arrays"])

    def allocation_curve(
        self,
        machine: str,
        stencil: str,
        kind: str,
        grid_sides: Any,
        t_flop: float = DEFAULT_T_FLOP,
        max_processors: float | None = None,
        integer: bool = False,
    ):
        """The daemon-served :class:`repro.batch.AllocationCurve`."""
        from repro.batch.analysis import AllocationCurve
        from repro.stencils.perimeter import PartitionKind

        arrays = self.compute(
            allocation_payload(
                machine, stencil, kind, grid_sides, t_flop, max_processors, integer
            )
        )
        return AllocationCurve.from_arrays(arrays, PartitionKind(kind))

    def plan(self, machine: str, n: int, grid: Any | None = None) -> dict[str, np.ndarray]:
        return self.compute(plan_payload(machine, n, grid))

    def sweep(
        self,
        grid_sides: Any,
        processors: Any,
        machines: Any,
        stencil: str = "5-point",
        kind: str = "square",
        t_flop: float = DEFAULT_T_FLOP,
    ) -> dict[str, np.ndarray]:
        """Cycle-time surfaces by machine name (one array per machine)."""
        return self.compute(
            sweep_payload(grid_sides, processors, machines, stencil, kind, t_flop)
        )

    # ------------------------------------------------------- shared store API

    def cache_get(self, key: str) -> dict[str, np.ndarray] | None:
        status, body = self._request(f"/v1/cache/{key}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(f"cache fetch failed ({status}) for {key}")
        try:
            with np.load(io.BytesIO(body), allow_pickle=False) as npz:
                return {name: npz[name] for name in npz.files}
        except Exception:
            # A torn response is a miss, same as a corrupt local file.
            return None

    def cache_put(self, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        buffer = io.BytesIO()
        np.savez(buffer, **dict(arrays))
        status, body = self._request(
            f"/v1/cache/{key}",
            buffer.getvalue(),
            method="PUT",
            content_type="application/octet-stream",
        )
        if status != 200:
            raise ServiceError(f"cache store failed ({status}) for {key}")


class RemoteSweepCache(SweepCache):
    """A :class:`SweepCache` whose slow tier is a running sweep server.

    Lookups try local memory first, then ``GET /v1/cache/<key>`` —
    remote answers count as ``disk_hits`` (the shared-store tier) in
    this cache's *own* :class:`~repro.batch.cache.CacheStats`, so a
    worker process routed through the daemon still reports true totals
    instead of undercounting hits that happened server-side.  Stores
    land in local memory and are pushed to the daemon, where every
    other worker (and the daemon's compute path itself) can hit them.
    """

    def __init__(
        self, base_url: str, timeout: float = 120.0, max_bytes: int | None = None
    ) -> None:
        super().__init__(cache_dir=None, max_bytes=max_bytes)
        self.client = ServiceClient(base_url, timeout=timeout)

    def _disk_fetch(self, key: str) -> dict[str, np.ndarray] | None:
        return self.client.cache_get(key)

    def _disk_put(self, key: str, value: Mapping[str, np.ndarray]) -> None:
        self.client.cache_put(key, value)
