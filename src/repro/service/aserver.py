"""The asyncio transport for the sweep service: ``--backend asyncio``.

The threaded backend (:class:`~repro.service.server.SweepServer`) pays
one OS thread per connection — fine for tens of clients, fatal for the
thousands of mostly-idle keep-alive sockets a fleet of pooled clients
holds open.  This module serves the *same* :class:`ServiceCore` (same
routes, same frame codec, same cache/coalescing/micro-batching, byte
for byte) from a single event loop:

* **The loop owns every socket.**  :class:`_Connection` is an
  ``asyncio.Protocol``; an incremental HTTP/1.1 parser
  (:class:`_RequestParser`) accepts partial reads and multiple
  pipelined requests per ``data_received`` buffer, so ten thousand idle
  connections cost file descriptors and parser state, not threads.
* **Compute runs on a bounded pool.**  Each parsed request is handed to
  a ``ThreadPoolExecutor`` (``workers`` threads, total — not per
  connection) via ``run_in_executor``; the loop never blocks on the
  cache, the planner, or NumPy.
* **Pipelined responses keep request order.**  HTTP/1.1 pipelining lets
  a client send N requests before reading one response; responses MUST
  come back in request order.  Each connection keeps an ordered queue
  of response futures and a single writer task that awaits the head —
  requests *compute* concurrently on the pool but *serialize* onto the
  socket in arrival order.
* **Backpressure, not buffering.**  When a connection's in-flight
  window reaches ``max_pipeline``, the transport stops reading
  (``pause_reading``) until the writer catches up — a client blasting
  requests cannot balloon server memory.
* **Zero-copy frame writes.**  Binary-frame responses reach the socket
  as the same ``memoryview`` chunks :func:`repro.service.frame.encode_frame`
  produced — each cached array's buffer is handed to
  ``transport.write`` directly; small responses gather into one write
  (warm hits are latency-bound on syscalls, not bandwidth).

Lifecycle mirrors the threaded backend: ``read_timeout_s`` reaps idle
and half-open connections (slowloris hardening), and shutdown stops
accepting, 503s new requests, drains in-flight ones (responses written,
not just computed) within ``drain_timeout_s``, then flushes the cache.
"""

from __future__ import annotations

import asyncio
import signal
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ReproError
from repro.service.server import (
    DEFAULT_DRAIN_TIMEOUT_S,
    DEFAULT_PORT,
    DEFAULT_READ_TIMEOUT_S,
    Response,
    ServiceCore,
)

__all__ = ["AsyncSweepServer", "DEFAULT_WORKERS", "DEFAULT_MAX_PIPELINE"]

#: Compute threads shared by every connection — the whole point: the
#: thread count is a function of the worker pool, not the client count.
DEFAULT_WORKERS = 8

#: Per-connection in-flight request window; past it the transport stops
#: reading until responses drain (HTTP/1.1 pipelining backpressure).
DEFAULT_MAX_PIPELINE = 64

#: A request head (request line + headers) larger than this is not a
#: request — 431 and hang up.
_MAX_HEAD_BYTES = 64 * 1024

#: Largest accepted request body (cache PUTs of big sweeps included).
_MAX_BODY_BYTES = 256 * 2**20

#: Bodies at most this large are gathered into one ``transport.write``;
#: larger ones hand each chunk (the arrays' own buffers) to the
#: transport individually.
_GATHER_BYTES = 256 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


def _head_bytes(response: Response) -> bytes:
    """The response head.  Bodies, not heads, carry the parity contract."""
    head = (
        f"HTTP/1.1 {response.status} {_REASONS.get(response.status, 'Unknown')}\r\n"
        "Server: repro-sweepd/1\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {response.content_length}\r\n"
    )
    if response.close:
        head += "Connection: close\r\n"
    return (head + "\r\n").encode("ascii")


class _HttpError(Exception):
    """A protocol violation: answer ``status`` and close the connection."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _Request:
    """One fully parsed request, ready for :meth:`ServiceCore.handle_request`."""

    __slots__ = ("method", "path", "headers", "body", "close")

    def __init__(
        self,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
        close: bool,
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.close = close


class _RequestParser:
    """Incremental HTTP/1.1 request parser.

    ``feed`` accepts arbitrary byte slices — half a header, three
    pipelined requests and the start of a fourth, a body split across
    reads — and returns every request completed so far.  State between
    calls is the unconsumed buffer plus the half-parsed head, so memory
    is bounded by one request, not the connection's history.

    Structural violations raise :class:`_HttpError`; the connection
    answers it and closes (parser state is unrecoverable mid-stream).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._head: tuple[str, str, dict[str, str], int, bool] | None = None

    @property
    def mid_request(self) -> bool:
        """Bytes of an unfinished request are sitting in the buffer."""
        return bool(self._buffer) or self._head is not None

    def feed(self, data: bytes) -> list[_Request]:
        self._buffer += data
        requests: list[_Request] = []
        while True:
            request = self._parse_one()
            if request is None:
                return requests
            requests.append(request)

    def _parse_one(self) -> _Request | None:
        if self._head is None:
            end = self._buffer.find(b"\r\n\r\n")
            if end < 0:
                if len(self._buffer) > _MAX_HEAD_BYTES:
                    raise _HttpError(431, "request head exceeds 64 KiB")
                return None
            self._head = self._parse_head(bytes(self._buffer[:end]))
            del self._buffer[: end + 4]
        method, path, headers, body_len, close = self._head
        if len(self._buffer) < body_len:
            return None
        body = bytes(self._buffer[:body_len])
        del self._buffer[:body_len]
        self._head = None
        return _Request(method, path, headers, body, close)

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict[str, str], int, bool]:
        try:
            lines = head.decode("latin-1").split("\r\n")
        except UnicodeDecodeError:  # latin-1 never fails; keep mypy honest
            raise _HttpError(400, "undecodable request head") from None
        parts = lines[0].split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, path, version = parts
        if not version.startswith("HTTP/1."):
            raise _HttpError(505, f"unsupported protocol {version!r}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if not sep or not name or name != name.strip():
                raise _HttpError(400, f"malformed header line {line!r}")
            # Duplicate headers: last wins, matching http.client's
            # behaviour for the headers this service reads.
            headers[name.lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _HttpError(501, "chunked request bodies are not supported")
        raw_length = headers.get("content-length", "0")
        try:
            body_len = int(raw_length)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length {raw_length!r}") from None
        if body_len < 0:
            raise _HttpError(400, f"bad Content-Length {raw_length!r}")
        if body_len > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body exceeds the 256 MiB limit")
        connection = headers.get("connection", "").lower()
        close = "close" in connection or (
            version == "HTTP/1.0" and "keep-alive" not in connection
        )
        return method, path, headers, body_len, close


class _Connection(asyncio.Protocol):
    """One client connection: parse, dispatch, write back in order.

    Everything here runs on the event loop thread except the compute
    itself — request handling is posted to the server's executor, and
    the per-connection ``_pending`` queue (request-order futures) is
    loop-confined state, so no locks are needed or taken.
    """

    def __init__(self, app: "AsyncSweepServer") -> None:
        self.app = app
        self.transport: asyncio.Transport | None = None
        self.parser = _RequestParser()
        #: Responses owed to this connection, in request order.  Each
        #: entry is ``(future, owes_end)`` — ``owes_end`` marks futures
        #: whose request was admitted and must be balanced with
        #: ``end_request`` once the response hits the socket.
        self._pending: deque[tuple[asyncio.Future[Response], bool]] = deque()
        self._writer: asyncio.Task[None] | None = None
        self._paused = False
        self._broken = False
        self._last_activity = 0.0
        self._idle_handle: asyncio.TimerHandle | None = None

    # ------------------------------------------------------------- lifecycle

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        assert isinstance(transport, asyncio.Transport)
        self.transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # e.g. a unix socket in tests; Nagle is TCP-only
        loop = asyncio.get_running_loop()
        self._last_activity = loop.time()
        self.app._register(self)
        if self.app.read_timeout_s > 0:
            self._idle_handle = loop.call_later(
                self.app.read_timeout_s, self._check_idle
            )

    def connection_lost(self, exc: Exception | None) -> None:
        self.app._unregister(self)
        if self._idle_handle is not None:
            self._idle_handle.cancel()
            self._idle_handle = None
        self.transport = None
        # The writer task keeps draining _pending: it awaits each
        # future (consuming exceptions) and balances end_request, it
        # just skips the socket writes.

    def _check_idle(self) -> None:
        """Reap idle/half-open sockets: the slowloris hardening."""
        if self.transport is None:
            return
        loop = asyncio.get_running_loop()
        idle = loop.time() - self._last_activity
        if idle >= self.app.read_timeout_s and not self._pending:
            if self.parser.mid_request:
                # A half-sent request died mid-flight; tell the client
                # why before hanging up (best-effort).
                response = self.app.error_response(
                    "timed out waiting for the rest of the request", 408, close=True
                )
                self.transport.write(_head_bytes(response))
                self.transport.write(response.body_bytes())
            self.transport.close()
            return
        self._idle_handle = loop.call_later(
            max(self.app.read_timeout_s - idle, 0.01), self._check_idle
        )

    # ------------------------------------------------------------------ read

    def data_received(self, data: bytes) -> None:
        if self._broken or self.transport is None:
            return
        loop = asyncio.get_running_loop()
        self._last_activity = loop.time()
        try:
            requests = self.parser.feed(data)
        except _HttpError as exc:
            # Parser state is unrecoverable; answer (after anything
            # already queued) and close.  Stop reading — whatever else
            # the client sends cannot be framed.
            self._broken = True
            if not self._paused:
                self.transport.pause_reading()
                self._paused = True
            self._enqueue_ready(
                self.app.error_response(exc.message, exc.status, close=True),
                owes_end=False,
            )
            return
        for request in requests:
            self._dispatch(request, loop)

    def _dispatch(self, request: _Request, loop: asyncio.AbstractEventLoop) -> None:
        if not self.app.begin_request():
            self._enqueue_ready(
                self.app.error_response("server is draining", 503, close=True),
                owes_end=False,
            )
            return
        future = loop.run_in_executor(self.app.executor, self._work, request)
        if request.close:
            future = self._with_close(future, loop)
        self._enqueue(future, owes_end=True)

    def _work(self, request: _Request) -> Response:
        """Executor-side: the shared core does all the real work."""
        return self.app.handle_request(
            request.method, request.path, request.headers, request.body
        )

    @staticmethod
    def _with_close(
        future: asyncio.Future[Response], loop: asyncio.AbstractEventLoop
    ) -> asyncio.Future[Response]:
        """Honor the request's ``Connection: close`` on its response."""

        async def wrap() -> Response:
            response = await future
            response.close = True
            return response

        return loop.create_task(wrap())

    # ----------------------------------------------------------------- write

    def _enqueue_ready(self, response: Response, owes_end: bool) -> None:
        future: asyncio.Future[Response] = asyncio.get_running_loop().create_future()
        future.set_result(response)
        self._enqueue(future, owes_end=owes_end)

    def _enqueue(self, future: asyncio.Future[Response], owes_end: bool) -> None:
        self._pending.append((future, owes_end))
        if (
            not self._paused
            and self.transport is not None
            and len(self._pending) >= self.app.max_pipeline
        ):
            # In-flight window full: stop reading until the writer
            # catches up.  The client's send() backs up instead of the
            # server's memory.
            self.transport.pause_reading()
            self._paused = True
        if self._writer is None:
            self._writer = asyncio.get_running_loop().create_task(
                self._write_responses()
            )

    async def _write_responses(self) -> None:
        """The per-connection writer: one response at a time, in order.

        Requests compute concurrently on the pool; this task alone
        touches the transport, so pipelined responses cannot interleave
        or reorder.
        """
        while self._pending:
            future, owes_end = self._pending[0]
            try:
                response = await future
            except (Exception, asyncio.CancelledError) as exc:
                # handle_request never raises; this is executor
                # teardown racing shutdown.  The connection is closing
                # anyway — answer 503 if the socket is still up.
                response = self.app.error_response(
                    f"request aborted: {type(exc).__name__}", 503, close=True
                )
            self._pending.popleft()
            transport = self.transport
            if transport is not None and not transport.is_closing():
                self._last_activity = asyncio.get_running_loop().time()
                head = _head_bytes(response)
                if response.content_length <= _GATHER_BYTES:
                    transport.write(head + response.body_bytes())
                else:
                    transport.write(head)
                    for chunk in response.chunks:
                        # memoryview chunks alias the cached arrays —
                        # the zero-copy path all the way down.
                        transport.write(chunk)
                if response.close:
                    transport.close()
            if owes_end:
                self.app.end_request()
            if (
                self._paused
                and self.transport is not None
                and len(self._pending) <= self.app.max_pipeline // 2
            ):
                self.transport.resume_reading()
                self._paused = False
        # No await between the emptiness check and this hand-off, so a
        # data_received on the same loop cannot slip a request in
        # unnoticed: it would see _writer set and enqueue normally.
        self._writer = None

    @property
    def busy(self) -> bool:
        """Responses still owed (shutdown waits for these to flush)."""
        return bool(self._pending)


class AsyncSweepServer(ServiceCore):
    """``repro serve --backend asyncio``: the event-loop transport.

    Serves the same :class:`ServiceCore` as the threaded backend —
    byte-identical responses, identical counters — but connection
    scalability is decoupled from the thread count: the loop holds
    every socket, and ``workers`` executor threads bound the compute
    concurrency no matter how many clients connect.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port.
    workers:
        Compute threads shared by all connections.
    max_pipeline:
        Per-connection in-flight request window before the transport
        stops reading (pipelining backpressure).
    **core keyword arguments**:
        See :class:`ServiceCore`.
    """

    backend = "asyncio"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_dir: str | None = None,
        max_cache_mb: float | None = None,
        jobs: int = 1,
        batch_window_s: float = 0.005,
        compute_timeout_s: float = 600.0,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
        workers: int = DEFAULT_WORKERS,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
    ) -> None:
        super().__init__(
            cache_dir=cache_dir,
            max_cache_mb=max_cache_mb,
            jobs=jobs,
            batch_window_s=batch_window_s,
            compute_timeout_s=compute_timeout_s,
            read_timeout_s=read_timeout_s,
            drain_timeout_s=drain_timeout_s,
        )
        self.workers = max(1, int(workers))
        self.max_pipeline = max(1, int(max_pipeline))
        self.executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-sweepd"
        )
        self._bind = (host, port)
        self._address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._connections: set[_Connection] = set()  # loop-confined
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread: threading.Thread | None = None

    # ---------------------------------------------------------------- address

    @property
    def host(self) -> str:
        return self._address[0] if self._address is not None else self._bind[0]

    @property
    def port(self) -> int:
        return self._address[1] if self._address is not None else self._bind[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------- loop-confined registry

    def _register(self, connection: _Connection) -> None:
        self._connections.add(connection)

    def _unregister(self, connection: _Connection) -> None:
        self._connections.discard(connection)

    @property
    def connection_count(self) -> int:
        """Open connections right now (the bench's scalability figure)."""
        return len(self._connections)

    # ---------------------------------------------------------------- running

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`shutdown` (or SIGTERM/SIGINT)."""
        asyncio.run(self._run_loop())

    async def _run_loop(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        handled_signals: list[signal.Signals] = []
        try:
            server = await loop.create_server(
                lambda: _Connection(self), self._bind[0], self._bind[1]
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._stop_event.set)
                handled_signals.append(signum)
            except (NotImplementedError, ValueError, RuntimeError):
                break  # not the main thread (start_background) or no unix signals
        sockname = server.sockets[0].getsockname()
        self._address = (str(sockname[0]), int(sockname[1]))
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            for signum in handled_signals:
                loop.remove_signal_handler(signum)
            # 1. Stop accepting.  2. Drain (new requests 503 while
            # in-flight ones finish computing AND writing — end_request
            # fires after the socket write).  3. Close what remains.
            server.close()
            await server.wait_closed()
            await loop.run_in_executor(None, self.drain)
            deadline = loop.time() + 1.0
            while any(c.busy for c in self._connections) and loop.time() < deadline:
                await asyncio.sleep(0.01)
            for connection in list(self._connections):
                if connection.transport is not None:
                    connection.transport.close()
            self.executor.shutdown(wait=False)
            self.flush()
            self._loop = None
            self._stop_event = None

    def start_background(self) -> "AsyncSweepServer":
        """Serve on a daemon thread (tests, benches, the quickstart)."""
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ReproError("asyncio sweep server did not start within 30 s")
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5.0)
            self._thread = None
            raise ReproError(f"asyncio sweep server failed to start: {error}")
        return self

    def shutdown(self) -> None:
        """Graceful stop from any thread: drain, flush, join the loop."""
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # the loop finished on its own in the meantime
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def close(self, drain_timeout_s: float | None = None) -> None:
        """Alias for :meth:`shutdown` (the threaded backend's surface).

        The asyncio teardown already drains and flushes inside
        ``serve_forever``; the explicit ``drain_timeout_s`` knob is
        accepted for signature parity and applied via the instance
        default.
        """
        if drain_timeout_s is not None:
            self.drain_timeout_s = float(drain_timeout_s)
        self.shutdown()

    def __enter__(self) -> "AsyncSweepServer":
        return self.start_background()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
