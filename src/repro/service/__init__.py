"""repro.service — a long-running sweep server and its clients.

The paper's deliverable is a *function*: ``(problem size, machine,
stencil) → optimal allocation and speedup``.  This package serves that
function over JSON-over-HTTP with nothing beyond the standard library:

* :class:`SweepServer` (``repro serve``) — a threaded daemon holding
  one shared, size-bounded :class:`repro.batch.SweepCache`.  Identical
  concurrent requests coalesce on their cache fingerprint (one compute,
  many answers), and *compatible* allocation requests — same machine,
  stencil, partition kind, and tolerances, different grid axes — are
  micro-batched onto a single vectorized analysis call whose
  per-request slices are bit-identical to computing each alone.
* :class:`AsyncSweepServer` (``repro serve --backend asyncio``) — the
  same service core on an ``asyncio`` event loop: thousands of idle
  keep-alive connections without per-connection threads, HTTP/1.1
  pipelining with in-order responses and read backpressure, compute on
  a bounded thread pool.  Responses are byte-identical to the threaded
  backend's.
* :class:`ServiceClient` — typed requests (allocation curves, capacity
  plans, raw sweeps) with exact ``float`` round-tripping, so a curve
  fetched from the daemon equals the offline computation byte for byte.
  Transport is a thread-safe keep-alive connection pool with stale-
  socket replay and bounded exponential-backoff retry; array responses
  negotiate the zero-copy binary frame (:mod:`repro.service.frame`,
  ``Accept: application/x-repro-frame``) and fall back to base64-JSON
  against older servers transparently.
* :class:`RemoteSweepCache` — a :class:`~repro.batch.SweepCache` whose
  slow tier is the daemon instead of a local directory; the experiment
  runner's ``--server`` routes every worker's sweeps through one warm,
  deduplicated store and still reports true hit/miss totals.

Usage::

    # one terminal (or a background thread in tests):
    #   python -m repro serve --port 8733 --cache-dir results/cache \
    #       --max-cache-mb 64
    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8733")
    curve = client.allocation_curve(
        "paper-bus", "5-point", "square", range(64, 4096, 64), integer=True
    )

The server answers from the shared cache whenever it can; the
response's ``served`` field says how (``memory``/``disk``/``coalesced``
/``batched``/``computed``).
"""

from repro.service.aserver import AsyncSweepServer
from repro.service.client import RemoteSweepCache, ServiceClient, ServiceError
from repro.service.frame import FRAME_CONTENT_TYPE, FrameError, decode_frame, encode_frame, frame_bytes
from repro.service.schema import decode_arrays, encode_arrays
from repro.service.server import ServiceCore, SweepServer

__all__ = [
    "FRAME_CONTENT_TYPE",
    "AsyncSweepServer",
    "FrameError",
    "RemoteSweepCache",
    "ServiceClient",
    "ServiceCore",
    "ServiceError",
    "SweepServer",
    "decode_arrays",
    "decode_frame",
    "encode_arrays",
    "encode_frame",
    "frame_bytes",
]
