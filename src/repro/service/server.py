"""The sweep server: a threaded daemon over one shared, bounded cache.

Request lifecycle for ``POST /v1/compute``:

1. The request canonicalizes to the *same* cache fingerprint the
   offline analysis layer uses, so a store warmed by CLI runs serves
   the daemon and vice versa (and bus presets sharing a closed form
   share entries — see :mod:`repro.batch.cache`).
2. A fingerprint hit answers straight from the shared
   :class:`~repro.batch.SweepCache` (``served: memory|disk``).
3. A miss consults the in-flight table: an identical request already
   computing means *wait, don't recompute* (``served: coalesced``).
4. Cold requests then enter the micro-batcher, which is the sweep-graph
   planner (:mod:`repro.graph`): each request is a lazy
   :class:`~repro.graph.nodes.Node`, and nodes that land within one
   batching window and share a fusion-compatibility fingerprint — same
   family, machine closed form, stencil, partition kind, scalars; only
   the axis differs — are planned together and fused onto a single
   vectorized evaluation over the union axis.  Every family batches
   this way (allocation curves *and* whole sweeps), not just
   allocations.  Each requester gets its own slice, stored under its
   own fingerprint (``served: batched`` for riders, ``computed`` for
   the one thread that did the work).  Slices are bit-identical to
   computing each request alone — every fusable family is elementwise
   in its axis.

Endpoints::

    GET  /healthz             liveness + supported protocols
    GET  /v1/stats            cache + coalescing counters
    GET  /v1/cache/<key>      one entry (npz, or a binary frame when asked)
    PUT  /v1/cache/<key>      insert one entry (npz or binary-frame body)
    POST /v1/compute          allocation_curve | plan | sweep requests

The handler speaks HTTP/1.1 with keep-alive: every response carries a
``Content-Length``, so a client can hold one connection open across
requests instead of paying a TCP handshake per call.  Array-bearing
responses are negotiated: a request whose ``Accept`` names
``application/x-repro-frame`` gets the raw-bytes binary frame
(:mod:`repro.service.frame`) — the arrays' buffers are written straight
to the socket, no base64, no JSON number formatting — while everything
else gets the original JSON encoding, byte-identical to older servers.
"""

from __future__ import annotations

import io
import json
import re
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

import numpy as np

from repro.batch.cache import SweepCache, fingerprint, max_cache_bytes
from repro.batch.engine import SweepSpec
from repro.errors import InvalidParameterError, ReproError
from repro.graph import nodes as graph_nodes
from repro.graph.executors import NumpyExecutor
from repro.graph.nodes import Node
from repro.graph.planner import plan as plan_graph
from repro.service.frame import FRAME_CONTENT_TYPE, FrameError, decode_frame, encode_frame
from repro.service.schema import (
    encode_arrays,
    parse_allocation,
    parse_plan,
    parse_sweep,
)

__all__ = ["SweepServer", "DEFAULT_PORT"]

DEFAULT_PORT = 8733

#: Fingerprints are SHA-256 hex digests; anything else never names a
#: cache entry and must not reach the filesystem layer.
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

#: Union axes at least this long are worth sharding over the server's
#: worker pool (mirrors repro.batch.shard.MIN_CHUNK economics); handed
#: to the NumPy executor as its shard threshold.
_SHARD_THRESHOLD = 256

#: Request-body → fingerprint memo entries kept (LRU).  Bodies are a
#: few KiB, so the memo is ~1–2 MiB at the cap — cheap insurance that a
#: warm hit never re-parses and re-hashes an identical request.
_REQUEST_KEY_MEMO_MAX = 512


class _Flight:
    """One in-flight computation: late twins wait on it instead of working."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: dict[str, np.ndarray] | None = None
        self.error: str | None = None


class SweepServer:
    """``repro serve``: plan/optimize/sweep answers over a shared cache.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests, the
        benchmark harness).
    cache_dir, max_cache_mb:
        The shared store: optional ``.npz`` directory and the per-tier
        LRU bound (MiB) — both forwarded to :class:`SweepCache`.
    jobs:
        Worker processes for sharding large micro-batched axes; 1 keeps
        every compute in the serving thread.
    batch_window_s:
        How long the first cold allocation request of a compatible
        group waits for co-batchable traffic before computing.  Zero
        disables micro-batching (coalescing still applies).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_dir: str | None = None,
        max_cache_mb: float | None = None,
        jobs: int = 1,
        batch_window_s: float = 0.005,
        compute_timeout_s: float = 600.0,
    ) -> None:
        self.cache = SweepCache(cache_dir, max_bytes=max_cache_bytes(max_cache_mb))
        self.jobs = max(1, int(jobs))
        self.batch_window_s = float(batch_window_s)
        self.compute_timeout_s = float(compute_timeout_s)
        self.started = time.time()
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        #: Exact request bytes → cache fingerprint, learned on first
        #: compute.  The warm-hit fast path: identical bodies skip JSON
        #: parsing, validation, and fingerprint hashing entirely.
        self._request_keys: OrderedDict[bytes, str] = OrderedDict()  # guarded-by: _request_keys_lock
        self._request_keys_lock = threading.Lock()
        self._buckets: dict[tuple, list] = {}
        self._batch_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "hits": 0,  # /v1/compute answered straight from the cache
            "computed": 0,
            "coalesced": 0,
            "batched": 0,
        }
        self._counters_lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ---------------------------------------------------------------- address

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ---------------------------------------------------------------- running

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start_background(self) -> "SweepServer":
        """Serve on a daemon thread (tests, benches, the quickstart)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self) -> None:
        """Release the listening socket (after ``serve_forever`` returns)."""
        self._httpd.server_close()

    def __enter__(self) -> "SweepServer":
        return self.start_background()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------ bookkeeping

    def _count(self, counter: str) -> None:
        with self._counters_lock:
            self._counters[counter] += 1

    def stats_payload(self) -> dict[str, Any]:
        with self._counters_lock:
            counters = dict(self._counters)
        # Only compute-path outcomes feed the ratio: shared-store GET/PUT
        # traffic (runner workers) also moves the cache's own hit
        # counters, which would make a hits/requests quotient meaningless.
        dedup = counters["hits"] + counters["coalesced"] + counters["batched"]
        # A locked snapshot, not a field-by-field read of cache.stats: a
        # concurrent compute landing mid-read would tear the counters
        # (hits moved but misses not yet, dedup ratio off by one).
        snapshot = self.cache.stats_snapshot()
        return {
            "uptime_s": time.time() - self.started,
            "cache": snapshot,
            "entries": len(self.cache),
            "max_bytes": self.cache.max_bytes,
            "cache_dir": None if self.cache.cache_dir is None else str(self.cache.cache_dir),
            "counters": counters,
            "dedup_ratio": (dedup / counters["requests"]) if counters["requests"] else 0.0,
            "planner": {
                "nodes_planned": snapshot["nodes_planned"],
                "siblings_fused": snapshot["siblings_fused"],
                "subgraphs_deduped": snapshot["subgraphs_deduped"],
                "executor_runs": snapshot["executor_runs"],
            },
        }

    # -------------------------------------------------------------- computing

    def handle_compute(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One ``/v1/compute`` request as the JSON response body."""
        arrays, served = self.compute_arrays(payload)
        return {"status": "ok", "served": served, "arrays": encode_arrays(arrays)}

    def compute_arrays(
        self, payload: Mapping[str, Any]
    ) -> tuple[dict[str, np.ndarray], str]:
        """Dispatch one compute request; returns ``(arrays, served)``.

        Protocol-agnostic: the handler encodes the result as JSON or as
        a binary frame depending on what the client accepts.
        """
        arrays, served, _key = self.compute_with_key(payload)
        return arrays, served

    def compute_with_key(
        self, payload: Mapping[str, Any]
    ) -> tuple[dict[str, np.ndarray], str, str]:
        """``(arrays, served, fingerprint)`` for one compute request.

        The fingerprint is what the request-body memo learns: a later
        byte-identical request can be answered by one cache lookup.
        """
        kind = payload.get("kind")
        self._count("requests")
        if kind == "allocation_curve":
            args = parse_allocation(payload)
            node = graph_nodes.allocation_curve(
                args["machine"],
                args["stencil"],
                args["kind"],
                args["grid_sides"],
                args["t_flop"],
                args["max_processors"],
                args["integer"],
            )
            arrays, served = self._serve_node(node)
            return arrays, served, node.key
        if kind == "plan":
            return self._serve_plan(parse_plan(payload))
        if kind == "sweep":
            args = parse_sweep(payload)
            spec = SweepSpec.across_catalog(
                args["grid_sides"],
                args["processors"],
                machines=args["machines"],
                stencil=args["stencil"],
                kind=args["kind"],
                t_flop=args["t_flop"],
            )
            node = graph_nodes.sweep(spec)
            arrays, served = self._serve_node(node)
            return arrays, served, node.key
        raise InvalidParameterError(
            f"unknown request kind {kind!r}; expected allocation_curve, plan, or sweep"
        )

    # The warm-hit fast path -------------------------------------------------

    def fast_serve(
        self, body: bytes
    ) -> tuple[dict[str, np.ndarray], str] | None:
        """Serve a byte-identical repeat request by cache lookup alone.

        ``None`` means the body is unknown (or its entry was evicted)
        and the full parse → fingerprint → serve pipeline must run.
        Counters move exactly as they would on the slow path's cache
        hit, so ``/v1/stats`` cannot tell the two apart.
        """
        with self._request_keys_lock:
            key = self._request_keys.get(body)
            if key is not None:
                self._request_keys.move_to_end(body)
        if key is None:
            return None
        arrays, level = self.cache.lookup_level(key)
        if arrays is None:
            return None
        self._count("requests")
        self._count("hits")
        return arrays, level

    def remember_request(self, body: bytes, key: str) -> None:
        """Memoize body → fingerprint after a successful full serve."""
        with self._request_keys_lock:
            self._request_keys[body] = key
            self._request_keys.move_to_end(body)
            while len(self._request_keys) > _REQUEST_KEY_MEMO_MAX:
                self._request_keys.popitem(last=False)

    def _serve_node(self, node: Node) -> tuple[dict[str, np.ndarray], str]:
        """Serve one graph leaf through cache → flights → planner fusion."""
        return self._serve(
            node.key,
            compute=None,
            batch=lambda key, flight: self._family_batch(key, node, flight),
        )

    def _serve(
        self,
        key: str,
        compute: Callable[[], Mapping[str, np.ndarray]] | None,
        batch: Callable[[str, _Flight], tuple[dict[str, np.ndarray], str]] | None = None,
    ) -> tuple[dict[str, np.ndarray], str]:
        """Cache → in-flight table → compute (or micro-batch) pipeline."""
        arrays, level = self.cache.lookup_level(key)
        if arrays is not None:
            self._count("hits")
            return arrays, level
        with self._flights_lock:
            flight = self._flights.get(key)
            owner = flight is None
            if owner:
                flight = _Flight()
                self._flights[key] = flight
        if not owner:
            if not flight.event.wait(self.compute_timeout_s):
                raise ReproError("timed out waiting for an in-flight twin request")
            if flight.error is not None:
                raise ReproError(flight.error)
            self._count("coalesced")
            assert flight.value is not None
            return flight.value, "coalesced"
        try:
            if batch is not None:
                value, served = batch(key, flight)
            else:
                assert compute is not None
                value = self.cache.store(key, compute())
                served = "computed"
                self._count("computed")
            flight.value = value
            return value, served
        except Exception as exc:
            flight.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.event.set()

    # The micro-batcher -----------------------------------------------------

    def _family_batch(
        self, key: str, node: Node, flight: _Flight
    ) -> tuple[dict[str, np.ndarray], str]:
        """Merge compatible cold requests of *any* family onto one plan.

        Buckets key on the node's ``(op, compat)`` — its family plus
        its fusion-compatibility fingerprint (machine closed form,
        stencil, partition kind, scalars; only the axis differs).  The
        bucket leader sleeps one batching window, gathers everyone who
        arrived, and hands all member nodes to the sweep-graph planner,
        which fuses them onto one vectorized evaluation over the union
        axis and stores each member's slice under its own fingerprint.
        ``lookup=False`` because the request pipeline already counted
        each member's miss — daemon hit/miss totals stay identical to
        the offline path.
        """
        compat = (node.op, node.compat)
        with self._batch_lock:
            bucket = self._buckets.setdefault(compat, [])
            leader = not bucket
            bucket.append((key, node, flight))
        if not leader:
            if not flight.event.wait(self.compute_timeout_s):
                raise ReproError("timed out waiting for the batch leader")
            if flight.error is not None:
                raise ReproError(flight.error)
            self._count("batched")
            assert flight.value is not None
            return flight.value, "batched"
        if self.batch_window_s > 0.0:
            time.sleep(self.batch_window_s)
        with self._batch_lock:
            members = self._buckets.pop(compat)
        try:
            results = plan_graph(
                [mnode for _, mnode, _ in members],
                cache=self.cache,
                executor=NumpyExecutor(
                    jobs=self.jobs, shard_threshold=_SHARD_THRESHOLD
                ),
                lookup=False,
            ).execute()
        except Exception as exc:
            message = f"{type(exc).__name__}: {exc}"
            for mkey, _, mflight in members:
                if mflight is not flight:
                    mflight.error = message
                    with self._flights_lock:
                        self._flights.pop(mkey, None)
                    mflight.event.set()
            raise
        self._count("computed")
        value = None
        for (mkey, _, mflight), stored in zip(members, results):
            if mflight is flight:
                value = stored
            else:
                mflight.value = stored
                with self._flights_lock:
                    self._flights.pop(mkey, None)
                mflight.event.set()
        assert value is not None
        return value, "computed"

    # Capacity plans --------------------------------------------------------

    def _serve_plan(
        self, args: Mapping[str, Any]
    ) -> tuple[dict[str, np.ndarray], str, str]:
        """Everything ``repro plan`` prints, as one fingerprinted bundle.

        The grid half reuses the offline CLI's ``("plan_grid", …)``
        request so daemon and command line share store entries; the
        whole bundle gets its own fingerprint for coalescing and warm
        repeats.
        """
        from repro.batch.analysis import max_useful_processors_curve
        from repro.batch.curves import minimal_grid_side_curve
        from repro.machines.bus import BusArchitecture
        from repro.stencils.library import ALL_STENCILS
        from repro.stencils.perimeter import PartitionKind

        machine = args["machine"]
        if not isinstance(machine, BusArchitecture):
            raise InvalidParameterError(
                f"{args['machine_name']} is not a bus: allocation is extremal, "
                "capacity-planning thresholds apply to buses"
            )
        n = args["n"]
        grid = args["grid"]
        request = (
            "service_plan",
            machine,
            int(n),
            None if grid is None else np.asarray(grid, dtype=float),
        )

        def compute() -> dict[str, np.ndarray]:
            max_useful = np.array(
                [
                    [
                        max_useful_processors_curve(
                            machine, stencil, kind, [n], cache=self.cache
                        )[0]
                        for kind in (PartitionKind.STRIP, PartitionKind.SQUARE)
                    ]
                    for stencil in ALL_STENCILS
                ]
            )
            out = {
                "n": np.array([n], dtype=int),
                "max_useful": max_useful,
                "stencils": np.asarray([s.name for s in ALL_STENCILS]),
            }
            if grid is None:
                defaults = np.array([8, 16, 32], dtype=int)
                out["default_processors"] = defaults
                out["default_sides"] = minimal_grid_side_curve(
                    machine, 1, 5.0, 1e-6, defaults, PartitionKind.SQUARE
                )
            else:
                # The same lazy node the CLI's --grid mode plans, so
                # daemon and command line share store entries.
                from repro.graph.planner import evaluate as graph_evaluate

                curves = graph_evaluate(
                    [graph_nodes.plan_grid(machine, grid)], cache=self.cache
                )[0]
                out["grid_processors"] = np.asarray(grid, dtype=int)
                out["grid_strip"] = curves[PartitionKind.STRIP.value]
                out["grid_square"] = curves[PartitionKind.SQUARE.value]
            return out

        key = fingerprint(request)
        arrays, served = self._serve(key, compute=compute)
        return arrays, served, key


# --------------------------------------------------------------------------
# HTTP plumbing
# --------------------------------------------------------------------------


#: Frames at most this large are coalesced into a single socket write;
#: a warm hit's latency is syscalls and packets, not memcpy.
_GATHER_BYTES = 256 * 1024


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-sweepd/1"
    protocol_version = "HTTP/1.1"
    #: Keep-alive clients wait for every response byte before the next
    #: request; letting Nagle buffer the tail of a response behind a
    #: delayed ACK turns a ~1 ms round trip into ~40 ms.
    disable_nagle_algorithm = True

    @property
    def app(self) -> SweepServer:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        pass  # the daemon is quiet; /v1/stats is the observability surface

    # ------------------------------------------------------------- responses

    def _send_json(self, payload: Mapping[str, Any], status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"status": "error", "error": message}, status)

    def _send_bytes(self, body: bytes) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _accepts_frame(self) -> bool:
        """Did the client negotiate the binary array frame?"""
        return FRAME_CONTENT_TYPE in (self.headers.get("Accept") or "")

    def _send_frame(
        self, arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
    ) -> None:
        """Write one binary frame: header, then each array's own buffer.

        The memoryview chunks alias the arrays — no base64, no JSON
        number formatting, no per-array ``bytes`` materialization.
        Small frames are gathered into one socket write (a warm hit is
        latency-bound on syscalls, not bandwidth); large ones stream
        chunk by chunk so a big sweep never doubles in memory.
        """
        chunks = encode_frame(arrays, meta)
        total = sum(len(c) for c in chunks)
        self.send_response(200)
        self.send_header("Content-Type", FRAME_CONTENT_TYPE)
        self.send_header("Content-Length", str(total))
        self.end_headers()
        if total <= _GATHER_BYTES:
            self.wfile.write(b"".join(bytes(c) for c in chunks))
        else:
            for chunk in chunks:
                self.wfile.write(chunk)

    def _send_arrays(self, arrays: Mapping[str, np.ndarray], served: str) -> None:
        if self._accepts_frame():
            self._send_frame(arrays, {"status": "ok", "served": served})
        else:
            self._send_json(
                {"status": "ok", "served": served, "arrays": encode_arrays(arrays)}
            )

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length)

    def _cache_key(self) -> str | None:
        key = self.path[len("/v1/cache/") :]
        return key if _KEY_RE.fullmatch(key) else None

    # --------------------------------------------------------------- methods

    def do_GET(self) -> None:
        if self.path == "/healthz":
            # ``protocols`` is the negotiation advertisement: a client
            # probing an old server will not find "frame" here.
            self._send_json(
                {
                    "status": "ok",
                    "service": "repro-sweepd",
                    "protocols": ["json", "frame"],
                }
            )
        elif self.path == "/v1/stats":
            self._send_json({"status": "ok", **self.app.stats_payload()})
        elif self.path.startswith("/v1/cache/"):
            key = self._cache_key()
            if key is None:
                self._send_error_json("malformed cache key", 400)
                return
            arrays, _level = self.app.cache.lookup_level(key)
            if arrays is None:
                self._send_error_json("no such entry", 404)
                return
            if self._accepts_frame():
                self._send_frame(arrays, {"status": "ok"})
                return
            buffer = io.BytesIO()
            np.savez(buffer, **arrays)
            self._send_bytes(buffer.getvalue())
        else:
            self._send_error_json(f"no route {self.path}", 404)

    def do_PUT(self) -> None:
        if not self.path.startswith("/v1/cache/"):
            self._send_error_json(f"no route {self.path}", 404)
            return
        key = self._cache_key()
        if key is None:
            self._send_error_json("malformed cache key", 400)
            return
        body = self._read_body()
        if (self.headers.get("Content-Type") or "").startswith(FRAME_CONTENT_TYPE):
            try:
                arrays, _meta = decode_frame(body)
            except FrameError as exc:
                self._send_error_json(str(exc), 400)
                return
        else:
            try:
                with np.load(io.BytesIO(body), allow_pickle=False) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            except Exception:
                self._send_error_json("body is not a readable .npz archive", 400)
                return
        self.app.cache.store(key, arrays)
        self._send_json({"status": "ok", "stored": key})

    def do_POST(self) -> None:
        if self.path != "/v1/compute":
            self._send_error_json(f"no route {self.path}", 404)
            return
        body = self._read_body()
        fast = self.app.fast_serve(body)
        if fast is not None:
            self._send_arrays(*fast)
            return
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            self._send_error_json(f"bad JSON body: {exc}", 400)
            return
        try:
            arrays, served, key = self.app.compute_with_key(payload)
        except InvalidParameterError as exc:
            self._send_error_json(str(exc), 400)
        except Exception as exc:  # compute failures are the server's 500s
            self._send_error_json(f"{type(exc).__name__}: {exc}", 500)
        else:
            self.app.remember_request(body, key)
            self._send_arrays(arrays, served)
