"""The sweep server: one service core, pluggable HTTP transports.

Request lifecycle for ``POST /v1/compute``:

1. The request canonicalizes to the *same* cache fingerprint the
   offline analysis layer uses, so a store warmed by CLI runs serves
   the daemon and vice versa (and bus presets sharing a closed form
   share entries — see :mod:`repro.batch.cache`).
2. A fingerprint hit answers straight from the shared
   :class:`~repro.batch.SweepCache` (``served: memory|disk``).
3. A miss consults the in-flight table: an identical request already
   computing means *wait, don't recompute* (``served: coalesced``).
4. Cold requests then enter the micro-batcher, which is the sweep-graph
   planner (:mod:`repro.graph`): each request is a lazy
   :class:`~repro.graph.nodes.Node`, and nodes that land within one
   batching window and share a fusion-compatibility fingerprint — same
   family, machine closed form, stencil, partition kind, scalars; only
   the axis differs — are planned together and fused onto a single
   vectorized evaluation over the union axis.  Every family batches
   this way (allocation curves *and* whole sweeps), not just
   allocations.  Each requester gets its own slice, stored under its
   own fingerprint (``served: batched`` for riders, ``computed`` for
   the one thread that did the work).  Slices are bit-identical to
   computing each request alone — every fusable family is elementwise
   in its axis.

Endpoints::

    GET  /healthz             liveness + protocols + backend + timeouts
    GET  /v1/stats            cache + coalescing counters
    GET  /v1/cache/<key>      one entry (npz, or a binary frame when asked)
    PUT  /v1/cache/<key>      insert one entry (npz or binary-frame body)
    POST /v1/compute          allocation_curve | plan | sweep |
                              sim_sweep | sim_validate requests

Everything above lives in :class:`ServiceCore`, which is
transport-agnostic: it turns ``(method, path, headers, body)`` into a
:class:`Response` (status, content type, body chunks) and knows nothing
about sockets.  Two transports drive it:

* :class:`SweepServer` (this module) — the threaded backend: stdlib
  ``ThreadingHTTPServer``, one OS thread per connection.  Simple,
  battle-tested, and the right tool up to a few hundred connections.
* :class:`~repro.service.aserver.AsyncSweepServer` — the ``asyncio``
  backend: an event loop owns every socket (thousands of idle
  keep-alive connections cost no threads), parses pipelined HTTP/1.1
  requests incrementally, and offloads each request's compute to a
  bounded worker pool.  Selected with ``repro serve --backend asyncio``.

Because both backends call the same :class:`ServiceCore` methods with
the same bytes, their response bodies are byte-identical and their
``/v1/stats`` counters move identically for the same request stream —
the cross-backend parity suite pins this.

The handler speaks HTTP/1.1 with keep-alive: every response carries a
``Content-Length``, so a client can hold one connection open across
requests instead of paying a TCP handshake per call.  Array-bearing
responses are negotiated: a request whose ``Accept`` names
``application/x-repro-frame`` gets the raw-bytes binary frame
(:mod:`repro.service.frame`) — the arrays' buffers are written straight
to the socket, no base64, no JSON number formatting — while everything
else gets the original JSON encoding, byte-identical to older servers.

Lifecycle: both backends drain gracefully.  ``close()`` (or SIGTERM via
``repro serve``) stops accepting new connections, rejects new requests
with a 503 while waiting up to ``drain_timeout_s`` for in-flight
computes to finish and their responses to be written, then flushes the
cache's memory tier to disk so a restart warm-starts.  Idle and
half-open connections (a slowloris client sending half a header and
stalling) are closed after ``read_timeout_s`` on both backends; the
timeout is advertised in ``/healthz``.
"""

from __future__ import annotations

import io
import json
import re
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

import numpy as np

from repro.batch.cache import SweepCache, fingerprint, max_cache_bytes
from repro.batch.engine import SweepSpec
from repro.errors import InvalidParameterError, ReproError
from repro.graph import nodes as graph_nodes
from repro.graph.executors import NumpyExecutor
from repro.graph.nodes import Node
from repro.graph.planner import plan as plan_graph
from repro.service.frame import (
    FRAME_CONTENT_TYPE,
    FrameError,
    decode_frame,
    encode_frame,
    frame_length,
)
from repro.service.schema import (
    encode_arrays,
    error_body,
    json_body,
    parse_allocation,
    parse_plan,
    parse_sim_sweep,
    parse_sim_validate,
    parse_sweep,
)

#: Every /v1/compute discriminator the core serves, advertised in
#: ``/healthz`` so clients can probe for sim support before sending.
COMPUTE_KINDS = ("allocation_curve", "plan", "sim_sweep", "sim_validate", "sweep")

__all__ = [
    "Response",
    "ServiceCore",
    "SweepServer",
    "COMPUTE_KINDS",
    "DEFAULT_PORT",
    "DEFAULT_READ_TIMEOUT_S",
    "DEFAULT_DRAIN_TIMEOUT_S",
]

DEFAULT_PORT = 8733

#: Idle/half-open connections (a client that sent half a request header
#: and stalled, or a keep-alive socket nobody uses) are closed after
#: this many seconds on both backends — slowloris hardening.
DEFAULT_READ_TIMEOUT_S = 60.0

#: How long a graceful shutdown waits for in-flight requests to finish
#: before giving up on them.
DEFAULT_DRAIN_TIMEOUT_S = 10.0

#: Fingerprints are SHA-256 hex digests; anything else never names a
#: cache entry and must not reach the filesystem layer.
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

#: Union axes at least this long are worth sharding over the server's
#: worker pool (mirrors repro.batch.shard.MIN_CHUNK economics); handed
#: to the NumPy executor as its shard threshold.
_SHARD_THRESHOLD = 256

#: Request-body → fingerprint memo entries kept (LRU).  Bodies are a
#: few KiB, so the memo is ~1–2 MiB at the cap — cheap insurance that a
#: warm hit never re-parses and re-hashes an identical request.
_REQUEST_KEY_MEMO_MAX = 512


class Response:
    """One transport-agnostic HTTP response: status, type, body chunks.

    ``chunks`` is a list of ``bytes``/``memoryview`` pieces whose
    concatenation is the body — binary frames keep their zero-copy
    memoryview chunks all the way to the socket write.  ``close`` asks
    the transport to hang up after writing (protocol errors, draining).
    """

    __slots__ = ("status", "content_type", "chunks", "close")

    def __init__(
        self,
        status: int,
        content_type: str,
        chunks: list[bytes | memoryview],
        close: bool = False,
    ) -> None:
        self.status = status
        self.content_type = content_type
        self.chunks = chunks
        self.close = close

    @property
    def content_length(self) -> int:
        return frame_length(self.chunks)

    def body_bytes(self) -> bytes:
        """The whole body as one ``bytes`` (tests, small responses)."""
        return b"".join(bytes(c) for c in self.chunks)


class _Flight:
    """One in-flight computation: late twins wait on it instead of working."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: dict[str, np.ndarray] | None = None
        self.error: str | None = None


class ServiceCore:
    """The transport-agnostic sweep service: routing, cache, coalescing.

    Both backends — the threaded :class:`SweepServer` and the asyncio
    :class:`~repro.service.aserver.AsyncSweepServer` — drive this one
    class: :meth:`handle_request` turns ``(method, path, headers,
    body)`` into a :class:`Response`, so the parse → fingerprint →
    coalesce → micro-batch → serve path is shared verbatim and the two
    backends cannot drift.

    Parameters
    ----------
    cache_dir, max_cache_mb:
        The shared store: optional ``.npz`` directory and the per-tier
        LRU bound (MiB) — both forwarded to :class:`SweepCache`.
    jobs:
        Worker processes for sharding large micro-batched axes; 1 keeps
        every compute in the serving thread.
    batch_window_s:
        How long the first cold allocation request of a compatible
        group waits for co-batchable traffic before computing.  Zero
        disables micro-batching (coalescing still applies).
    read_timeout_s:
        Idle/half-open connections are closed after this many seconds
        (slowloris hardening); advertised in ``/healthz``.
    drain_timeout_s:
        Graceful-shutdown bound: how long :meth:`drain` waits for
        in-flight requests before giving up.
    """

    #: Transport name advertised in ``/healthz`` — subclasses override.
    backend = "core"

    def __init__(
        self,
        cache_dir: str | None = None,
        max_cache_mb: float | None = None,
        jobs: int = 1,
        batch_window_s: float = 0.005,
        compute_timeout_s: float = 600.0,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    ) -> None:
        self.cache = SweepCache(cache_dir, max_bytes=max_cache_bytes(max_cache_mb))
        self.jobs = max(1, int(jobs))
        self.batch_window_s = float(batch_window_s)
        self.compute_timeout_s = float(compute_timeout_s)
        self.read_timeout_s = float(read_timeout_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.started = time.time()
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        #: Exact request bytes → cache fingerprint, learned on first
        #: compute.  The warm-hit fast path: identical bodies skip JSON
        #: parsing, validation, and fingerprint hashing entirely.
        self._request_keys: OrderedDict[bytes, str] = OrderedDict()  # guarded-by: _request_keys_lock
        self._request_keys_lock = threading.Lock()
        self._buckets: dict[tuple[str, str], list[tuple[str, Node, _Flight]]] = {}
        self._batch_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "hits": 0,  # /v1/compute answered straight from the cache
            "computed": 0,
            "coalesced": 0,
            "batched": 0,
            # sim_sweep/sim_validate requests through the parse pipeline
            # (warm byte-identical repeats ride fast_serve and are
            # counted as plain hits, like every other family).
            "sim": 0,
        }
        self._counters_lock = threading.Lock()
        # Graceful-shutdown state: requests in flight and the draining
        # flag share one condition so drain() can wait for zero.
        self._inflight_cv = threading.Condition()
        self._inflight = 0  # guarded-by: _inflight_cv
        self._draining = False  # guarded-by: _inflight_cv

    # ------------------------------------------------------- request lifetime

    def begin_request(self) -> bool:
        """Admit one request; ``False`` once the server is draining."""
        with self._inflight_cv:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def end_request(self) -> None:
        """The matching exit: transports call this after the response."""
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cv.notify_all()

    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop admitting requests and wait for in-flight ones to finish.

        Returns ``True`` when the server went quiet within the bound,
        ``False`` on timeout (the remaining requests are abandoned to
        their threads).  Idempotent — a second call just waits again.
        """
        bound = self.drain_timeout_s if timeout_s is None else float(timeout_s)
        deadline = time.monotonic() + bound
        with self._inflight_cv:
            self._draining = True
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
            return True

    @property
    def draining(self) -> bool:
        with self._inflight_cv:
            return self._draining

    def flush(self) -> int:
        """Flush the cache's memory tier to disk (graceful shutdown)."""
        return self.cache.flush()

    # ------------------------------------------------------------ bookkeeping

    def _count(self, counter: str) -> None:
        with self._counters_lock:
            self._counters[counter] += 1

    def stats_payload(self) -> dict[str, Any]:
        with self._counters_lock:
            counters = dict(self._counters)
        # Only compute-path outcomes feed the ratio: shared-store GET/PUT
        # traffic (runner workers) also moves the cache's own hit
        # counters, which would make a hits/requests quotient meaningless.
        dedup = counters["hits"] + counters["coalesced"] + counters["batched"]
        # A locked snapshot, not a field-by-field read of cache.stats: a
        # concurrent compute landing mid-read would tear the counters
        # (hits moved but misses not yet, dedup ratio off by one).
        snapshot = self.cache.stats_snapshot()
        return {
            "uptime_s": time.time() - self.started,
            "cache": snapshot,
            "entries": len(self.cache),
            "max_bytes": self.cache.max_bytes,
            "cache_dir": None if self.cache.cache_dir is None else str(self.cache.cache_dir),
            "counters": counters,
            "dedup_ratio": (dedup / counters["requests"]) if counters["requests"] else 0.0,
            "planner": {
                "nodes_planned": snapshot["nodes_planned"],
                "siblings_fused": snapshot["siblings_fused"],
                "subgraphs_deduped": snapshot["subgraphs_deduped"],
                "executor_runs": snapshot["executor_runs"],
            },
        }

    # -------------------------------------------------------------- computing

    def handle_compute(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One ``/v1/compute`` request as the JSON response body."""
        arrays, served = self.compute_arrays(payload)
        return {"status": "ok", "served": served, "arrays": encode_arrays(arrays)}

    def compute_arrays(
        self, payload: Mapping[str, Any]
    ) -> tuple[dict[str, np.ndarray], str]:
        """Dispatch one compute request; returns ``(arrays, served)``.

        Protocol-agnostic: the handler encodes the result as JSON or as
        a binary frame depending on what the client accepts.
        """
        arrays, served, _key = self.compute_with_key(payload)
        return arrays, served

    def compute_with_key(
        self, payload: Mapping[str, Any]
    ) -> tuple[dict[str, np.ndarray], str, str]:
        """``(arrays, served, fingerprint)`` for one compute request.

        The fingerprint is what the request-body memo learns: a later
        byte-identical request can be answered by one cache lookup.
        """
        kind = payload.get("kind")
        self._count("requests")
        if kind == "allocation_curve":
            args = parse_allocation(payload)
            node = graph_nodes.allocation_curve(
                args["machine"],
                args["stencil"],
                args["kind"],
                args["grid_sides"],
                args["t_flop"],
                args["max_processors"],
                args["integer"],
            )
            arrays, served = self._serve_node(node)
            return arrays, served, node.key
        if kind == "plan":
            return self._serve_plan(parse_plan(payload))
        if kind == "sweep":
            args = parse_sweep(payload)
            spec = SweepSpec.across_catalog(
                args["grid_sides"],
                args["processors"],
                machines=args["machines"],
                stencil=args["stencil"],
                kind=args["kind"],
                t_flop=args["t_flop"],
            )
            node = graph_nodes.sweep(spec)
            arrays, served = self._serve_node(node)
            return arrays, served, node.key
        if kind == "sim_sweep":
            args = parse_sim_sweep(payload)
            self._count("sim")
            node = graph_nodes.sim_sweep(
                args["machine"],
                args["stencil"],
                args["kind"],
                args["n"],
                args["n_processors"],
                args["seeds"],
                args["t_flop"],
                args["mode"],
                args["jitter"],
            )
            arrays, served = self._serve_node(node)
            return arrays, served, node.key
        if kind == "sim_validate":
            args = parse_sim_validate(payload)
            self._count("sim")
            node = graph_nodes.sim_validate(
                args["machine"],
                args["stencil"],
                args["kind"],
                args["n"],
                args["processors"],
                args["t_flop"],
                args["mode"],
            )
            arrays, served = self._serve_node(node)
            return arrays, served, node.key
        expected = ", ".join(COMPUTE_KINDS)
        raise InvalidParameterError(
            f"unknown request kind {kind!r}; expected one of: {expected}"
        )

    # The warm-hit fast path -------------------------------------------------

    def fast_serve(
        self, body: bytes
    ) -> tuple[dict[str, np.ndarray], str] | None:
        """Serve a byte-identical repeat request by cache lookup alone.

        ``None`` means the body is unknown (or its entry was evicted)
        and the full parse → fingerprint → serve pipeline must run.
        Counters move exactly as they would on the slow path's cache
        hit, so ``/v1/stats`` cannot tell the two apart.
        """
        with self._request_keys_lock:
            key = self._request_keys.get(body)
            if key is not None:
                self._request_keys.move_to_end(body)
        if key is None:
            return None
        arrays, level = self.cache.lookup_level(key)
        if arrays is None or level is None:
            return None
        self._count("requests")
        self._count("hits")
        return arrays, level

    def remember_request(self, body: bytes, key: str) -> None:
        """Memoize body → fingerprint after a successful full serve."""
        with self._request_keys_lock:
            self._request_keys[body] = key
            self._request_keys.move_to_end(body)
            while len(self._request_keys) > _REQUEST_KEY_MEMO_MAX:
                self._request_keys.popitem(last=False)

    def _serve_node(self, node: Node) -> tuple[dict[str, np.ndarray], str]:
        """Serve one graph leaf through cache → flights → planner fusion."""
        return self._serve(
            node.key,
            compute=None,
            batch=lambda key, flight: self._family_batch(key, node, flight),
        )

    def _serve(
        self,
        key: str,
        compute: Callable[[], Mapping[str, np.ndarray]] | None,
        batch: Callable[[str, _Flight], tuple[dict[str, np.ndarray], str]] | None = None,
    ) -> tuple[dict[str, np.ndarray], str]:
        """Cache → in-flight table → compute (or micro-batch) pipeline."""
        arrays, level = self.cache.lookup_level(key)
        if arrays is not None and level is not None:
            self._count("hits")
            return arrays, level
        with self._flights_lock:
            flight = self._flights.get(key)
            owner = flight is None
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
        if not owner:
            if not flight.event.wait(self.compute_timeout_s):
                raise ReproError("timed out waiting for an in-flight twin request")
            if flight.error is not None:
                raise ReproError(flight.error)
            self._count("coalesced")
            assert flight.value is not None
            return flight.value, "coalesced"
        try:
            if batch is not None:
                value, served = batch(key, flight)
            else:
                assert compute is not None
                value = self.cache.store(key, compute())
                served = "computed"
                self._count("computed")
            flight.value = value
            return value, served
        except Exception as exc:
            flight.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.event.set()

    # The micro-batcher -----------------------------------------------------

    def _family_batch(
        self, key: str, node: Node, flight: _Flight
    ) -> tuple[dict[str, np.ndarray], str]:
        """Merge compatible cold requests of *any* family onto one plan.

        Buckets key on the node's ``(op, compat)`` — its family plus
        its fusion-compatibility fingerprint (machine closed form,
        stencil, partition kind, scalars; only the axis differs).  The
        bucket leader sleeps one batching window, gathers everyone who
        arrived, and hands all member nodes to the sweep-graph planner,
        which fuses them onto one vectorized evaluation over the union
        axis and stores each member's slice under its own fingerprint.
        ``lookup=False`` because the request pipeline already counted
        each member's miss — daemon hit/miss totals stay identical to
        the offline path.
        """
        compat = (node.op, node.compat)
        with self._batch_lock:
            bucket = self._buckets.setdefault(compat, [])
            leader = not bucket
            bucket.append((key, node, flight))
        if not leader:
            if not flight.event.wait(self.compute_timeout_s):
                raise ReproError("timed out waiting for the batch leader")
            if flight.error is not None:
                raise ReproError(flight.error)
            self._count("batched")
            assert flight.value is not None
            return flight.value, "batched"
        if self.batch_window_s > 0.0:
            time.sleep(self.batch_window_s)
        with self._batch_lock:
            members = self._buckets.pop(compat)
        try:
            results = plan_graph(
                [mnode for _, mnode, _ in members],
                cache=self.cache,
                executor=NumpyExecutor(
                    jobs=self.jobs, shard_threshold=_SHARD_THRESHOLD
                ),
                lookup=False,
            ).execute()
        except Exception as exc:
            message = f"{type(exc).__name__}: {exc}"
            for mkey, _, mflight in members:
                if mflight is not flight:
                    mflight.error = message
                    with self._flights_lock:
                        self._flights.pop(mkey, None)
                    mflight.event.set()
            raise
        self._count("computed")
        value = None
        for (mkey, _, mflight), stored in zip(members, results):
            if mflight is flight:
                value = stored
            else:
                mflight.value = stored
                with self._flights_lock:
                    self._flights.pop(mkey, None)
                mflight.event.set()
        assert value is not None
        return value, "computed"

    # Capacity plans --------------------------------------------------------

    def _serve_plan(
        self, args: Mapping[str, Any]
    ) -> tuple[dict[str, np.ndarray], str, str]:
        """Everything ``repro plan`` prints, as one fingerprinted bundle.

        The grid half reuses the offline CLI's ``("plan_grid", …)``
        request so daemon and command line share store entries; the
        whole bundle gets its own fingerprint for coalescing and warm
        repeats.
        """
        from repro.batch.analysis import max_useful_processors_curve
        from repro.batch.curves import minimal_grid_side_curve
        from repro.machines.bus import BusArchitecture
        from repro.stencils.library import ALL_STENCILS
        from repro.stencils.perimeter import PartitionKind

        machine = args["machine"]
        if not isinstance(machine, BusArchitecture):
            raise InvalidParameterError(
                f"{args['machine_name']} is not a bus: allocation is extremal, "
                "capacity-planning thresholds apply to buses"
            )
        n = args["n"]
        grid = args["grid"]
        request = (
            "service_plan",
            machine,
            int(n),
            None if grid is None else np.asarray(grid, dtype=float),
        )

        def compute() -> dict[str, np.ndarray]:
            max_useful = np.array(
                [
                    [
                        max_useful_processors_curve(
                            machine, stencil, kind, [n], cache=self.cache
                        )[0]
                        for kind in (PartitionKind.STRIP, PartitionKind.SQUARE)
                    ]
                    for stencil in ALL_STENCILS
                ]
            )
            out = {
                "n": np.array([n], dtype=int),
                "max_useful": max_useful,
                "stencils": np.asarray([s.name for s in ALL_STENCILS]),
            }
            if grid is None:
                defaults = np.array([8, 16, 32], dtype=int)
                out["default_processors"] = defaults
                out["default_sides"] = minimal_grid_side_curve(
                    machine, 1, 5.0, 1e-6, defaults, PartitionKind.SQUARE
                )
            else:
                # The same lazy node the CLI's --grid mode plans, so
                # daemon and command line share store entries.
                from repro.graph.planner import evaluate as graph_evaluate

                curves = graph_evaluate(
                    [graph_nodes.plan_grid(machine, grid)], cache=self.cache
                )[0]
                out["grid_processors"] = np.asarray(grid, dtype=int)
                out["grid_strip"] = curves[PartitionKind.STRIP.value]
                out["grid_square"] = curves[PartitionKind.SQUARE.value]
            return out

        key = fingerprint(request)
        arrays, served = self._serve(key, compute=compute)
        return arrays, served, key

    # ------------------------------------------------------- HTTP semantics

    def _respond_json(
        self, payload: Mapping[str, Any], status: int = 200
    ) -> Response:
        return Response(status, "application/json", [json_body(payload)])

    def error_response(
        self, message: str, status: int, close: bool = False
    ) -> Response:
        return Response(status, "application/json", [error_body(message)], close=close)

    def _respond_frame(
        self, arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]
    ) -> Response:
        """One binary frame: header chunk, then each array's own buffer.

        The memoryview chunks alias the arrays — no base64, no JSON
        number formatting, no per-array ``bytes`` materialization — and
        ride untouched to the transport's socket write.
        """
        return Response(200, FRAME_CONTENT_TYPE, encode_frame(arrays, meta))

    def _respond_arrays(
        self, arrays: Mapping[str, np.ndarray], served: str, accept: str
    ) -> Response:
        if self._accepts_frame(accept):
            return self._respond_frame(arrays, {"status": "ok", "served": served})
        return self._respond_json(
            {"status": "ok", "served": served, "arrays": encode_arrays(arrays)}
        )

    def _accepts_frame(self, accept: str) -> bool:
        """Did the client negotiate the binary array frame?"""
        return FRAME_CONTENT_TYPE in accept

    @staticmethod
    def _cache_key(path: str) -> str | None:
        key = path[len("/v1/cache/") :]
        return key if _KEY_RE.fullmatch(key) else None

    def handle_request(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> Response:
        """Route one HTTP request; never raises.

        ``headers`` uses lower-case keys (both transports normalize).
        This is the single entry point both backends call — typically
        from a worker thread, so everything here must stay thread-safe.
        """
        try:
            if method == "GET":
                return self._handle_get(path, headers)
            if method == "PUT":
                return self._handle_put(path, headers, body)
            if method == "POST":
                return self._handle_post(path, headers, body)
            return self.error_response(f"unsupported method {method}", 501)
        except Exception as exc:  # the transport must always get a response
            return self.error_response(f"{type(exc).__name__}: {exc}", 500)

    def _handle_get(self, path: str, headers: Mapping[str, str]) -> Response:
        if path == "/healthz":
            # ``protocols`` is the negotiation advertisement: a client
            # probing an old server will not find "frame" here.
            return self._respond_json(
                {
                    "status": "ok",
                    "service": "repro-sweepd",
                    "protocols": ["json", "frame"],
                    "kinds": list(COMPUTE_KINDS),
                    "backend": self.backend,
                    "read_timeout_s": self.read_timeout_s,
                }
            )
        if path == "/v1/stats":
            return self._respond_json({"status": "ok", **self.stats_payload()})
        if path.startswith("/v1/cache/"):
            key = self._cache_key(path)
            if key is None:
                return self.error_response("malformed cache key", 400)
            arrays, _level = self.cache.lookup_level(key)
            if arrays is None:
                return self.error_response("no such entry", 404)
            if self._accepts_frame(headers.get("accept", "")):
                return self._respond_frame(arrays, {"status": "ok"})
            buffer = io.BytesIO()
            np.savez(buffer, **arrays)
            return Response(200, "application/octet-stream", [buffer.getvalue()])
        return self.error_response(f"no route {path}", 404)

    def _handle_put(
        self, path: str, headers: Mapping[str, str], body: bytes
    ) -> Response:
        if not path.startswith("/v1/cache/"):
            return self.error_response(f"no route {path}", 404)
        key = self._cache_key(path)
        if key is None:
            return self.error_response("malformed cache key", 400)
        if headers.get("content-type", "").startswith(FRAME_CONTENT_TYPE):
            try:
                arrays, _meta = decode_frame(body)
            except FrameError as exc:
                return self.error_response(str(exc), 400)
        else:
            try:
                with np.load(io.BytesIO(body), allow_pickle=False) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            except Exception:
                return self.error_response("body is not a readable .npz archive", 400)
        self.cache.store(key, arrays)
        return self._respond_json({"status": "ok", "stored": key})

    def _handle_post(
        self, path: str, headers: Mapping[str, str], body: bytes
    ) -> Response:
        if path != "/v1/compute":
            return self.error_response(f"no route {path}", 404)
        accept = headers.get("accept", "")
        fast = self.fast_serve(body)
        if fast is not None:
            return self._respond_arrays(fast[0], fast[1], accept)
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            return self.error_response(f"bad JSON body: {exc}", 400)
        try:
            arrays, served, key = self.compute_with_key(payload)
        except InvalidParameterError as exc:
            return self.error_response(str(exc), 400)
        except Exception as exc:  # compute failures are the server's 500s
            return self.error_response(f"{type(exc).__name__}: {exc}", 500)
        self.remember_request(body, key)
        return self._respond_arrays(arrays, served, accept)


class SweepServer(ServiceCore):
    """``repro serve --backend thread``: the threaded transport.

    One OS thread per connection on stdlib ``ThreadingHTTPServer``; the
    default backend.  All request semantics live in the shared
    :class:`ServiceCore` base.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests, the
        benchmark harness).
    **core keyword arguments**:
        See :class:`ServiceCore`.
    """

    backend = "thread"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_dir: str | None = None,
        max_cache_mb: float | None = None,
        jobs: int = 1,
        batch_window_s: float = 0.005,
        compute_timeout_s: float = 600.0,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    ) -> None:
        super().__init__(
            cache_dir=cache_dir,
            max_cache_mb=max_cache_mb,
            jobs=jobs,
            batch_window_s=batch_window_s,
            compute_timeout_s=compute_timeout_s,
            read_timeout_s=read_timeout_s,
            drain_timeout_s=drain_timeout_s,
        )
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ---------------------------------------------------------------- address

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ---------------------------------------------------------------- running

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start_background(self) -> "SweepServer":
        """Serve on a daemon thread (tests, benches, the quickstart)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def close(self, drain_timeout_s: float | None = None) -> None:
        """Graceful stop: close the listener, drain in-flight, flush.

        Safe after ``serve_forever`` returned (the CLI path) and from
        :meth:`shutdown` (the background-thread path).  New requests
        racing the drain get a 503; requests already computing finish
        and their responses are written before this returns (bounded by
        ``drain_timeout_s``).
        """
        self._httpd.server_close()
        self.drain(drain_timeout_s)
        self.flush()

    def __enter__(self) -> "SweepServer":
        return self.start_background()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()


# --------------------------------------------------------------------------
# HTTP plumbing (the threaded transport's adapter)
# --------------------------------------------------------------------------


#: Response bodies at most this large are coalesced into a single
#: socket write; a warm hit's latency is syscalls and packets, not
#: memcpy.
_GATHER_BYTES = 256 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter: socket + HTTP parsing in, ``ServiceCore`` out."""

    server_version = "repro-sweepd/1"
    protocol_version = "HTTP/1.1"
    #: Keep-alive clients wait for every response byte before the next
    #: request; letting Nagle buffer the tail of a response behind a
    #: delayed ACK turns a ~1 ms round trip into ~40 ms.
    disable_nagle_algorithm = True

    @property
    def app(self) -> ServiceCore:
        return self.server.app  # type: ignore[attr-defined]

    def setup(self) -> None:
        # The stdlib applies ``timeout`` as the connection's socket
        # timeout; a stalled read (slowloris half-header, idle
        # keep-alive) then raises and the connection is closed.
        self.timeout = self.app.read_timeout_s
        super().setup()

    def log_message(self, format: str, *args: object) -> None:
        pass  # the daemon is quiet; /v1/stats is the observability surface

    # ------------------------------------------------------------- responses

    def _write_response(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(response.content_length))
        if response.close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        if response.content_length <= _GATHER_BYTES:
            self.wfile.write(response.body_bytes())
        else:
            for chunk in response.chunks:
                self.wfile.write(chunk)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length)

    # --------------------------------------------------------------- methods

    def _handle(self, method: str) -> None:
        """One request through the shared core, bracketed for draining."""
        if not self.app.begin_request():
            self._write_response(
                self.app.error_response("server is draining", 503, close=True)
            )
            return
        try:
            body = self._read_body()
            headers = {key.lower(): value for key, value in self.headers.items()}
            response = self.app.handle_request(method, self.path, headers, body)
            self._write_response(response)
        except TimeoutError:
            # A client stalled mid-body: close quietly, like the
            # stdlib does for a stalled request line.
            self.close_connection = True
        finally:
            # After the write, so a graceful drain covers the response
            # bytes, not just the compute.
            self.app.end_request()

    def do_GET(self) -> None:
        self._handle("GET")

    def do_PUT(self) -> None:
        self._handle("PUT")

    def do_POST(self) -> None:
        self._handle("POST")
