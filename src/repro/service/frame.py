"""The binary array frame: raw ``ndarray`` bytes behind a compact header.

The JSON protocol in :mod:`repro.service.schema` base64-encodes every
array, which taxes each response with an encode, a decode, and a 4/3
size blowup — measured at ~4x the compute for a warm cache hit.  This
frame is the negotiated fast path (``Accept:
application/x-repro-frame``): one small JSON header describing the
arrays, then their raw little-endian C-order bytes, concatenated.

Layout::

    magic    8 bytes   b"REPROFR1"
    hdr_len  4 bytes   u32 little-endian, length of the header JSON
    header   hdr_len   UTF-8 JSON: {"arrays": [{"name", "dtype",
                       "shape", "nbytes"}, ...], ...metadata}
    payload  *         each array's bytes, in header order

Both directions avoid re-encoding the numbers entirely:
:func:`encode_frame` yields ``memoryview`` chunks over the arrays'
existing buffers (the server writes them straight to the socket), and
:func:`decode_frame` returns read-only views into the received body via
``np.frombuffer`` — zero copies on either side for contiguous
little-endian arrays, which is everything the sweep cache stores.

Every value crosses bit for bit: the frame carries the same bytes the
base64 path would, so a curve fetched on either protocol is identical
down to the sign of ``-0.0``.  Big-endian or non-contiguous *inputs*
are normalized (to little-endian, C-order) before encoding; values are
preserved exactly, only the in-memory layout changes.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Mapping

import numpy as np

from repro.errors import ReproError

__all__ = [
    "FRAME_CONTENT_TYPE",
    "FrameError",
    "encode_frame",
    "frame_bytes",
    "frame_length",
    "decode_frame",
]

#: The negotiated media type; clients send it in ``Accept``, the server
#: answers with it as ``Content-Type`` when it can.
FRAME_CONTENT_TYPE = "application/x-repro-frame"

_MAGIC = b"REPROFR1"
_LEN = struct.Struct("<I")

#: A header longer than this is not a header — it is garbage or an
#: attack; real headers are a few hundred bytes.
_MAX_HEADER_BYTES = 16 * 2**20


class FrameError(ReproError, ValueError):
    """A binary frame could not be encoded or decoded."""


def _wire_array(array: np.ndarray) -> np.ndarray:
    """``array`` as the frame stores it: C-contiguous, little-endian.

    Values are untouched; only layout is normalized, so the frame's
    bytes for a native array are exactly ``array.tobytes()``.
    """
    if array.dtype.hasobject:
        raise FrameError(
            f"cannot frame dtype {array.dtype}: object arrays have no "
            "defined wire bytes (and would require pickling)"
        )
    if array.dtype.byteorder == ">":
        array = array.astype(array.dtype.newbyteorder("<"))
    if not array.flags.c_contiguous:
        # ascontiguousarray would also promote 0-d arrays to 1-d, so
        # only invoke it when the layout actually needs fixing.
        array = np.ascontiguousarray(array)
    return array


def encode_frame(
    arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any] | None = None
) -> list[bytes | memoryview]:
    """Frame chunks: ``[magic + length + header, array bytes, ...]``.

    Returned as a chunk list rather than one ``bytes`` so a writer can
    hand each array's existing buffer to the socket without
    concatenating — the memoryview chunks alias the (normalized) arrays.
    ``meta`` keys ride in the header next to ``"arrays"`` (the server
    puts ``status``/``served`` there).
    """
    entries: list[dict[str, Any]] = []
    chunks: list[bytes | memoryview] = []
    for name, array in arrays.items():
        wire = _wire_array(np.asarray(array))
        entries.append(
            {
                "name": str(name),
                "dtype": wire.dtype.str,
                "shape": list(wire.shape),
                "nbytes": int(wire.nbytes),
            }
        )
        if wire.ndim == 0 or wire.nbytes == 0:
            # memoryview.cast cannot flatten 0-d or zero-size views;
            # both are at most one element, so the copy is free.
            chunks.append(wire.tobytes())
        else:
            chunks.append(memoryview(wire).cast("B"))
    header: dict[str, Any] = dict(meta or {})
    header["arrays"] = entries
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    chunks.insert(0, _MAGIC + _LEN.pack(len(header_bytes)) + header_bytes)
    return chunks


def frame_bytes(
    arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any] | None = None
) -> bytes:
    """The whole frame as one ``bytes`` (tests, single-buffer writers)."""
    return b"".join(bytes(c) for c in encode_frame(arrays, meta))


def frame_length(chunks: list[bytes | memoryview]) -> int:
    """Total byte length of a chunk list — the response Content-Length.

    Computed without touching the chunk contents, so a server can write
    the header before concatenating (or instead of concatenating)
    anything.
    """
    return sum(len(chunk) for chunk in chunks)


def _entry_field(entry: Any, field: str, index: int) -> Any:
    if not isinstance(entry, dict) or field not in entry:
        raise FrameError(f"malformed frame: array entry {index} lacks {field!r}")
    return entry[field]


def decode_frame(body: bytes | memoryview) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """``(arrays, meta)`` from one frame; rejects malformed input cleanly.

    The returned arrays are read-only views over ``body`` (zero-copy);
    callers that need to mutate must copy.  ``meta`` is the header
    minus its ``"arrays"`` key.  Anything structurally wrong — bad
    magic, truncated header, a byte count that disagrees with
    dtype × shape, trailing garbage — raises :class:`FrameError` naming
    the problem; nothing is ever silently mis-sliced.
    """
    view = memoryview(body).cast("B")
    if len(view) < len(_MAGIC) + _LEN.size or bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise FrameError("malformed frame: missing REPROFR1 magic")
    offset = len(_MAGIC)
    (header_len,) = _LEN.unpack_from(view, offset)
    offset += _LEN.size
    if header_len > _MAX_HEADER_BYTES or offset + header_len > len(view):
        raise FrameError("malformed frame: header length exceeds the body")
    try:
        header = json.loads(bytes(view[offset : offset + header_len]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame: header is not JSON ({exc})") from None
    offset += header_len
    if not isinstance(header, dict) or not isinstance(header.get("arrays"), list):
        raise FrameError("malformed frame: header lacks an 'arrays' list")

    arrays: dict[str, np.ndarray] = {}
    for index, entry in enumerate(header["arrays"]):
        name = _entry_field(entry, "name", index)
        if not isinstance(name, str):
            raise FrameError(f"malformed frame: array entry {index} name is not a string")
        try:
            dtype = np.dtype(_entry_field(entry, "dtype", index))
        except TypeError as exc:
            raise FrameError(f"malformed frame: bad dtype for {name!r}: {exc}") from None
        if dtype.hasobject:
            raise FrameError(f"malformed frame: object dtype for {name!r} is not allowed")
        shape = _entry_field(entry, "shape", index)
        nbytes = _entry_field(entry, "nbytes", index)
        if (
            not isinstance(shape, list)
            or not all(isinstance(s, int) and s >= 0 for s in shape)
            or not isinstance(nbytes, int)
            or nbytes < 0
        ):
            raise FrameError(f"malformed frame: bad shape/nbytes for {name!r}")
        count = 1
        for side in shape:
            count *= side
        if count * dtype.itemsize != nbytes:
            raise FrameError(
                f"malformed frame: {name!r} declares {nbytes} bytes but "
                f"shape {tuple(shape)} x {dtype} needs {count * dtype.itemsize}"
            )
        if offset + nbytes > len(view):
            raise FrameError(f"malformed frame: payload truncated at {name!r}")
        arrays[name] = np.frombuffer(
            view[offset : offset + nbytes], dtype=dtype
        ).reshape(tuple(shape))
        offset += nbytes
    if offset != len(view):
        raise FrameError(
            f"malformed frame: {len(view) - offset} trailing bytes after the last array"
        )
    meta = {key: value for key, value in header.items() if key != "arrays"}
    return arrays, meta
